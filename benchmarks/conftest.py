"""Benchmark harness configuration.

Every benchmark regenerates one paper artifact (table or figure) with the
full experimental protocol (7 runs, mean of the last 5, the paper's size
sweep), prints it to the terminal, and writes it under
``benchmarks/results/``.  pytest-benchmark times the regeneration.

Set ``REPRO_BENCH_FAST=1`` to shrink the protocol (3 runs, 3 sizes) for a
quick smoke pass.

Experiment cells are persisted to the campaign result store at
``benchmarks/.cellcache`` (git-ignored), so re-running a benchmark —
or several benchmarks sharing cells, as Fig. 2 and Table II do — never
recomputes a cell across invocations.  Set ``REPRO_BENCH_NO_CACHE=1``
to measure cold regeneration instead.
"""

import os
import pathlib

import pytest

from repro.analysis import AnalysisConfig
from repro.campaign import ResultStore
from repro.measure import ExperimentProtocol

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
CELL_CACHE_DIR = pathlib.Path(__file__).parent / ".cellcache"

#: The paper's full size ladder, or a short one for smoke runs.
FAST = bool(int(os.environ.get("REPRO_BENCH_FAST", "0")))

#: Opt out of the on-disk cell store (forces cold regeneration).
NO_CACHE = bool(int(os.environ.get("REPRO_BENCH_NO_CACHE", "0")))


@pytest.fixture(scope="session")
def paper_config() -> AnalysisConfig:
    """The paper's protocol: 7 runs/cell, keep 5, sizes 10..100 MB."""
    store = None if NO_CACHE else ResultStore(CELL_CACHE_DIR)
    if FAST:
        return AnalysisConfig(
            sizes_mb=(10, 50, 100),
            protocol=ExperimentProtocol(total_runs=3, discard_runs=1),
            store=store,
        )
    return AnalysisConfig(store=store)


@pytest.fixture
def emit(capsys):
    """Print an artifact to the real terminal and persist it to disk."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")

    return _emit


def once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
