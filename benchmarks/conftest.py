"""Benchmark harness configuration.

Every benchmark regenerates one paper artifact (table or figure) with the
full experimental protocol (7 runs, mean of the last 5, the paper's size
sweep), prints it to the terminal, and writes it under
``benchmarks/results/``.  pytest-benchmark times the regeneration.

Set ``REPRO_BENCH_FAST=1`` to shrink the protocol (3 runs, 3 sizes) for a
quick smoke pass.
"""

import os
import pathlib

import pytest

from repro.analysis import AnalysisConfig
from repro.measure import ExperimentProtocol

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The paper's full size ladder, or a short one for smoke runs.
FAST = bool(int(os.environ.get("REPRO_BENCH_FAST", "0")))


@pytest.fixture(scope="session")
def paper_config() -> AnalysisConfig:
    """The paper's protocol: 7 runs/cell, keep 5, sizes 10..100 MB."""
    if FAST:
        return AnalysisConfig(
            sizes_mb=(10, 50, 100),
            protocol=ExperimentProtocol(total_runs=3, discard_runs=1),
        )
    return AnalysisConfig()


@pytest.fixture
def emit(capsys):
    """Print an artifact to the real terminal and persist it to disk."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")

    return _emit


def once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
