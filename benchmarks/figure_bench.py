"""Shared driver for the upload-performance figure benchmarks."""

import pathlib
from typing import Callable, Optional

from repro.analysis import AnalysisConfig, figure_to_csv, run_figure
from repro.analysis.figures import FigureResult

from benchmarks.conftest import RESULTS_DIR, once


def regenerate_figure(
    figure_id: str,
    benchmark,
    cfg: AnalysisConfig,
    emit,
    check: Optional[Callable[[FigureResult], None]] = None,
) -> FigureResult:
    """Run one figure under timing, emit chart + rows + CSV, check shape."""
    result = once(benchmark, lambda: run_figure(figure_id, cfg))

    lines = [result.render()]
    lines.append("")
    lines.append("data rows (mean ± σ seconds):")
    for size, by_series in result.rows():
        cells = ", ".join(f"{label}: {s.mean:.2f}±{s.std:.2f}" for label, s in by_series.items())
        lines.append(f"  {size:g} MB: {cells}")
    emit(figure_id, "\n".join(lines))

    # machine-readable twin for external plotting
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{figure_id}.csv").write_text(figure_to_csv(result))

    if check is not None:
        check(result)
    return result


def route_means(result: FigureResult, label: str):
    """Mean seconds per size for one series."""
    return [s.mean for s in result.series[label]]
