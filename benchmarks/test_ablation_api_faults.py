"""Ablation: API reliability — transient-error rate vs upload time.

Provider frontends throw transient 429/5xx under load; SDKs retry with
exponential backoff.  Sweeping the injected error rate shows the cost of
flakiness on a chunked upload (Dropbox's 24 chunks per 100 MB make it
the most request-heavy protocol, hence the most fault-sensitive).
"""

import numpy as np

from repro.cloud import FaultInjector
from repro.core import DirectRoute, PlanExecutor, TransferPlan
from repro.testbed import build_case_study
from repro.transfer import FileSpec
from repro.units import mb

from benchmarks.conftest import once

ERROR_RATES = (0.0, 0.05, 0.15, 0.30)


def _run(provider_name: str, error_rate: float) -> float:
    world = build_case_study(seed=2, cross_traffic=False)
    provider = world.provider(provider_name)
    if error_rate:
        provider.fault_injector = FaultInjector(
            np.random.default_rng(7), error_rate=error_rate)
    plan = TransferPlan("ubc", provider_name, FileSpec("f.bin", int(mb(100))),
                        DirectRoute())
    result = PlanExecutor(world).run(plan)
    injected = provider.fault_injector.injected if provider.fault_injector else 0
    return result.total_s, injected


def _sweep():
    rows = []
    for rate in ERROR_RATES:
        gdrive_t, gdrive_n = _run("gdrive", rate)
        dropbox_t, dropbox_n = _run("dropbox", rate)
        rows.append((rate, gdrive_t, gdrive_n, dropbox_t, dropbox_n))
    return rows


def test_ablation_api_faults(benchmark, emit):
    rows = once(benchmark, _sweep)

    lines = ["Ablation: transient API error rate vs 100 MB upload time (UBC, direct)",
             "", f"{'error rate':>10} {'Drive (s)':>10} {'faults':>7} "
                 f"{'Dropbox (s)':>12} {'faults':>7}"]
    for rate, gt, gn, dt, dn in rows:
        lines.append(f"{rate:>10.0%} {gt:>10.1f} {gn:>7} {dt:>12.1f} {dn:>7}")
    emit("ablation_api_faults", "\n".join(lines))

    by_rate = {r: (gt, dt) for r, gt, _, dt, _ in rows}
    g0, d0 = by_rate[0.0]
    g30, d30 = by_rate[0.30]
    # flakiness costs time, monotonically
    gdrive_times = [gt for _, gt, _, _, _ in rows]
    assert all(a <= b + 0.5 for a, b in zip(gdrive_times, gdrive_times[1:]))
    assert g30 > g0 + 1.0
    # every upload still completes well under 2x the clean time at 30%
    assert g30 < 2.0 * g0
    assert d30 < 2.0 * d0
