"""Ablation: API chunk size vs upload time.

Per-chunk request overhead (an RTT plus server time) is the fixed cost
that shapes the small-file intercepts in every figure.  Sweeping the
chunk size for a Drive-like protocol shows the classic tradeoff: tiny
chunks drown in per-request overhead on long-RTT paths; huge chunks
lose nothing here (no failure/retry model) so the curve flattens.
"""

from repro.cloud import CloudProvider
from repro.cloud.provider import UploadProtocol
from repro.core import PlanExecutor, TransferPlan, DirectRoute
from repro.testbed import build_case_study
from repro.transfer import FileSpec
from repro.units import MiB, mb

from benchmarks.conftest import once

CHUNK_MIB = (1, 2, 4, 8, 16, 32)


def _protocol(chunk_mib: int) -> UploadProtocol:
    return UploadProtocol(
        name=f"gdrive-{chunk_mib}mib",
        chunk_bytes=chunk_mib * MiB,
        session_init_server_s=0.25,
        per_chunk_server_s=0.06,
        commit_server_s=0.35,
    )


def _sweep():
    rows = []
    for chunk_mib in CHUNK_MIB:
        world = build_case_study(seed=5, cross_traffic=False)
        provider = CloudProvider(
            name=f"gdrive-{chunk_mib}mib", display_name="chunk ablation",
            api_hostname=f"api-{chunk_mib}.example", auth_hostname=f"auth-{chunk_mib}.example",
            frontend_nodes=["gdrive-frontend"], protocol=_protocol(chunk_mib),
        )
        world.add_provider(provider)
        # measure from Purdue (long RTT + slow path: overhead-sensitive)
        plan = TransferPlan("purdue", provider.name,
                            FileSpec("t.bin", int(mb(60))), DirectRoute())
        result = PlanExecutor(world).run(plan)
        rows.append((chunk_mib, result.total_s))
    return rows


def test_ablation_chunk_size(benchmark, emit):
    rows = once(benchmark, _sweep)

    lines = ["Ablation: upload-protocol chunk size (60 MB, Purdue -> Drive path)",
             "", f"{'chunk MiB':>9} {'time (s)':>10}"]
    for chunk_mib, t in rows:
        lines.append(f"{chunk_mib:>9} {t:>10.1f}")
    emit("ablation_chunk_size", "\n".join(lines))

    by_chunk = dict(rows)
    # small chunks pay for their per-request overheads
    assert by_chunk[1] > by_chunk[8]
    # beyond the default the curve is nearly flat (<3% further change)
    assert abs(by_chunk[32] - by_chunk[8]) / by_chunk[8] < 0.03
    # monotone non-increasing within tolerance
    times = [t for _, t in rows]
    for a, b in zip(times, times[1:]):
        assert b <= a * 1.01
