"""Ablation: congestion intensity vs mean and variance (Purdue -> OneDrive).

The paper's Table IV variance comes from sharing congested interconnects.
Scaling the elephant herd on the TransitA-Microsoft peering from absent
to aggressive shows both the mean transfer time and its σ rising — and
the detour's advantage widening — organically, with no per-run fudge
factors.
"""

from repro.analysis import AnalysisConfig, measure_cell
from repro.core import DetourRoute, DirectRoute
from repro.measure import ExperimentProtocol
from repro.testbed import DEFAULT_PARAMS
from repro.units import mbps

from benchmarks.conftest import once

#: (label, elephant rate Mbit/s or None, parallel flows)
LEVELS = [
    ("none", None, 1),
    ("light", 1.5, 1),
    ("paper", 3.0, 2),
    ("heavy", 3.4, 3),
]


def _sweep():
    rows = []
    for label, rate, flows in LEVELS:
        overrides = dict(
            transita_microsoft_elephant_bps=mbps(rate) if rate else mbps(0.001),
            transita_microsoft_elephant_flows=flows,
        )
        if rate is None:
            # disable the elephant by making it negligible
            overrides["transita_microsoft_elephant_bps"] = mbps(0.001)
        cfg = AnalysisConfig(
            sizes_mb=(100,),
            protocol=ExperimentProtocol(total_runs=5, discard_runs=1),
            params=DEFAULT_PARAMS.with_overrides(**overrides),
        )
        direct = measure_cell(cfg, "purdue", "onedrive", DirectRoute(), 100).kept
        detour = measure_cell(cfg, "purdue", "onedrive", DetourRoute("ualberta"), 100).kept
        rows.append((label, direct, detour))
    return rows


def test_ablation_crosstraffic(benchmark, emit):
    rows = once(benchmark, _sweep)

    lines = ["Ablation: interconnect congestion vs mean/σ (100 MB, Purdue -> OneDrive)",
             "", f"{'level':>7} {'direct mean':>12} {'direct σ':>9} "
                 f"{'detour mean':>12} {'detour wins by':>15}"]
    for label, direct, detour in rows:
        gain = (1 - detour.mean / direct.mean) * 100
        lines.append(f"{label:>7} {direct.mean:>11.1f}s {direct.std:>8.1f}s "
                     f"{detour.mean:>11.1f}s {gain:>14.1f}%")
    emit("ablation_crosstraffic", "\n".join(lines))

    by_label = {label: (d, v) for label, d, v in rows}
    none_d, _ = by_label["none"]
    paper_d, paper_v = by_label["paper"]
    heavy_d, _ = by_label["heavy"]
    # congestion raises the direct mean substantially and monotonically
    assert none_d.mean < paper_d.mean < heavy_d.mean
    assert paper_d.mean > 1.25 * none_d.mean
    # the detour avoids the congested peering: its mean barely moves
    detour_means = [v.mean for _, _, v in rows]
    assert max(detour_means) - min(detour_means) < 0.25 * min(detour_means)
    # at the paper's operating point, the detour wins decisively
    assert paper_v.mean < 0.7 * paper_d.mean
