"""Ablation: multipath (direct + detour simultaneously) vs single path.

The paper's related work notes multiple paths "would require changes to
the provider's API"; this quantifies what that change would buy (and
where it buys nothing: shared-bottleneck sources like UCLA).
"""

from repro.core import (
    DetourRoute,
    DirectRoute,
    MultipathUpload,
    PlanExecutor,
    TransferPlan,
)
from repro.testbed import build_case_study
from repro.transfer import FileSpec
from repro.units import mb

from benchmarks.conftest import once


def _single(client, provider, route, size):
    world = build_case_study(seed=6, cross_traffic=False)
    plan = TransferPlan(client, provider, FileSpec("s.bin", size), route)
    return PlanExecutor(world).run(plan).total_s


def _multi(client, provider, size):
    world = build_case_study(seed=6, cross_traffic=False)
    mp = MultipathUpload(world)
    proc = world.sim.process(mp.run(
        client, provider, FileSpec("m.bin", size),
        routes=[DirectRoute(), DetourRoute("ualberta")]))
    world.sim.run_until_triggered(proc.done, horizon=1e7)
    return proc.result


def _evaluate():
    rows = []
    for client, size_mb in [("ubc", 100), ("purdue", 60), ("ucla", 30)]:
        size = int(mb(size_mb))
        t_direct = _single(client, "gdrive", DirectRoute(), size)
        t_detour = _single(client, "gdrive", DetourRoute("ualberta"), size)
        result = _multi(client, "gdrive", size)
        rows.append((client, size_mb, t_direct, t_detour, result))
    return rows


def test_ablation_multipath(benchmark, emit):
    rows = once(benchmark, _evaluate)

    lines = ["Ablation: multipath upload vs single routes (to Google Drive)", "",
             f"{'client':>8} {'MB':>5} {'direct':>8} {'detour':>8} {'multipath':>10} "
             f"{'vs best single':>15}"]
    for client, size_mb, t_d, t_v, result in rows:
        best = min(t_d, t_v)
        gain = (1 - result.total_s / best) * 100
        lines.append(f"{client:>8} {size_mb:>5} {t_d:>7.1f}s {t_v:>7.1f}s "
                     f"{result.total_s:>9.1f}s {gain:>14.1f}%")
        split = ", ".join(f"{p.route_descr}={p.part_bytes / 1e6:.0f}MB"
                          for p in result.parts)
        lines.append(f"{'':>14} split: {split}")
    emit("ablation_multipath", "\n".join(lines))

    by_client = {r[0]: r for r in rows}

    # UBC: disjoint bottlenecks -> multipath beats the best single path
    _, _, t_d, t_v, res = by_client["ubc"]
    assert res.total_s < min(t_d, t_v)
    assert len(res.parts) == 2

    # Purdue: detour dominates so heavily the direct path contributes a
    # small share at best; multipath must not be (much) worse than detour
    _, _, t_d, t_v, res = by_client["purdue"]
    assert res.total_s < 1.15 * min(t_d, t_v)

    # UCLA: shared last mile -> no real gain over the best single path
    _, _, t_d, t_v, res = by_client["ucla"]
    assert res.total_s > 0.9 * min(t_d, t_v)
