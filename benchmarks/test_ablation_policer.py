"""Ablation: Pacific Wave policer rate sensitivity.

The case study's inefficiency is one policed egress.  Sweeping the
policer rate shows where the direct/detour crossover falls: at the
historical ~10 Mbit/s the detour wins 2.4x; once the egress is as fast
as the CANARIE-Google peering, the direct route wins and detours are
pure overhead — i.e., the paper's mitigation is exactly as transitory as
the bottleneck it routes around.
"""

from repro.analysis import AnalysisConfig, measure_cell
from repro.core import DetourRoute, DirectRoute
from repro.measure import ExperimentProtocol
from repro.testbed import DEFAULT_PARAMS
from repro.units import mbps

from benchmarks.conftest import once

POLICER_MBPS = (2.5, 5, 9.6, 20, 40, 60)


def _sweep():
    rows = []
    for rate in POLICER_MBPS:
        cfg = AnalysisConfig(
            sizes_mb=(100,),
            protocol=ExperimentProtocol(total_runs=3, discard_runs=1),
            params=DEFAULT_PARAMS.with_overrides(pacificwave_policer_bps=mbps(rate)),
            cross_traffic=False,
        )
        direct = measure_cell(cfg, "ubc", "gdrive", DirectRoute(), 100).mean_s
        detour = measure_cell(cfg, "ubc", "gdrive", DetourRoute("ualberta"), 100).mean_s
        rows.append((rate, direct, detour))
    return rows


def test_ablation_policer(benchmark, emit):
    rows = once(benchmark, _sweep)

    lines = ["Ablation: Pacific Wave policer rate vs best route (100 MB, UBC -> Drive)",
             "", f"{'policer Mbit/s':>14} {'direct (s)':>11} {'detour (s)':>11} {'winner':>12}"]
    for rate, direct, detour in rows:
        winner = "detour" if detour < direct else "direct"
        lines.append(f"{rate:>14g} {direct:>11.1f} {detour:>11.1f} {winner:>12}")
    emit("ablation_policer", "\n".join(lines))

    by_rate = {r: (d, v) for r, d, v in rows}
    # historical operating point: detour wins big
    d, v = by_rate[9.6]
    assert v < 0.6 * d
    # tighter policing -> even bigger detour advantage
    d25, v25 = by_rate[2.5]
    assert v25 < 0.2 * d25
    # once the egress is unthrottled, direct wins (detour = pure overhead)
    d60, v60 = by_rate[60]
    assert d60 < v60
    # detour time is flat across the sweep (it avoids the policer entirely)
    detours = [v for _, _, v in rows]
    assert max(detours) - min(detours) < 0.2 * min(detours)
    # direct time is monotone non-increasing in the policer rate
    directs = [d for _, d, _ in rows]
    assert all(a >= b - 1e-6 for a, b in zip(directs, directs[1:]))
