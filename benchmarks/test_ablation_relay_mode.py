"""Ablation: store-and-forward (paper) vs pipelined (extension) detours.

The paper's detour pays t1 + t2; a cut-through relay overlaps the legs
and should approach max(t1, t2).  Quantifies what the paper leaves on
the table by staging whole files.
"""

from repro.core import DetourRoute, PlanExecutor, TransferPlan
from repro.testbed import build_case_study
from repro.transfer import FileSpec, RelayMode
from repro.units import mb

from benchmarks.conftest import once

SIZES_MB = (10, 50, 100)


def _run_modes():
    rows = []
    for size in SIZES_MB:
        spec = FileSpec(f"t{size}.bin", int(mb(size)))
        world_sf = build_case_study(seed=3, cross_traffic=False)
        sf = PlanExecutor(world_sf).run(TransferPlan(
            "ubc", "gdrive", spec, DetourRoute("ualberta")))
        world_pl = build_case_study(seed=3, cross_traffic=False)
        pl = PlanExecutor(world_pl).run(TransferPlan(
            "ubc", "gdrive", spec,
            DetourRoute("ualberta", mode=RelayMode.PIPELINED)))
        rows.append((size, sf.total_s, pl.total_s, sf.legs))
    return rows


def test_ablation_relay_mode(benchmark, emit):
    rows = once(benchmark, _run_modes)

    lines = ["Ablation: detour relay mode (UBC -> Google Drive via UAlberta)", "",
             f"{'MB':>5} {'store-and-forward':>18} {'pipelined':>10} {'saving':>8}"]
    for size, sf, pl, _ in rows:
        lines.append(f"{size:>5} {sf:>17.1f}s {pl:>9.1f}s {(1 - pl / sf) * 100:>7.1f}%")
    emit("ablation_relay_mode", "\n".join(lines))

    for size, sf, pl, legs in rows:
        assert pl < sf, f"{size} MB: pipelining must help"
        if size >= 50:
            # big transfers approach the slower leg (within 40%); small
            # ones stay setup-dominated (ssh + TLS + session init)
            slower_leg = max(leg.duration_s for leg in legs)
            assert pl < 1.4 * slower_leg
    # savings grow toward ~45% as the two legs are nearly balanced
    _, sf100, pl100, _ = rows[-1]
    assert (1 - pl100 / sf100) > 0.30
