"""Ablation: firewall per-flow caps and the Science DMZ bypass.

The paper's future work points at firewall bottlenecks "like Science
DMZ" [2].  Sweeping the campus firewall's per-flow inspection cap shows
how a detour through an in-firewall DTN decays while the DMZ-sited DTN
keeps the full detour benefit — quantifying why DTN *placement* matters
as much as DTN existence.
"""

from repro.core import DetourRoute, DirectRoute, PlanExecutor, TransferPlan
from repro.testbed import DMZ_DTN_SITE, build_science_dmz_world
from repro.transfer import FileSpec
from repro.units import mb, mbps

from benchmarks.conftest import once

CAPS_MBPS = (5, 10, 20, 40)


def _run(world, client, provider, route):
    plan = TransferPlan(client, provider, FileSpec("t.bin", int(mb(100))), route)
    return PlanExecutor(world).run(plan).total_s


def _sweep():
    rows = []
    for cap in CAPS_MBPS:
        world = build_science_dmz_world(seed=4, per_flow_cap_bps=mbps(cap),
                                        cross_traffic=False)
        direct = _run(world, "ubc", "gdrive", DirectRoute())
        via_fw = _run(world, "ubc", "gdrive", DetourRoute("ualberta"))
        via_dmz = _run(world, "ubc", "gdrive", DetourRoute(DMZ_DTN_SITE))
        rows.append((cap, direct, via_fw, via_dmz))
    return rows


def test_ablation_science_dmz(benchmark, emit):
    rows = once(benchmark, _sweep)

    lines = ["Ablation: campus firewall per-flow cap vs detour quality",
             "(100 MB, UBC -> Google Drive; direct is the 9.6 Mbit/s policed route)",
             "",
             f"{'fw cap Mbit/s':>13} {'direct':>8} {'detour via fw DTN':>18} "
             f"{'detour via DMZ DTN':>19}"]
    for cap, direct, via_fw, via_dmz in rows:
        lines.append(f"{cap:>13} {direct:>7.1f}s {via_fw:>17.1f}s {via_dmz:>18.1f}s")
    emit("ablation_science_dmz", "\n".join(lines))

    by_cap = {c: (d, f, z) for c, d, f, z in rows}
    # the DMZ detour is cap-independent and always reproduces ~36 s
    dmz_times = [z for _, _, _, z in rows]
    assert max(dmz_times) - min(dmz_times) < 2.0
    assert all(30 < z < 45 for z in dmz_times)
    # the firewalled detour degrades as the cap tightens
    fw_times = [f for _, _, f, _ in rows]
    assert fw_times[0] > fw_times[-1] * 1.8
    # at a 5 Mbit/s cap the firewalled detour is WORSE than the policed
    # direct route — a detour can be un-done by the wrong DTN placement
    d5, f5, z5 = by_cap[5]
    assert f5 > d5
    assert z5 < d5
    # at 40 Mbit/s the firewall barely matters
    d40, f40, z40 = by_cap[40]
    assert f40 < 1.25 * z40
