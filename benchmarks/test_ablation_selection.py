"""Ablation: automatic detour-selection quality (the paper's future work).

For every (client, provider) pair at 100 MB, compare the upload time of
the route each selector picks against the oracle's choice.  Reports
per-pair decisions and the total regret (extra seconds vs oracle).
"""

from repro.core import (
    OracleSelector,
    PlanExecutor,
    ProbeSelector,
    SelectionContext,
    TransferPlan,
)
from repro.testbed import CLIENTS, PROVIDERS, VIAS, build_case_study, world_factory
from repro.transfer import FileSpec
from repro.units import mb

from benchmarks.conftest import once

SIZE = int(mb(100))
EVAL_SEED = 77


def _route_time(client, provider, route):
    """Ground-truth time of a route in a fresh evaluation world."""
    world = build_case_study(seed=EVAL_SEED, cross_traffic=False)
    plan = TransferPlan(client, provider, FileSpec("eval.bin", SIZE), route)
    return PlanExecutor(world).run(plan).total_s


def _drive(world, gen):
    proc = world.sim.process(gen)
    world.sim.run_until_triggered(proc.done, horizon=1e7)
    if proc.error:
        raise proc.error
    return proc.result


def _evaluate():
    oracle = OracleSelector(world_factory(cross_traffic=False), runs=2, discard=0)
    rows = []
    for client in CLIENTS:
        for provider in PROVIDERS:
            vias = tuple(v for v in VIAS if v != client)

            ctx_o = SelectionContext(
                build_case_study(seed=1, cross_traffic=False), client, provider, SIZE, vias)
            oracle_route = _drive(ctx_o.world, oracle.choose(ctx_o))

            ctx_p = SelectionContext(
                build_case_study(seed=2, cross_traffic=False), client, provider, SIZE, vias)
            probe_route = _drive(ctx_p.world, ProbeSelector().choose(ctx_p))

            t_oracle = _route_time(client, provider, oracle_route)
            t_probe = _route_time(client, provider, probe_route)
            rows.append((client, provider, oracle_route.describe(), t_oracle,
                         probe_route.describe(), t_probe))
    return rows


def test_ablation_selection(benchmark, emit):
    rows = once(benchmark, _evaluate)

    lines = ["Ablation: probe-based selection vs oracle (100 MB uploads)", "",
             f"{'client':>8} {'provider':>9} | {'oracle':<14} {'(s)':>8} | "
             f"{'probe':<14} {'(s)':>8} {'regret':>8}"]
    total_oracle = total_probe = 0.0
    for client, provider, o_route, o_t, p_route, p_t in rows:
        total_oracle += o_t
        total_probe += p_t
        lines.append(f"{client:>8} {provider:>9} | {o_route:<14} {o_t:>8.1f} | "
                     f"{p_route:<14} {p_t:>8.1f} {p_t - o_t:>+8.1f}")
    lines.append("")
    lines.append(f"total: oracle {total_oracle:.1f}s, probe {total_probe:.1f}s, "
                 f"regret {(total_probe / total_oracle - 1) * 100:.1f}%")
    emit("ablation_selection", "\n".join(lines))

    # probe selection is near-oracle overall: <10% total regret
    assert total_probe < 1.10 * total_oracle
    # and each individual decision costs at most 25% over the oracle
    for client, provider, _, o_t, _, p_t in rows:
        assert p_t < 1.25 * o_t, f"{client}->{provider}: probe regret too high"
