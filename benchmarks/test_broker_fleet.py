"""Broker vs broker-off fleet: the control plane must pay for itself.

Runs the same ≥50-upload, three-site fleet schedule on the calibrated
testbed under four policies — direct-only, both static detours, and the
broker — then records to ``benchmarks/results/BENCH_broker.json``:

* mean transfer time per policy (broker must beat direct-only by ≥20%,
  and ``static_best_s`` is the best broker-off policy for reference),
* probe amortization (≤ 1 probe per 5 uploads),
* steady-state directory hit rate (≥ 80%),

and asserts the broker run is byte-deterministic (two runs, identical
canonical dicts).
"""

import json

import pytest

from repro.broker import BrokerConfig, run_fleet, score_fleet

from benchmarks.conftest import RESULTS_DIR, once

pytestmark = pytest.mark.broker

SITES = ("ubc", "purdue", "ucla")
UPLOADS_PER_SITE = 20
N_UPLOADS = UPLOADS_PER_SITE * len(SITES)
SEED = 0

#: Probe budget sized to the acceptance bar: ≤ 1 probe per 5 uploads.
CONFIG = BrokerConfig(max_probes=N_UPLOADS // 5, ttl_s=7200.0)

FLEET_KW = dict(
    sites=SITES,
    provider="gdrive",
    n_uploads_per_site=UPLOADS_PER_SITE,
    mean_interarrival_s=60.0,
    mean_size_mb=40.0,
    cross_traffic=True,
)

MODES = ("direct", "static:via ualberta", "static:via umich", "broker")


def _run(mode):
    config = CONFIG if mode == "broker" else None
    return run_fleet(SEED, mode=mode, config=config, **FLEET_KW)


def test_broker_fleet_beats_direct(benchmark, emit):
    def run_all():
        results = {mode: _run(mode) for mode in MODES}
        repeat = _run("broker")
        return results, repeat

    results, repeat = once(benchmark, run_all)
    broker = results["broker"]

    # byte-determinism: the exact ledger, not just the means
    assert json.dumps(broker.to_dict(), sort_keys=True) == \
        json.dumps(repeat.to_dict(), sort_keys=True)

    direct_s = results["direct"].mean_transfer_s
    static_best_mode = min(
        (m for m in MODES if m.startswith("static:")),
        key=lambda m: results[m].mean_transfer_s)
    static_best_s = results[static_best_mode].mean_transfer_s
    broker_s = broker.mean_transfer_s

    # the acceptance bar: ≥20% faster than direct-only, amortized
    # probing ≤ 1 per 5 uploads, steady-state hit rate ≥ 80%
    assert broker_s <= 0.8 * direct_s, (broker_s, direct_s)
    assert broker.probes_per_upload <= 0.2, broker.probes_per_upload
    assert broker.hit_rate >= 0.8, broker.hit_rate

    score = score_fleet(results)
    record = {
        "uploads": N_UPLOADS,
        "sites": list(SITES),
        "seed": SEED,
        "direct_mean_s": round(direct_s, 3),
        "static_best_mode": static_best_mode,
        "static_best_mean_s": round(static_best_s, 3),
        "broker_mean_s": round(broker_s, 3),
        "speedup_vs_direct": round(direct_s / broker_s, 2),
        "probes_issued": broker.probes_issued,
        "probes_per_upload": round(broker.probes_per_upload, 3),
        "directory_hit_rate": round(broker.hit_rate, 3),
        "admission_spills": broker.admission_spills,
        "oracle_mean_s": round(score.oracle_mean_s, 3),
        "regret_s": {m: round(score.by_mode[m][1], 3) for m in MODES},
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_broker.json").write_text(
        json.dumps(record, indent=1) + "\n")
    emit("broker_fleet",
         f"broker fleet: {N_UPLOADS} uploads over {'+'.join(SITES)}\n"
         f"{score.render()}\n"
         f"direct {direct_s:.1f}s  static-best [{static_best_mode}] "
         f"{static_best_s:.1f}s  broker {broker_s:.1f}s "
         f"({record['speedup_vs_direct']:.2f}x vs direct)\n"
         f"probes/upload {broker.probes_per_upload:.3f}  "
         f"hit rate {broker.hit_rate:.0%}  "
         f"spills {broker.admission_spills}")
