"""Campaign engine: serial-vs-parallel wall-clock on a fixed 12-cell matrix.

Times the same campaign twice — ``jobs=1`` in-process and ``jobs=4``
worker processes — asserts the exports are byte-identical (the engine's
core contract), and records both wall-clocks plus the speedup to
``benchmarks/results/BENCH_campaign.json``.  No result store is used:
both runs must compute every cell.

The recorded speedup is only meaningful relative to the recorded
``cpus``: on a single-core box the parallel run *should* come out
slightly slower (fork + pipe overhead with no cores to spend it on), so
the assertion here only bounds that overhead, it does not demand a win.
"""

import json
import os
import time

from repro.campaign import CampaignRunner, CampaignSpec, PoolConfig, export_records
from repro.measure import ExperimentProtocol

from benchmarks.conftest import RESULTS_DIR, once

#: 1 client x 2 providers x 3 routes x 2 sizes = 12 cells, each heavy
#: enough (cross-traffic, 10/20 MB) that fork overhead doesn't dominate.
SPEC = CampaignSpec(
    clients=("ubc",),
    providers=("gdrive", "dropbox"),
    sizes_mb=(10.0, 20.0),
    protocol=ExperimentProtocol(total_runs=3, discard_runs=1),
)

JOBS = 4


def test_campaign_parallel_speedup(benchmark, emit):
    cells = len(SPEC.expand())
    assert cells == 12

    def run_both():
        t0 = time.perf_counter()
        serial = CampaignRunner(SPEC, pool=PoolConfig(jobs=1)).run()
        t1 = time.perf_counter()
        parallel = CampaignRunner(SPEC, pool=PoolConfig(jobs=JOBS)).run()
        t2 = time.perf_counter()
        return serial, parallel, t1 - t0, t2 - t1

    serial, parallel, serial_s, parallel_s = once(benchmark, run_both)

    # the engine's core contract: scheduling never changes the numbers
    assert export_records(serial.records, SPEC) == \
        export_records(parallel.records, SPEC)
    assert serial.errors == parallel.errors == 0

    record = {
        "cells": cells,
        "jobs": JOBS,
        "cpus": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_campaign.json").write_text(
        json.dumps(record, indent=1) + "\n")
    emit("campaign_engine",
         f"campaign engine: {cells} cells on {record['cpus']} cpu(s)  "
         f"serial {serial_s:.2f}s  jobs={JOBS} {parallel_s:.2f}s  "
         f"speedup {record['speedup']:.2f}x")

    # worker fan-out overhead must stay bounded even with nothing to
    # gain (1 cpu); with cores available the ratio should exceed 1
    assert parallel_s < serial_s * 1.5
