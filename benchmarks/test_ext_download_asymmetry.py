"""Extension: upload/download asymmetry under source-based policy routing.

The pacificwave PBR rule matches PlanetLab *source* prefixes, so it only
throttles UBC's uploads; downloads ride the clean peering.  The detour
that more than halves upload time is pure overhead for downloads — a
routing detour is a per-direction decision.  (The paper benchmarks
uploads only; this quantifies the other direction.)
"""

from repro.core import DetourRoute, DirectRoute, PlanExecutor, TransferPlan
from repro.testbed import build_case_study
from repro.transfer import FileSpec
from repro.units import mb

from benchmarks.conftest import once


def _measure():
    rows = []
    for direction in ("upload", "download"):
        times = {}
        for route in (DirectRoute(), DetourRoute("ualberta")):
            world = build_case_study(seed=8, cross_traffic=False)
            executor = PlanExecutor(world)
            spec = FileSpec("dataset.bin", int(mb(100)))
            plan = TransferPlan("ubc", "gdrive", spec, route)
            if direction == "upload":
                result = executor.run(plan)
            else:
                world.provider("gdrive").store.put(
                    "dataset.bin", spec.size_bytes, "digest", "owner", now=0.0)
                proc = world.sim.process(executor.execute_download(plan))
                world.sim.run_until_triggered(proc.done, horizon=1e7)
                result = proc.result
            times[route.describe()] = result.total_s
        rows.append((direction, times))
    return rows


def test_ext_download_asymmetry(benchmark, emit):
    rows = once(benchmark, _measure)

    lines = ["Extension: direction asymmetry (100 MB, UBC <-> Google Drive)", "",
             f"{'direction':>9} {'direct':>9} {'via ualberta':>13} {'best route':>12}"]
    for direction, times in rows:
        best = min(times, key=times.get)
        lines.append(f"{direction:>9} {times['direct']:>8.1f}s "
                     f"{times['via ualberta']:>12.1f}s {best:>12}")
    lines.append("")
    lines.append("The PBR artifact matches source prefixes: it throttles uploads only.")
    emit("ext_download_asymmetry", "\n".join(lines))

    by_dir = dict(rows)
    up = by_dir["upload"]
    down = by_dir["download"]
    # uploads: the paper's result — detour wins big
    assert up["via ualberta"] < 0.55 * up["direct"]
    # downloads: direct wins (no policer on the reverse path)
    assert down["direct"] < down["via ualberta"]
    # and the direct download is far faster than the direct upload
    assert down["direct"] < 0.4 * up["direct"]
