"""Extension: sizing a shared campus DTN service.

"Universities and institutions with the appropriate means can provide
routing detours" (paper Sec. I).  How many concurrent relay sessions
must that DTN allow?  We push a Purdue upload population through the
UAlberta DTN at several session limits and report queueing delay and
end-to-end completion times from the resource statistics.
"""

from repro.core import DetourRoute, PlanExecutor, TransferPlan
from repro.testbed import build_case_study
from repro.workloads import client_population_schedule

from benchmarks.conftest import once

SESSION_LIMITS = (1, 2, 4, 8)


def _run_population(max_sessions: int):
    world = build_case_study(seed=14)
    world.add_dtn("svc", "ualberta-dtn", max_sessions=max_sessions)
    executor = PlanExecutor(world)
    schedule = client_population_schedule(
        "purdue", "gdrive", n_uploads=10, mean_interarrival_s=60.0,
        mean_size_mb=30.0, seed=3,
    )
    durations = []

    def user(upload):
        plan = TransferPlan(upload.client_site, upload.provider_name,
                            upload.file, DetourRoute("svc"))
        result = yield from executor.execute(plan)
        durations.append(result.total_s)

    def arrivals():
        now = 0.0
        for upload in schedule.uploads:
            yield upload.start_s - now
            now = upload.start_s
            world.sim.process(user(upload))

    world.sim.process(arrivals())
    while len(durations) < len(schedule.uploads):
        if world.sim.peek() is None or world.sim.now > 1e6:
            break
        world.sim.step()
    dtn = world.dtn_of("svc")
    return durations, dtn.sessions


def _sweep():
    rows = []
    for limit in SESSION_LIMITS:
        durations, sessions = _run_population(limit)
        mean = sum(durations) / len(durations)
        worst = max(durations)
        rows.append((limit, mean, worst, sessions.total_waits,
                     sessions.mean_wait_s, sessions.peak_in_use))
    return rows


def test_ext_dtn_sizing(benchmark, emit):
    rows = once(benchmark, _sweep)

    lines = ["Extension: DTN session-limit sizing "
             "(10 Purdue uploads, ~30 MB, ~1/min, via UAlberta DTN)", "",
             f"{'slots':>5} {'mean upload':>12} {'worst':>8} {'queued':>7} "
             f"{'mean wait':>10} {'peak use':>9}"]
    for limit, mean, worst, waits, wait_s, peak in rows:
        lines.append(f"{limit:>5} {mean:>11.1f}s {worst:>7.1f}s {waits:>7} "
                     f"{wait_s:>9.1f}s {peak:>9}")
    emit("ext_dtn_sizing", "\n".join(lines))

    by_limit = {r[0]: r for r in rows}
    # one slot serializes everything: heavy queueing
    assert by_limit[1][3] > 0          # waits occurred
    assert by_limit[1][1] > by_limit[4][1]  # mean time improves with slots
    # diminishing returns: beyond the natural concurrency, nothing changes
    assert abs(by_limit[4][1] - by_limit[8][1]) < 2.0
    # with enough slots nobody waits
    assert by_limit[8][3] == 0
    # every configuration completed the full population
    for limit, mean, worst, *_ in rows:
        assert worst < 2000
