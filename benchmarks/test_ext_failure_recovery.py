"""Extension: recovery from a mid-transfer link failure.

The RON lineage the paper builds on exists because BGP converges slowly
(or not at all) around failures.  This bench times a monitored 100 MB
upload through three regimes — no failure, failure with rerouting
(bottleneck monitor + segment timeout), and failure without any
monitoring (the transfer stalls on the dead detour until its timeout
would expire) — quantifying what the monitoring extension buys.
"""

from repro.core import (
    BottleneckMonitor,
    DetourRoute,
    MonitoredUpload,
    PlanExecutor,
    TransferPlan,
)
from repro.testbed import build_case_study
from repro.transfer import FileSpec
from repro.units import mb

from benchmarks.conftest import once

FAIL_LINK = "canarie-vncv--canarie-edmn"
SIZE = int(mb(100))


def _chaos_when_rsync_inflight(world, marker: str):
    def chaos():
        while True:
            yield 0.5
            inflight = any(
                t.label.startswith("rsync:") and marker in t.label
                for t in world.engine.active_transfers()
            )
            if inflight and world.sim.now > 15.0:
                world.fail_link(FAIL_LINK)
                return

    world.sim.process(chaos())


def _monitored(fail: bool) -> float:
    world = build_case_study(seed=17, cross_traffic=False)
    monitor = BottleneckMonitor(world, "ubc", "gdrive", ("ualberta",),
                                probe_bytes=int(mb(1)), alpha=1.0)
    upload = MonitoredUpload(monitor, segment_bytes=int(mb(10)),
                             switch_threshold=1.2, segment_timeout_s=45.0)
    if fail:
        _chaos_when_rsync_inflight(world, "payload.bin")
    proc = world.sim.process(upload.run(FileSpec("payload.bin", SIZE)))
    world.sim.run_until_triggered(proc.done, horizon=1e6)
    return proc.result.total_s, proc.result


def _unmonitored_stall_time() -> float:
    """A plain detoured upload with the same failure: how long until it
    would finish at the residual rate?  (We bound the simulation rather
    than waiting out the ~years a 1 bps link implies.)"""
    world = build_case_study(seed=17, cross_traffic=False)
    executor = PlanExecutor(world)
    _chaos_when_rsync_inflight(world, "payload.bin")
    plan = TransferPlan("ubc", "gdrive", FileSpec("payload.bin", SIZE),
                        DetourRoute("ualberta"))
    proc = world.sim.process(executor.execute(plan))
    world.sim.run_until_triggered(proc.done, horizon=3600.0)
    return None if not proc.finished else proc.result.total_s


def test_ext_failure_recovery(benchmark, emit):
    def run_all():
        healthy_t, healthy = _monitored(fail=False)
        recovered_t, recovered = _monitored(fail=True)
        stalled = _unmonitored_stall_time()
        return healthy_t, healthy, recovered_t, recovered, stalled

    healthy_t, healthy, recovered_t, recovered, stalled = once(benchmark, run_all)

    lines = ["Extension: mid-transfer link-failure recovery (100 MB, UBC -> Drive)",
             "",
             f"no failure (monitored detour):     {healthy_t:7.1f} s "
             f"[routes: {' -> '.join(healthy.routes_used)}]",
             f"failure + monitoring:              {recovered_t:7.1f} s "
             f"[routes: {' -> '.join(recovered.routes_used)}, "
             f"{sum(1 for s in recovered.segments if not s.completed)} aborted segment(s)]",
             f"failure, no monitoring:            "
             + ("> 3600 s (still stalled when we stopped waiting)"
                if stalled is None else f"{stalled:7.1f} s")]
    emit("ext_failure_recovery", "\n".join(lines))

    # healthy monitored upload: detour throughout, ~55-75 s (probing tax)
    assert healthy.routes_used == ["via ualberta"]
    assert healthy_t < 100
    # recovery: switched to direct, finished within a few timeouts' worth
    assert recovered.routes_used[-1] == "direct"
    assert recovered_t < 350
    # without monitoring the transfer is dead in the water
    assert stalled is None