"""Extension: seed-robustness of the reproduction's headline conclusions.

A calibrated simulator can overfit one RNG stream.  This bench re-runs
the paper's four load-bearing conclusions across five master seeds and
requires each to hold in *every* world — the reproduction's conclusions
are properties of the modeled mechanisms, not of a lucky seed.
"""

from repro.analysis import AnalysisConfig, measure_cell
from repro.core import DetourRoute, DirectRoute
from repro.measure import ExperimentProtocol

from benchmarks.conftest import once

SEEDS = (1, 2, 3, 4, 5)


def _cfg(seed):
    return AnalysisConfig(master_seed=seed, sizes_mb=(100,),
                          protocol=ExperimentProtocol(total_runs=3, discard_runs=1))


def _conclusions(seed):
    cfg = _cfg(seed)

    def t(client, provider, route):
        return measure_cell(cfg, client, provider, route, 100).mean_s

    return {
        "ubc_gdrive_detour_wins": (
            t("ubc", "gdrive", DetourRoute("ualberta")),
            t("ubc", "gdrive", DirectRoute()),
        ),
        "ubc_dropbox_direct_wins": (
            t("ubc", "dropbox", DirectRoute()),
            t("ubc", "dropbox", DetourRoute("ualberta")),
        ),
        "purdue_gdrive_detour_wins_big": (
            t("purdue", "gdrive", DetourRoute("ualberta")),
            t("purdue", "gdrive", DirectRoute()),
        ),
        "ucla_nothing_helps_much": (
            t("ucla", "gdrive", DetourRoute("ualberta")),
            t("ucla", "gdrive", DirectRoute()),
        ),
    }


def test_ext_seed_robustness(benchmark, emit):
    per_seed = once(benchmark, lambda: {s: _conclusions(s) for s in SEEDS})

    lines = ["Extension: headline conclusions across five master seeds (100 MB)", ""]
    for seed, conclusions in per_seed.items():
        lines.append(f"seed {seed}:")
        for name, (a, b) in conclusions.items():
            lines.append(f"  {name:<32} {a:8.1f}s vs {b:8.1f}s")
    emit("ext_seed_robustness", "\n".join(lines))

    for seed, c in per_seed.items():
        detour, direct = c["ubc_gdrive_detour_wins"]
        assert detour < 0.55 * direct, f"seed {seed}: UBC detour must win big"
        direct, detour = c["ubc_dropbox_direct_wins"]
        assert direct < detour, f"seed {seed}: UBC Dropbox direct must win"
        detour, direct = c["purdue_gdrive_detour_wins_big"]
        assert detour < 0.5 * direct, f"seed {seed}: Purdue detour must win big"
        detour, direct = c["ucla_nothing_helps_much"]
        assert detour > 0.85 * direct, f"seed {seed}: UCLA detour must not help much"
