"""Extension: tornado-style calibration sensitivity analysis.

Every calibrated rate gets perturbed ±25% / -20%; every qualitative
conclusion of the paper is re-checked in the perturbed world.  The
reproduction's claims must be properties of the *mechanisms* (policy
routing, congested interconnects, last-mile caps), not of fourth-decimal
calibration — with one honest exception asserted below.
"""

from repro.analysis import render_sensitivity, run_sensitivity
from repro.analysis.sensitivity import RATE_KNOBS

from benchmarks.conftest import once


def test_ext_sensitivity(benchmark, emit):
    results = once(benchmark, lambda: run_sensitivity(factors=(0.8, 1.25)))
    emit("ext_sensitivity", render_sensitivity(results))

    flips = {(r.knob, r.factor): r.flipped for r in results if not r.all_hold}

    # The conclusions tied to *structural* mechanisms must survive every
    # perturbation of unrelated knobs.
    for r in results:
        if r.knob in ("ubc_access_bps", "canarie_dropbox_bps",
                      "i2_dropbox_bps", "transita_dropbox_bps",
                      "transitb_peering_bps"):
            assert r.all_hold, f"{r.knob} x{r.factor} flipped {r.flipped}"

    # Knobs that *should* matter are allowed to flip their own conclusion
    # (e.g. opening the pacificwave policer 25% erodes the UBC detour's
    # margin) — but never an unrelated one.
    related = {
        "pacificwave_policer_bps": {"ubc_gdrive_detour_wins"},
        "canarie_google_bps": {"ubc_gdrive_detour_wins", "purdue_gdrive_detours_win",
                               "ucla_detours_dont_help"},
        "ucla_access_bps": {"ucla_detours_dont_help"},
        "transita_google_bps": {"purdue_gdrive_detours_win"},
        "transitb_peering_bps": {"ucla_detours_dont_help"},
        "canarie_i2_bps": {"purdue_gdrive_detours_win", "ucla_detours_dont_help"},
        "i2_google_bps": {"purdue_gdrive_detours_win", "ucla_detours_dont_help"},
        "purdue_access_bps": {"purdue_gdrive_detours_win"},
        "umich_access_bps": {"purdue_gdrive_detours_win", "ucla_detours_dont_help"},
        "canarie_microsoft_bps": set(),
        "canarie_dropbox_bps": set(),
        "i2_microsoft_bps": set(),
        "i2_dropbox_bps": set(),
        "transita_microsoft_bps": set(),
        "transita_dropbox_bps": set(),
        "ubc_access_bps": {"ubc_gdrive_detour_wins", "ubc_dropbox_direct_wins"},
        "ucla_access_bps": {"ucla_detours_dont_help"},
    }
    for (knob, factor), flipped in flips.items():
        allowed = related.get(knob, set())
        assert set(flipped) <= allowed, (
            f"{knob} x{factor} flipped unrelated conclusion(s): {flipped}"
        )

    # and the overwhelming majority of (knob, factor, conclusion) cells hold
    total_cells = sum(len(r.conclusions) for r in results)
    held = sum(sum(r.conclusions.values()) for r in results)
    assert held / total_cells > 0.9
