"""Fig. 2: Upload performance from UBC to Google Drive.

Paper shape: the UAlberta detour beats direct at *every* size (by >30%,
>50% at most sizes); the UMich detour is always slowest; the bare
UBC->UAlberta rsync hop sits well below the direct upload curve.
"""

import numpy as np

from benchmarks.figure_bench import regenerate_figure, route_means


def test_fig02_ubc_gdrive(benchmark, paper_config, emit):
    def check(result):
        direct = np.array(route_means(result, "direct"))
        via_ua = np.array(route_means(result, "via ualberta"))
        via_um = np.array(route_means(result, "via umich"))
        hop = np.array(route_means(result, "UBC to UAlberta (rsync)"))

        assert (via_ua < direct).all(), "UAlberta detour must win at every size"
        assert (via_ua[1:] < 0.65 * direct[1:]).all(), ">35% gain beyond 10 MB"
        assert (via_um > direct).all(), "UMich detour must lose at every size"
        assert (hop < direct).all(), "the rsync hop is cheaper than direct upload"
        # times grow with size on every route
        assert (np.diff(direct) > 0).all() and (np.diff(via_ua) > 0).all()

    regenerate_figure("fig2", benchmark, paper_config, emit, check)
