"""Fig. 3: locations of clients, intermediate nodes, and cloud servers.

Regenerates the map data: site coordinates, pairwise great-circle
distances, and the geographic stretch of each detour — quantifying the
"significant geographical detour" of UBC -> UAlberta -> Mountain View.
"""

from repro.geo import (
    CLIENT_SITES,
    CLOUD_DATACENTERS,
    INTERMEDIATE_SITES,
    haversine_km,
    site,
)
from repro.geo.coords import detour_stretch

from benchmarks.conftest import once


def _build_map_data():
    rows = []
    for client in CLIENT_SITES:
        for dc in CLOUD_DATACENTERS:
            direct = haversine_km(client.location, dc.location)
            for via in INTERMEDIATE_SITES:
                stretch = detour_stretch(client.location, via.location, dc.location)
                rows.append((client.name, via.name, dc.name, direct, stretch))
    return rows


def test_fig03_geography(benchmark, emit):
    rows = once(benchmark, _build_map_data)

    lines = ["Fig. 3: geography of clients, DTNs, and cloud datacenters", ""]
    lines.append("site coordinates:")
    for s in CLIENT_SITES + INTERMEDIATE_SITES + CLOUD_DATACENTERS:
        lines.append(f"  {s.name:<12} {s.location}  ({s.city})")
    lines.append("")
    lines.append(f"{'client':<8} {'via':<10} {'datacenter':<12} {'direct km':>10} {'stretch':>8}")
    for client, via, dc, direct, stretch in rows:
        lines.append(f"{client:<8} {via:<10} {dc:<12} {direct:>10.0f} {stretch:>7.2f}x")
    emit("fig03", "\n".join(lines))

    by_key = {(c, v, d): s for c, v, d, _, s in rows}
    # the paper's headline geometric fact: the winning UBC detour nearly
    # doubles the map distance to Mountain View
    assert by_key[("ubc", "ualberta", "gdrive-dc")] > 1.8
    # UMich is an even bigger backtrack from UBC to Mountain View
    assert by_key[("ubc", "umich", "gdrive-dc")] > by_key[("ubc", "ualberta", "gdrive-dc")]
    # and for Purdue, UMich is nearly on the way (small stretch)
    assert by_key[("purdue", "umich", "gdrive-dc")] < 1.25
