"""Fig. 4: Upload performance from UBC to Dropbox.

Paper shape: "direct upload outperforms both indirect routes via
UAlberta and UMich" at every size; via UMich is the worst.
"""

import numpy as np

from benchmarks.figure_bench import regenerate_figure, route_means


def test_fig04_ubc_dropbox(benchmark, paper_config, emit):
    def check(result):
        direct = np.array(route_means(result, "direct"))
        via_ua = np.array(route_means(result, "via ualberta"))
        via_um = np.array(route_means(result, "via umich"))

        assert (direct < via_ua).all(), "direct must beat the UAlberta detour"
        assert (via_ua < via_um).all(), "UMich detour is slowest"

    regenerate_figure("fig4", benchmark, paper_config, emit, check)
