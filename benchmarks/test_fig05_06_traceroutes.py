"""Figs. 5 and 6: traceroutes from UBC and UAlberta to Google Drive.

Asserts the structural facts the paper reads off these traces: both
paths cross vncv1rtr2.canarie.ca; only the UBC trace shows a Pacific
Wave hop; the UAlberta trace contains silent hops (* * *); both end at
the same Google frontend.
"""

from repro.analysis import run_traceroute_figures

from benchmarks.conftest import once


def test_fig05_06_traceroutes(benchmark, emit):
    figs = once(benchmark, lambda: run_traceroute_figures(seed=0))

    text = (
        "Fig. 5: UBC to Google Drive Server Traceroute\n"
        + figs["fig5"]
        + "\n\nFig. 6: UAlberta to Google Drive Server Traceroute\n"
        + figs["fig6"]
    )
    emit("fig05_06", text)

    assert "vncv1rtr2.canarie.ca" in figs["fig5"]
    assert "vncv1rtr2.canarie.ca" in figs["fig6"]
    assert "pacificwave" in figs["fig5"]
    assert "pacificwave" not in figs["fig6"]
    assert "* * *" in figs["fig6"]
    assert "* * *" not in figs["fig5"]
    assert figs["fig5"].splitlines()[-1].endswith("sea15s01-in-f138.1e100.net (216.58.216.138)")
    assert figs["fig6"].splitlines()[-1].endswith("sea15s01-in-f138.1e100.net (216.58.216.138)")
    # Fig. 6 shows the UAlberta firewall as its first hop
    assert "ww-fw.cs.ualberta.ca" in figs["fig6"]
