"""Fig. 7: Upload performance from Purdue to Google Drive.

Paper shape: *both* detours crush the direct route (-70% or more at most
sizes), and the two detours are comparable to each other — "there is no
performance-based reason to prefer a detour through UAlberta to that
through UMich".
"""

import numpy as np

from benchmarks.figure_bench import regenerate_figure, route_means


def test_fig07_purdue_gdrive(benchmark, paper_config, emit):
    def check(result):
        direct = np.array(route_means(result, "direct"))
        via_ua = np.array(route_means(result, "via ualberta"))
        via_um = np.array(route_means(result, "via umich"))

        assert (via_ua < 0.55 * direct).all(), "UAlberta detour wins by >45% everywhere"
        assert (via_um < 0.55 * direct).all(), "UMich detour wins by >45% everywhere"
        # the two detours are comparable — within 2x of each other at every
        # size (the paper's own Table III hits ratio 1.84 at 40 MB)
        ratio = via_ua / via_um
        assert (ratio > 0.5).all() and (ratio < 2.0).all()

    regenerate_figure("fig7", benchmark, paper_config, emit, check)
