"""Fig. 8: Upload performance from Purdue to Dropbox.

Paper shape: "detoured transfers via intermediate nodes are generally no
better than direct uploads" — the direct route wins on total time across
the sweep, with large error bars that overlap the detours (the Table IV
discussion).
"""

import numpy as np

from benchmarks.figure_bench import regenerate_figure, route_means


def test_fig08_purdue_dropbox(benchmark, paper_config, emit):
    def check(result):
        direct = np.array(route_means(result, "direct"))
        via_ua = np.array(route_means(result, "via ualberta"))
        via_um = np.array(route_means(result, "via umich"))

        # direct wins overall (per-size flips are within the paper's own
        # footnote noise)
        assert direct.sum() < via_ua.sum()
        assert direct.sum() < via_um.sum()
        # but not dramatically: no per-size blowouts beyond ~2.5x
        assert (via_ua < 2.5 * direct).all()
        assert (via_um < 2.5 * direct).all()

    regenerate_figure("fig8", benchmark, paper_config, emit, check)
