"""Fig. 9: Upload performance from Purdue to OneDrive.

Paper shape: "detoured transfers via intermediate nodes can bring more
benefits for larger files" — at 100 MB both detours roughly halve the
direct time (Table IV: 388 s direct vs ~200 s detoured), while at small
sizes the routes are much closer.
"""

import numpy as np

from benchmarks.figure_bench import regenerate_figure, route_means


def test_fig09_purdue_onedrive(benchmark, paper_config, emit):
    def check(result):
        sizes = np.array(result.sizes_mb)
        direct = np.array(route_means(result, "direct"))
        via_ua = np.array(route_means(result, "via ualberta"))
        via_um = np.array(route_means(result, "via umich"))

        big = sizes >= 60
        assert (via_ua[big] < 0.75 * direct[big]).all(), "detours win big at large sizes"
        assert (via_um[big] < 0.75 * direct[big]).all()
        # relative benefit grows with size
        gain = via_ua / direct
        assert gain[sizes == sizes.max()][0] < gain[sizes == sizes.min()][0] + 0.15

    regenerate_figure("fig9", benchmark, paper_config, emit, check)
