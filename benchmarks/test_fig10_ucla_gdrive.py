"""Fig. 10: Upload performance from UCLA to Google Drive.

Paper shape (Sec. III-C): "file transfers from UCLA to all other
locations including the Google Drive server, UAlberta, etc., take a long
time" — the ~1.35 Mbit/s last mile dominates, so no detour can win or
lose by much, and everything is an order of magnitude slower than from
UBC.
"""

import numpy as np

from benchmarks.figure_bench import regenerate_figure, route_means


def test_fig10_ucla_gdrive(benchmark, paper_config, emit):
    def check(result):
        direct = np.array(route_means(result, "direct"))
        via_ua = np.array(route_means(result, "via ualberta"))
        via_um = np.array(route_means(result, "via umich"))
        hop = np.array(route_means(result, "UCLA to UAlberta (rsync)"))

        # everything is slow: >350 s at 100 MB (paper shows ~600+)
        assert direct[-1] > 350
        # the rsync hop itself is about as slow as the direct upload
        assert hop[-1] > 0.80 * direct[-1]
        # no route separates from the pack: all within ~35% at every size
        stacked = np.vstack([direct, via_ua, via_um])
        assert (stacked.max(axis=0) / stacked.min(axis=0) < 1.35).all()
        # and no detour improves on direct by a meaningful margin overall
        assert min(via_ua.sum(), via_um.sum()) > 0.88 * direct.sum()

    regenerate_figure("fig10", benchmark, paper_config, emit, check)
