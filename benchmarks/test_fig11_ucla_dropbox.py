"""Fig. 11: Upload performance from UCLA to Dropbox.

Paper shape: same story as Fig. 10 — the UCLA last mile is the
bottleneck, detours only add overhead.
"""

import numpy as np

from benchmarks.figure_bench import regenerate_figure, route_means


def test_fig11_ucla_dropbox(benchmark, paper_config, emit):
    def check(result):
        direct = np.array(route_means(result, "direct"))
        via_ua = np.array(route_means(result, "via ualberta"))
        via_um = np.array(route_means(result, "via umich"))

        assert direct[-1] > 350
        # direct wins on total time; detours are pure overhead
        assert direct.sum() <= min(via_ua.sum(), via_um.sum())
        # both detours stay within ~35% of direct (overhead, no cliff)
        assert (via_ua < 1.35 * direct).all()
        assert (via_um < 1.35 * direct).all()

    regenerate_figure("fig11", benchmark, paper_config, emit, check)
