"""Sec. I headline: 87 s direct vs 17 + 19 = 36 s via the UAlberta detour.

"uploading a 100 MB binary file from a University of British Columbia
(UBC) PlanetLab node to Google Drive ... takes 87 seconds ... from the
UAlberta non-PlanetLab node to Google Drive takes 17s ... from the UBC
PlanetLab node to the UAlberta non-PlanetLab node takes 19s ... the
100 MB file can be transferred in 36s (= 17+19) instead of 87s."
"""

from repro.analysis import AnalysisConfig, measure_cell, measure_rsync_hop
from repro.analysis.paperdata import PAPER_HEADLINE
from repro.core import DetourRoute, DirectRoute

from benchmarks.conftest import once


def test_intro_headline(benchmark, paper_config, emit):
    def compute():
        direct = measure_cell(paper_config, "ubc", "gdrive", DirectRoute(), 100)
        hop1 = measure_rsync_hop(paper_config, "ubc", "ualberta", 100)
        hop2 = measure_cell(paper_config, "ualberta", "gdrive", DirectRoute(), 100)
        detour = measure_cell(paper_config, "ubc", "gdrive", DetourRoute("ualberta"), 100)
        return direct, hop1, hop2, detour

    direct, hop1, hop2, detour = once(benchmark, compute)

    text = "\n".join([
        "Sec. I headline numbers (100 MB, UBC -> Google Drive):",
        f"  direct upload           : {direct.mean_s:6.1f} s   (paper ~{PAPER_HEADLINE['direct']:.0f})",
        f"  UBC -> UAlberta (rsync) : {hop1.mean_s:6.1f} s   (paper ~{PAPER_HEADLINE['ubc_to_ualberta']:.0f})",
        f"  UAlberta -> Drive (API) : {hop2.mean_s:6.1f} s   (paper ~{PAPER_HEADLINE['ualberta_to_gdrive']:.0f})",
        f"  detour via UAlberta     : {detour.mean_s:6.1f} s   (paper ~{PAPER_HEADLINE['via_ualberta_total']:.0f})",
        f"  speedup                 : {direct.mean_s / detour.mean_s:6.2f} x  (paper ~2.4x)",
    ])
    emit("intro_headline", text)

    assert 70 < direct.mean_s < 105
    assert 14 < hop1.mean_s < 25
    assert 13 < hop2.mean_s < 23
    assert 28 < detour.mean_s < 46
    # store-and-forward arithmetic: detour ~ hop1 + hop2
    assert abs(detour.mean_s - (hop1.mean_s + hop2.mean_s)) < 6
    # the headline speedup
    assert direct.mean_s / detour.mean_s > 2.0
