"""Observability overhead: instrumented-vs-bare wall-clock on one world.

Runs the same detour comparison twice — all obs hooks off, then tracing,
metrics, and the timeline profiler all on — asserts the obs-off results
are bit-identical to the instrumented ones (the obs layer's core
contract), bounds the instrumentation overhead, and records both
wall-clocks to ``benchmarks/results/BENCH_obs.json`` so ``repro bench
check`` trends the overhead across generations.

Each configuration is timed as the best of ``REPEATS`` fresh worlds:
min-of-repeats is the standard noise filter for sub-second measurements,
and each world is rebuilt so no state leaks between timings.
"""

import json
import time

from repro.core import DetourPlanner
from repro.testbed import build_case_study
from repro.units import mb

from benchmarks.conftest import RESULTS_DIR, once

REPEATS = 5
SIZE_MB = 20

#: Generous ceiling: write-only accumulators must stay in the noise.
#: (<5% is typical; small absolute slack absorbs sub-100ms jitter.)
MAX_OVERHEAD_FRAC = 0.05
ABS_SLACK_S = 0.05


def run_once(**obs):
    world = build_case_study(seed=3, **obs)
    planner = DetourPlanner(world, runs_per_route=2, discard_runs=1)
    t0 = time.perf_counter()
    comparison = planner.compare("ubc", "gdrive", int(mb(SIZE_MB)))
    return time.perf_counter() - t0, comparison, next(world.sim._seq)


def best_of(repeats, **obs):
    runs = [run_once(**obs) for _ in range(repeats)]
    wall_s = min(r[0] for r in runs)
    # every repeat is the same simulation: identical rendered result
    renders = {r[1].render() for r in runs}
    events = {r[2] for r in runs}
    assert len(renders) == 1 and len(events) == 1
    return wall_s, renders.pop(), events.pop()


def test_obs_overhead(benchmark, emit):
    def run_both():
        off = best_of(REPEATS)
        on = best_of(REPEATS, trace=True, metrics=True, profile=True)
        return off, on

    (off_s, off_render, off_events), (on_s, on_render, on_events) = \
        once(benchmark, run_both)

    # the obs layer's core contract: instrumentation is invisible to the
    # model — same numbers, same kernel event count
    assert on_render == off_render
    assert on_events == off_events

    overhead_frac = (on_s - off_s) / off_s
    record = {
        "repeats": REPEATS,
        "size_mb": SIZE_MB,
        "events": off_events,
        "obs_off_s": round(off_s, 4),
        "obs_on_s": round(on_s, 4),
        "overhead_pct": round(overhead_frac * 100, 2),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_obs.json").write_text(
        json.dumps(record, indent=1) + "\n")
    emit("obs_overhead",
         f"obs overhead: {off_events} kernel events  "
         f"off {off_s * 1e3:.1f}ms  on {on_s * 1e3:.1f}ms  "
         f"overhead {overhead_frac * 100:+.1f}%")

    assert on_s <= off_s * (1.0 + MAX_OVERHEAD_FRAC) + ABS_SLACK_S, (
        f"instrumentation overhead {overhead_frac * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD_FRAC * 100:.0f}% (+{ABS_SLACK_S}s slack)")
