"""Sharded fleet at campaign scale: 10^5 uploads, O(sites) merge memory.

Runs a metro-preset broker fleet — 50 sites x 2000 uploads each — through
``repro.shard``: a 2-upload/site warmup generation publishes the merged
directory snapshot, then the full fleet warms from it across 8 shards.
Records to ``benchmarks/results/BENCH_shard.json``:

* wall time and per-upload cost of the full generation, plus peak RSS
  (self + pool workers) — the completes-on-this-box evidence,
* the aggregator's final accumulator-cell count, asserted against the
  ``sites x (modes + 1)`` O(sites) bound (never O(uploads)),
* the shared-directory tier counters (memory/disk hits) and the fleet's
  directory rollup: hit rate, warm-tier hit rate, probes/upload.

``REPRO_BENCH_FAST=1`` shrinks the fleet to 5 sites x 40 uploads; the
10^5-upload claim only applies to the full run.
"""

import json
import resource
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.shard import ShardPlan, run_sharded
from repro.topo import generate, preset_spec
from repro.workloads import sample_sites

from benchmarks.conftest import FAST, RESULTS_DIR, once

pytestmark = pytest.mark.shard

SEED = 7
N_SITES = 5 if FAST else 50
UPLOADS_PER_SITE = 40 if FAST else 2000
N_SHARDS = 2 if FAST else 8
JOBS = 2
MODES = ("broker",)


def peak_rss_kb() -> int:
    """Peak resident set, this process plus any reaped pool worker (KB)."""
    return (resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            + resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)


def test_shard_scale(benchmark, emit, tmp_path):
    spec = preset_spec("metro", seed=SEED)
    sites = tuple(sample_sites(generate(spec).populations, N_SITES,
                               seed=SEED))
    plan_kw = dict(sites=sites, provider="gdrive", modes=MODES,
                   n_shards=N_SHARDS, mean_interarrival_s=5.0,
                   mean_size_mb=1.0, size_dist="fixed", seed=SEED,
                   cross_traffic=False, topo=spec)
    warmup = ShardPlan(n_uploads_per_site=2, **plan_kw)
    plan = ShardPlan(n_uploads_per_site=UPLOADS_PER_SITE, **plan_kw)
    root = tmp_path / "fleet"

    def run_generations():
        t0 = time.perf_counter()
        gen0 = run_sharded(warmup, root, jobs=JOBS)
        warmup_s = time.perf_counter() - t0

        registry = MetricsRegistry()
        t0 = time.perf_counter()
        gen1 = run_sharded(plan, root, jobs=JOBS,
                           warm_from=warmup.merged_snapshot_name,
                           metrics=registry)
        fleet_s = time.perf_counter() - t0
        return gen0, warmup_s, gen1, fleet_s, registry

    gen0, warmup_s, gen1, fleet_s, registry = once(benchmark, run_generations)

    # the merge's whole state is the aggregator's per-(mode, site) cells:
    # O(sites), never O(uploads)
    cell_bound = len(sites) * (len(MODES) + 1)
    assert gen1.merge.aggregator_cells <= cell_bound, \
        (gen1.merge.aggregator_cells, cell_bound)
    assert gen1.merge.records_folded == plan.n_uploads * len(MODES)
    assert gen1.merge.score.n_uploads == plan.n_uploads

    broker = gen1.merge.rollup["broker"]
    # the warm snapshot must actually serve lookups before its TTL runs out
    assert broker["warm_hits"] > 0, broker
    assert gen1.warm_entries == gen0.merge.merged_entries > 0

    tier = {}
    for s in registry.collect():
        if s.name == "repro_shard_directory_tier_total":
            tier["/".join(v for _k, v in s.labels)] = s.value

    rss_kb = peak_rss_kb()
    record = {
        "preset": "metro",
        "seed": SEED,
        "spec_hash": spec.content_hash(),
        "sites": len(sites),
        "uploads_per_site": UPLOADS_PER_SITE,
        "uploads": plan.n_uploads,
        "modes": list(MODES),
        "n_shards": N_SHARDS,
        "jobs": JOBS,
        "warmup_s": round(warmup_s, 2),
        "wall_s": round(fleet_s, 2),
        "ms_per_upload": round(1000.0 * fleet_s / plan.n_uploads, 3),
        "peak_rss_mb": round(rss_kb / 1024.0, 1),
        "aggregator_cells": gen1.merge.aggregator_cells,
        "aggregator_cell_bound": cell_bound,
        "records_folded": gen1.merge.records_folded,
        "merged_entries": gen1.merge.merged_entries,
        "warm_entries": gen1.warm_entries,
        "directory": {
            "hit_rate": round(broker["hit_rate"], 4),
            "warm_tier_hit_rate": round(broker["warm_hit_rate"], 4),
            "warm_hits": broker["warm_hits"],
            "probes_per_upload": round(broker["probes_per_upload"], 4),
            "evictions": broker["evictions"],
        },
        "service_tiers": tier,
        "mean_transfer_s": round(gen1.merge.score.by_mode["broker"][0], 3),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_shard.json").write_text(
        json.dumps(record, indent=1) + "\n")
    emit("shard_scale",
         f"shard scale [metro]: {plan.n_uploads} uploads over {len(sites)} "
         f"sites, {N_SHARDS} shards x {JOBS} jobs\n"
         f"warmup gen {warmup_s:.1f}s   fleet {fleet_s:.1f}s wall "
         f"({record['ms_per_upload']:.2f} ms/upload)   "
         f"peak RSS {record['peak_rss_mb']:.0f} MB\n"
         f"aggregator {gen1.merge.aggregator_cells} cells "
         f"(bound {cell_bound}) for {gen1.merge.records_folded} records\n"
         f"directory: hit rate {broker['hit_rate']:.0%}, warm tier "
         f"{broker['warm_hit_rate']:.1%}, "
         f"{broker['probes_per_upload']:.3f} probes/upload")
