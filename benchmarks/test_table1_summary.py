"""Table I: summary of fastest routes, 3 clients x 3 providers.

Checked against the paper's main-text rankings; cells the paper itself
footnotes with per-size exceptions are allowed to differ in ordering but
the qualitative story must hold (detours win for Google Drive from
UBC/Purdue; direct wins for UBC Dropbox/OneDrive; nothing helps UCLA
by a large margin).
"""

from repro.analysis import compare_rankings, run_table1
from repro.analysis.tables import render_table1

from benchmarks.conftest import once


def test_table1_summary(benchmark, paper_config, emit):
    cells = once(benchmark, lambda: run_table1(paper_config))

    rankings = compare_rankings(cells)
    lines = [render_table1(cells), "", "vs paper:"]
    for client, provider, measured, paper, match, footnoted in rankings:
        status = "MATCH" if match else ("footnoted cell" if footnoted else "MISMATCH")
        lines.append(f"  {client:>7}->{provider:<9} measured [{measured}] "
                     f"paper [{paper}] {status}")
    emit("table1", "\n".join(lines))

    # hard facts from the paper's main text
    assert cells[("ubc", "gdrive")].ranking[0] == "via ualberta"
    assert cells[("ubc", "gdrive")].ranking[-1] == "via umich"
    assert cells[("ubc", "dropbox")].ranking[0] == "direct"
    assert cells[("ubc", "onedrive")].ranking[0] == "direct"
    assert cells[("purdue", "gdrive")].ranking[-1] == "direct"
    assert cells[("purdue", "dropbox")].ranking[0] == "direct"

    # every non-footnoted cell matches the paper's fastest route
    for client, provider, _, _, match, footnoted in rankings:
        if not footnoted:
            assert match, f"{client}->{provider} fastest route disagrees with the paper"
