"""Table II: UBC-to-Google Drive average transfer times + relative gains.

Checked against the paper cell by cell: every measured mean must be
within a factor of 2 of the published number, and the signs of the
relative gains must match (UAlberta negative, UMich positive).
"""

from repro.analysis import compare_with_paper, run_table2
from repro.analysis.paperdata import PAPER_TABLE2

from benchmarks.conftest import once


def test_table2_ubc_gdrive(benchmark, paper_config, emit):
    table = once(benchmark, lambda: run_table2(paper_config))

    comparisons = compare_with_paper(table, PAPER_TABLE2, "ubc->gdrive")
    text = table.render(show_std=True) + "\n\npaper vs measured:\n" + "\n".join(
        "  " + c.describe() for c in comparisons
    )
    emit("table2", text)

    for row in table.rows:
        assert row.gain_pct("via ualberta") < -25, f"{row.size_mb} MB: UAlberta gain too small"
        assert row.gain_pct("via umich") > 20, f"{row.size_mb} MB: UMich should lose"
    for c in comparisons:
        assert 0.5 < c.ratio < 2.0, f"off by >2x vs paper: {c.describe()}"
    # the 100 MB row reproduces the headline: >50% gain via UAlberta
    big = max(table.rows, key=lambda r: r.size_mb)
    assert big.gain_pct("via ualberta") < -50
