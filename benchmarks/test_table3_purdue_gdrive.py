"""Table III: Purdue-to-Google Drive average transfer times.

Paper shape: gains of roughly -70% to -84% for *both* detours at every
size.  Absolute direct-route numbers are congestion-dominated, so the
ratio tolerance is wider than Table II's.
"""

from repro.analysis import compare_with_paper, run_table3
from repro.analysis.paperdata import PAPER_TABLE3

from benchmarks.conftest import once


def test_table3_purdue_gdrive(benchmark, paper_config, emit):
    table = once(benchmark, lambda: run_table3(paper_config))

    comparisons = compare_with_paper(table, PAPER_TABLE3, "purdue->gdrive")
    text = table.render(show_std=True) + "\n\npaper vs measured:\n" + "\n".join(
        "  " + c.describe() for c in comparisons
    )
    emit("table3", text)

    for row in table.rows:
        assert row.gain_pct("via ualberta") < -45, f"{row.size_mb} MB: detour gain too small"
        assert row.gain_pct("via umich") < -45
    for c in comparisons:
        assert 0.33 < c.ratio < 3.0, f"off by >3x vs paper: {c.describe()}"
    # at 100 MB the detours land in the paper's ~75% gain regime
    big = max(table.rows, key=lambda r: r.size_mb)
    assert big.gain_pct("via ualberta") < -60
    assert big.gain_pct("via umich") < -60
