"""Table IV: mean ± σ of Purdue uploads (Dropbox / OneDrive, 60 & 100 MB)
and the paper's ±1σ overlap analysis.

Paper shape facts checked:
* Dropbox 100 MB: direct is fastest on the mean, but its ±1σ bar
  overlaps both detours' (so "we may not choose to rely on any detours");
* OneDrive 100 MB: both detours beat direct decisively;
* the congested direct routes carry substantial variance (CV > 5%).
"""

from repro.analysis import run_table4
from repro.analysis.paperdata import PAPER_TABLE4
from repro.analysis.tables import render_table4

from benchmarks.conftest import once


def test_table4_variance(benchmark, paper_config, emit):
    rows = once(benchmark, lambda: run_table4(paper_config, sizes_mb=(100, 60)))

    lines = [render_table4(rows), "", "paper (mean ± σ) for the same cells:"]
    for row in rows:
        key = (int(row.size_mb), row.provider, row.route)
        if key in PAPER_TABLE4:
            pm, ps = PAPER_TABLE4[key]
            lines.append(f"  {key}: paper {pm:.2f}±{ps:.2f}  "
                         f"measured {row.summary.mean:.2f}±{row.summary.std:.2f}")
    emit("table4", "\n".join(lines))

    by_key = {(int(r.size_mb), r.provider, r.route): r for r in rows}

    # Dropbox 100 MB: direct fastest on the mean...
    d = by_key[(100, "dropbox", "direct")].summary
    ua = by_key[(100, "dropbox", "via ualberta")].summary
    um = by_key[(100, "dropbox", "via umich")].summary
    assert d.mean < ua.mean and d.mean < um.mean
    # ...but the error bars overlap (the paper's 213.92 > 181.68 argument)
    assert by_key[(100, "dropbox", "via ualberta")].overlaps_direct
    assert by_key[(100, "dropbox", "via umich")].overlaps_direct

    # OneDrive 100 MB: detours decisively faster
    od = by_key[(100, "onedrive", "direct")].summary
    oua = by_key[(100, "onedrive", "via ualberta")].summary
    oum = by_key[(100, "onedrive", "via umich")].summary
    assert oua.mean < 0.7 * od.mean
    assert oum.mean < 0.7 * od.mean

    # congested direct routes are noisy
    assert od.cv > 0.03
    # ratios to paper within ~2x on all published cells (the paper's own
    # 60 MB Dropbox direct row, 212.66 s, is *slower* than its 100 MB row,
    # 177.89 s — a measurement outlier we cannot and should not match)
    for row in rows:
        key = (int(row.size_mb), row.provider, row.route)
        if key in PAPER_TABLE4:
            pm, _ = PAPER_TABLE4[key]
            assert 0.42 < row.summary.mean / pm < 2.2, key
