"""Table V: geographical summary of fastest routes on the map.

The paper's maps show: from UBC, the Google Drive detour (dashed) vs
direct Dropbox/OneDrive (solid); from Purdue, detours for Google Drive;
from UCLA, direct everywhere.  We regenerate the same facts with
distances attached.
"""

from repro.analysis import run_table1, run_table5
from repro.analysis.tables import render_table5

from benchmarks.conftest import once


def test_table5_geosummary(benchmark, paper_config, emit):
    def compute():
        cells = run_table1(paper_config)
        return cells, run_table5(paper_config, table1=cells)

    cells, entries = once(benchmark, compute)
    emit("table5", render_table5(entries))

    by_key = {(e.client, e.provider): e for e in entries}

    # UBC -> Google Drive: a detour that nearly doubles the map distance
    ubc_gd = by_key[("ubc", "gdrive")]
    assert ubc_gd.fastest == "via ualberta"
    assert ubc_gd.geographic_stretch > 1.8

    # UBC -> Dropbox / OneDrive: direct (stretch exactly 1)
    assert by_key[("ubc", "dropbox")].fastest == "direct"
    assert by_key[("ubc", "onedrive")].fastest == "direct"
    assert by_key[("ubc", "dropbox")].geographic_stretch == 1.0

    # Purdue -> Google Drive: some detour wins
    assert by_key[("purdue", "gdrive")].fastest != "direct"

    # every entry has sane geography
    for e in entries:
        assert e.direct_km > 100
        assert e.fastest_km >= e.direct_km * 0.999
