"""Internet-scale topology pipeline: generate, compile, cache, fleet.

Builds the ``internet`` preset (1011 ASes, 2288 sites — the acceptance
floor is >= 1000 / >= 2000), compiles it cold and warm against an
on-disk route cache, then runs a 500-upload broker fleet on the
generated world twice, and records to
``benchmarks/results/BENCH_topo.json``:

* build-time breakdown (generate / cold compile / warm compile) and the
  route-resolution throughput (routes per second, cold),
* the cold-vs-warm cache speedup (must be >= 5x; in practice it is
  orders of magnitude, since a warm compile never touches Dijkstra),
* peak node/link/site/route counts of the compiled world,
* the fleet's mean transfer time, and a byte-determinism verdict (two
  runs, identical canonical dicts — ``jobs``-independence one layer up
  is pinned by ``tests/test_topo_fleet.py``).

``REPRO_BENCH_FAST=1`` swaps in the ``metro`` preset and a 100-upload
fleet; the scale-floor assertions only apply to the full run.
"""

import json
import shutil
import time

import pytest

from repro.broker import run_fleet
from repro.obs.metrics import MetricsRegistry
from repro.topo import TopoInstrumentation, compile_spec, generate, preset_spec
from repro.workloads import sample_sites

from benchmarks.conftest import FAST, RESULTS_DIR, once

pytestmark = pytest.mark.topo

PRESET = "metro" if FAST else "internet"
SEED = 7
FLEET_SITES = 5 if FAST else 10
UPLOADS_PER_SITE = 20 if FAST else 50
MIN_CACHE_SPEEDUP = 5.0
MIN_ASES, MIN_SITES = 1000, 2000


def test_topo_scale(benchmark, emit, tmp_path):
    spec = preset_spec(PRESET, seed=SEED)
    cache_dir = str(tmp_path / "routecache")

    def build_and_fleet():
        t0 = time.perf_counter()
        graph = generate(spec)
        generate_s = time.perf_counter() - t0

        obs = TopoInstrumentation(metrics=MetricsRegistry())
        t0 = time.perf_counter()
        compiled = compile_spec(spec, cache_dir=cache_dir, routes=True,
                                instrumentation=obs)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        compile_spec(spec, cache_dir=cache_dir, routes=True,
                     instrumentation=obs)
        warm_s = time.perf_counter() - t0

        sites = sample_sites(graph.populations, FLEET_SITES, seed=SEED)
        fleet_kw = dict(
            sites=sites, provider="gdrive",
            n_uploads_per_site=UPLOADS_PER_SITE, mode="broker",
            topo=spec, cache_dir=cache_dir, cross_traffic=False)
        t0 = time.perf_counter()
        fleet = run_fleet(SEED, **fleet_kw)
        fleet_s = time.perf_counter() - t0
        repeat = run_fleet(SEED, **fleet_kw)
        return (graph, compiled, obs, generate_s, cold_s, warm_s,
                sites, fleet, fleet_s, repeat)

    (graph, compiled, obs, generate_s, cold_s, warm_s,
     sites, fleet, fleet_s, repeat) = once(benchmark, build_and_fleet)
    shutil.rmtree(cache_dir, ignore_errors=True)

    stats = graph.stats()
    if not FAST:
        assert stats["ases"] >= MIN_ASES, stats
        assert stats["sites"] >= MIN_SITES, stats

    speedup = cold_s / warm_s
    assert speedup >= MIN_CACHE_SPEEDUP, (cold_s, warm_s)
    # one cold miss, one warm hit (the fleet's two compiles hit too)
    assert obs.cache_misses.value() == 1.0, obs.cache_misses.value()
    assert obs.cache_hits.value() >= 1.0, obs.cache_hits.value()

    n_uploads = FLEET_SITES * UPLOADS_PER_SITE
    deterministic = (json.dumps(fleet.to_dict(), sort_keys=True)
                     == json.dumps(repeat.to_dict(), sort_keys=True))
    assert deterministic

    record = {
        "preset": PRESET,
        "seed": SEED,
        "spec_hash": spec.content_hash(),
        "ases": stats["ases"],
        "sites": stats["sites"],
        "peak_nodes": stats["nodes"],
        "peak_links": stats["links"],
        "hosts": stats["hosts"],
        "routes": compiled.n_routes,
        "generate_s": round(generate_s, 3),
        "compile_cold_s": round(cold_s, 3),
        "compile_warm_s": round(warm_s, 3),
        "cache_speedup": round(speedup, 1),
        "routes_per_sec": round(compiled.n_routes / cold_s, 1),
        "fleet": {
            "uploads": n_uploads,
            "sites": list(sites),
            "mean_transfer_s": round(fleet.mean_transfer_s, 3),
            "wall_s": round(fleet_s, 2),
            "probes_issued": fleet.probes_issued,
            "deterministic": deterministic,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_topo.json").write_text(
        json.dumps(record, indent=1) + "\n")
    emit("topo_scale",
         f"topo scale [{PRESET}]: {stats['ases']} ASes, {stats['sites']} sites, "
         f"{stats['nodes']} nodes, {stats['links']} links\n"
         f"generate {generate_s:.2f}s   compile cold {cold_s:.1f}s "
         f"({record['routes_per_sec']:.0f} routes/s)   warm {warm_s:.2f}s "
         f"({speedup:.0f}x)\n"
         f"fleet: {n_uploads} uploads over {FLEET_SITES} sites in "
         f"{fleet_s:.1f}s wall, mean {fleet.mean_transfer_s:.2f}s, "
         f"deterministic={deterministic}")
