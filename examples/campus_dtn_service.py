#!/usr/bin/env python
"""A campus DTN as a shared service: population workload study.

The paper suggests universities "can provide routing detours ... without
having to convince external parties".  This example sizes that service:
a population of Purdue users uploads to Google Drive over an afternoon,
either all-direct or all through the UAlberta DTN, and we compare the
per-upload completion times (including queueing on shared links).

Run:  python examples/campus_dtn_service.py
"""

from repro.core import DetourRoute, DirectRoute, PlanExecutor, TransferPlan
from repro.measure import summarize
from repro.testbed import build_case_study
from repro.workloads import client_population_schedule


def run_population(route, seed: int):
    world = build_case_study(seed=seed)
    executor = PlanExecutor(world)
    schedule = client_population_schedule(
        client_site="purdue", provider_name="gdrive",
        n_uploads=12, mean_interarrival_s=120.0, mean_size_mb=40.0, seed=5,
    )
    durations = []

    def user(upload):
        plan = TransferPlan(upload.client_site, upload.provider_name,
                            upload.file, route)
        result = yield from executor.execute(plan)
        durations.append((upload.file.name, result.total_s))

    def arrivals():
        now = 0.0
        for upload in schedule.uploads:
            yield upload.start_s - now
            now = upload.start_s
            world.sim.process(user(upload))

    driver = world.sim.process(arrivals())
    # run until every user process finished
    deadline = schedule.duration_s + 1e6
    while len(durations) < len(schedule.uploads):
        if world.sim.peek() is None or world.sim.now > deadline:
            break
        world.sim.step()
    return schedule, durations


def main() -> None:
    print("Population: 12 uploads, ~40 MB each, Poisson arrivals (~2 min apart),")
    print("from Purdue to Google Drive.\n")

    for label, route in [("all direct", DirectRoute()),
                         ("all via UAlberta DTN", DetourRoute("ualberta"))]:
        schedule, durations = run_population(route, seed=21)
        stats = summarize([t for _, t in durations])
        total_gb = schedule.total_bytes / 1e9
        print(f"{label}:")
        print(f"  uploads completed : {len(durations)}/{len(schedule.uploads)} "
              f"({total_gb:.2f} GB total)")
        print(f"  per-upload time   : mean {stats.mean:7.1f}s  σ {stats.std:6.1f}  "
              f"min {stats.minimum:6.1f}  max {stats.maximum:7.1f}")
        worst = max(durations, key=lambda kv: kv[1])
        print(f"  worst upload      : {worst[0]} at {worst[1]:.1f}s\n")

    print("The DTN detour helps every user, even when several uploads share")
    print("the Purdue uplink and the DTN concurrently — the mitigation holds")
    print("under load, not just for the paper's one-at-a-time benchmarks.")


if __name__ == "__main__":
    main()
