#!/usr/bin/env python
"""Build your own scenario with WorldBuilder: a European case study.

Two university clients upload 100 MB to "CloudX", whose POPs sit in
Frankfurt and London behind a commodity ISP whose CloudX peering is
congested (8 Mbit/s):

* ETH Zurich is dual-homed: commodity ISP + the GEANT research network.
  GEANT carries CloudX routes only for its commercial-service subscribers
  (here: the University of Amsterdam DTN), so ETH's *direct* uploads
  crawl through the ISP — but a detour via the Amsterdam DTN rides
  GEANT's fat peering.  The paper's Purdue story, on another continent.
* Imperial (London) only has the commodity ISP.  Its path to the DTN is
  as bad as its path to CloudX, so — like UCLA in the paper — no detour
  can save it.

Run:  python examples/custom_scenario.py
"""

from repro.cloud import make_gdrive_protocol
from repro.core import DetourPlanner
from repro.testbed import WorldBuilder
from repro.units import mb, mbps, ms


def build_europe(seed: int = 0):
    b = WorldBuilder(seed=seed)

    # geography
    b.add_site("eth", 47.3769, 8.5417, "Zurich")
    b.add_site("imperial", 51.4988, -0.1749, "London")
    b.add_site("uva", 52.3676, 4.9041, "Amsterdam")
    b.add_site("cloudx-fra", 50.1109, 8.6821, "Frankfurt")
    b.add_site("cloudx-lon", 51.5074, -0.1278, "London (DC)")

    # economy
    eth = b.autonomous_system("eth-campus")
    imperial = b.autonomous_system("imperial-campus")
    uva = b.autonomous_system("uva-campus")
    isp = b.autonomous_system("commodity-isp")
    geant = b.autonomous_system("geant")
    cloudx = b.autonomous_system("cloudx")
    b.customer(isp, eth).customer(geant, eth)
    b.customer(isp, imperial)
    b.customer(geant, uva)
    b.peer(geant, cloudx)
    b.peer(isp, cloudx)
    b.peer(isp, geant)
    # GEANT's commercial peering service: UvA subscribes, ETH does not
    b.export_filter(geant, eth, lambda dest: dest != cloudx)

    # backbone routers
    b.router("isp-core", isp, site="cloudx-fra")
    b.router("geant-fra", geant, site="cloudx-fra")
    b.router("geant-ams", geant, site="uva")
    b.router("cloudx-fra-edge", cloudx, site="cloudx-fra")
    b.router("cloudx-lon-edge", cloudx, site="cloudx-lon")

    # campuses and the DTN
    b.campus("eth", eth, access_bps=mbps(100))
    b.campus("imperial", imperial, access_bps=mbps(100))
    b.dtn("uva", uva, attach_to="geant-ams", uplink_bps=mbps(1000))

    # wiring (capacity, one-way delay)
    b.link("eth-border", "isp-core", mbps(1000), ms(4))
    b.link("eth-border", "geant-fra", mbps(1000), ms(3))
    b.link("imperial-border", "isp-core", mbps(1000), ms(5))
    b.link("geant-fra", "geant-ams", mbps(2000), ms(4))
    b.link("isp-core", "geant-fra", mbps(6), ms(1))          # reluctant peering
    b.link("isp-core", "cloudx-fra-edge", mbps(8), ms(1))    # the congested peering
    b.link("geant-fra", "cloudx-fra-edge", mbps(80), ms(1))  # the fat R&E peering
    b.link("cloudx-fra-edge", "cloudx-lon-edge", mbps(2000), ms(5))

    # the provider, with POPs in Frankfurt and London
    provider = b.provider("cloudx", cloudx, attach_to="cloudx-fra-edge",
                          protocol=make_gdrive_protocol(), site="cloudx-fra",
                          display_name="CloudX Storage")
    b.add_pop(provider, cloudx, attach_to="cloudx-lon-edge", site="cloudx-lon")

    return b.build()


def main() -> None:
    world = build_europe(seed=3)

    print("Geo-DNS steering:")
    provider = world.provider("cloudx")
    for client in ("eth", "imperial"):
        pop = provider.frontend_for(world.dns, world.host_of(client))
        print(f"  {client:>9} -> {pop}")

    planner = DetourPlanner(world, runs_per_route=2, discard_runs=0)
    for client in ("eth", "imperial"):
        print(f"\n=== {client} -> CloudX, 100 MB ===")
        comparison = planner.compare(client, "cloudx", int(mb(100)))
        print(comparison.render())

    print("\nSame ISP throttle, opposite conclusions: the detour only pays")
    print("for the client with a research-network path to the DTN — the")
    print("paper's UBC-vs-UCLA asymmetry, rebuilt from scratch in ~60 lines.")


if __name__ == "__main__":
    main()
