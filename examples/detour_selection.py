#!/usr/bin/env python
"""Automatic detour selection — the paper's future work, exercised.

Compares three selectors on every (client, provider) pair of the case
study for a 100 MB upload:

* probe   — two small in-band probes per leg, affine cost fit,
* history — EWMA over past transfers (epsilon-greedy),
* oracle  — full offline measurement of every route (ground truth).

Run:  python examples/detour_selection.py
"""

from repro.core import (
    HistorySelector,
    OracleSelector,
    PlanExecutor,
    ProbeSelector,
    SelectionContext,
    TransferPlan,
)
from repro.sim.rng import RngRegistry
from repro.testbed import CLIENTS, PROVIDERS, VIAS, build_case_study, world_factory
from repro.transfer import FileSpec
from repro.units import mb

SIZE = int(mb(100))


def drive(world, gen):
    proc = world.sim.process(gen)
    world.sim.run_until_triggered(proc.done, horizon=1e7)
    if proc.error:
        raise proc.error
    return proc.result


def execute(world, client, provider, route) -> float:
    plan = TransferPlan(client, provider, FileSpec("payload.bin", SIZE), route)
    return PlanExecutor(world).run(plan).total_s


def main() -> None:
    oracle = OracleSelector(world_factory(), runs=3, discard=1, master_seed=99)
    history = HistorySelector(epsilon=0.1, rng=RngRegistry(0).stream("history"))

    print(f"{'client':>8} {'provider':>9} | {'probe':<14} {'history':<14} "
          f"{'oracle':<14} | probe upload (s)")
    print("-" * 84)
    for client in CLIENTS:
        for provider in PROVIDERS:
            vias = tuple(v for v in VIAS if v != client)

            # each selector gets its own fresh world (fair comparison)
            ctx_probe = SelectionContext(
                build_case_study(seed=1), client, provider, SIZE, vias)
            probe_route = drive(ctx_probe.world, ProbeSelector().choose(ctx_probe))
            probe_time = execute(ctx_probe.world, client, provider, probe_route)

            ctx_hist = SelectionContext(
                build_case_study(seed=2), client, provider, SIZE, vias)
            # warm the history with one observation per route
            for route in ctx_hist.routes():
                t = execute(ctx_hist.world, client, provider, route)
                history.update(ctx_hist, route, SIZE, t)
            hist_route = drive(ctx_hist.world, history.choose(ctx_hist))

            ctx_oracle = SelectionContext(
                build_case_study(seed=3), client, provider, SIZE, vias)
            oracle_route = drive(ctx_oracle.world, oracle.choose(ctx_oracle))

            agree = "  <- all agree" if (
                probe_route.describe() == hist_route.describe() == oracle_route.describe()
            ) else ""
            print(f"{client:>8} {provider:>9} | {probe_route.describe():<14} "
                  f"{hist_route.describe():<14} {oracle_route.describe():<14} "
                  f"| {probe_time:8.1f}{agree}")

    print("\nThe oracle column is the paper's Table I/V 'experimental best'.")
    print("Probe-based selection recovers it from two small probes per leg.")


if __name__ == "__main__":
    main()
