#!/usr/bin/env python
"""Dynamic bottleneck monitoring and mid-transfer rerouting (future work).

A 200 MB upload from UBC to Google Drive starts on the best route (the
UAlberta detour).  Sixty seconds in, an elephant herd congests the
CANARIE-Google peering the detour depends on.  The bottleneck monitor
notices on its next probe round and switches the remaining segments to
the direct route.

Run:  python examples/dynamic_rerouting.py
"""

from repro.core import BottleneckMonitor, MonitoredUpload
from repro.testbed import build_case_study
from repro.transfer import FileSpec
from repro.units import mb


def main() -> None:
    world = build_case_study(seed=11, cross_traffic=False)

    def congestion_event():
        yield 60.0
        link = world.topology.link("canarie-vncv--google-peer-vncv")
        print(f"[t={world.sim.now:7.1f}s] !! elephant herd arrives on "
              f"{link.name} (the detour's second hop)")
        for i in range(9):
            world.engine.start_transfer(
                [link.direction_from("canarie-vncv")], mb(100_000),
                label=f"elephant-{i}")

    world.sim.process(congestion_event())

    monitor = BottleneckMonitor(
        world, client_site="ubc", provider_name="gdrive",
        candidate_vias=("ualberta", "umich"), probe_bytes=int(mb(2)),
    )
    upload = MonitoredUpload(monitor, segment_bytes=int(mb(20)),
                             switch_threshold=1.25)

    proc = world.sim.process(upload.run(FileSpec("dataset.tar", int(mb(200)))))
    world.sim.run_until_triggered(proc.done, horizon=1e6)
    result = proc.result

    print(f"\nUploaded {mb(200) / 1e6:.0f} MB in {result.total_s:.1f} s "
          f"with {result.switch_count} route switch(es)\n")
    print(f"{'seg':>4} {'route':<16} {'MB':>5} {'time (s)':>9}  switched?")
    for seg in result.segments:
        print(f"{seg.index:>4} {seg.route_descr:<16} {seg.size_bytes / 1e6:>5.0f} "
              f"{seg.duration_s:>9.2f}  {'<-- switch' if seg.switched else ''}")
    print(f"\nRoutes used, in order: {' -> '.join(result.routes_used)}")

    # What would have happened without monitoring? Stay on the detour:
    print("\n(For contrast: staying on the congested detour would have run the")
    print(" remaining segments at the elephant-squeezed fair share of the")
    print(" 52 Mbit/s peering shared 10 ways: ~5 Mbit/s.)")


if __name__ == "__main__":
    main()
