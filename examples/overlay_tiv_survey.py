#!/usr/bin/env python
"""Overlay probing and a bandwidth triangle-inequality-violation survey.

Builds a RON-style probe mesh over the paper's five university hosts,
runs two probe rounds, catalogs every latency and bandwidth TIV, and
shows the overlay's single-hop indirection picking paths.

Run:  python examples/overlay_tiv_survey.py
"""

from repro.overlay import ProbeMesh, ResilientOverlay, catalog_tivs
from repro.testbed import build_case_study
from repro.transfer import FileSpec
from repro.units import mb

MEMBERS = ["ubc-pl", "ualberta-dtn", "umich-pl", "purdue-pl", "ucla-pl"]


def drive(world, gen):
    proc = world.sim.process(gen)
    world.sim.run_until_triggered(proc.done, horizon=1e7)
    if proc.error:
        raise proc.error
    return proc.result


def main() -> None:
    world = build_case_study(seed=13, cross_traffic=False)
    mesh = ProbeMesh(world, MEMBERS, probe_bytes=int(mb(2)))

    print(f"Probing {len(mesh.pairs())} ordered pairs, two rounds...")
    drive(world, mesh.probe_round())
    drive(world, mesh.probe_round())
    print(f"Coverage: {mesh.coverage():.0%}, simulated time {world.sim.now:.0f}s\n")

    print("Pairwise bandwidth estimates (Mbit/s):")
    header = "".join(f"{m.split('-')[0]:>10}" for m in MEMBERS)
    corner = "from / to"
    print(f"{corner:>12} {header}")
    for src in MEMBERS:
        cells = []
        for dst in MEMBERS:
            if src == dst:
                cells.append(f"{'-':>10}")
            else:
                bw = mesh.estimate(src, dst).bandwidth_bps
                cells.append(f"{bw / 1e6:>10.1f}")
        print(f"{src:>12} {''.join(cells)}")

    print("\nTriangle-inequality violations (>= 10% better via a relay):")
    records = catalog_tivs(mesh, margin=1.10)
    bandwidth = [r for r in records if r.kind == "bandwidth"]
    for rec in bandwidth[:8]:
        print("  " + rec.describe())
    if not bandwidth:
        print("  (none at this margin)")

    print("\nRON-style path selection for a 50 MB transfer:")
    ron = ResilientOverlay(mesh)
    for src, dst in [("ubc-pl", "ualberta-dtn"), ("ubc-pl", "umich-pl"),
                     ("purdue-pl", "ualberta-dtn")]:
        path = ron.select_path(src, dst, int(mb(50)))
        print(f"  {path.describe()}")

    path, elapsed = drive(world, ron.send("ubc-pl", "umich-pl",
                                          FileSpec("ron.bin", int(mb(50)))))
    print(f"\nExecuted {path.describe()} -> actually took {elapsed:.1f}s")


if __name__ == "__main__":
    main()
