#!/usr/bin/env python
"""Quickstart: plan and execute a cloud-storage upload with routing detours.

Reproduces the paper's headline example (Sec. I): uploading 100 MB from
the UBC PlanetLab node to Google Drive takes ~87 s directly, but ~36 s
through a detour via the University of Alberta — despite the detour
doubling the distance on the map.

Run:  python examples/quickstart.py
"""

from repro.core import DetourPlanner
from repro.geo import haversine_km, site
from repro.testbed import build_case_study
from repro.units import mb


def main() -> None:
    # A calibrated simulation of the paper's testbed: PlanetLab vantage
    # points, research networks, commodity transit, and three providers.
    world = build_case_study(seed=42)

    planner = DetourPlanner(world, runs_per_route=3, discard_runs=1)

    print("Planning a 100 MB upload from UBC to Google Drive...\n")
    planned = planner.upload("ubc", "gdrive", size_bytes=int(mb(100)),
                             file_name="holiday-photos.tar")

    print(planned.comparison.render())
    print()
    best = planned.best
    print(f"Chosen route : {best.route.describe()}")
    print(f"Final upload : {planned.final.total_s:.2f} s")
    for leg in planned.final.legs:
        print(f"  {leg.kind:>6} {leg.src} -> {leg.dst}: "
              f"{leg.duration_s:.2f} s ({leg.throughput_bps / 1e6:.1f} Mbit/s)")

    # The counterintuitive part (paper Fig. 3): the winning route is a
    # large *geographic* detour.
    ubc, ual, mv = site("ubc").location, site("ualberta").location, site("gdrive-dc").location
    direct_km = haversine_km(ubc, mv)
    detour_km = haversine_km(ubc, ual) + haversine_km(ual, mv)
    print(f"\nGeography: direct {direct_km:.0f} km, detour {detour_km:.0f} km "
          f"({detour_km / direct_km:.1f}x the distance) — and still faster.")

    # The file really landed:
    obj = world.provider("gdrive").store.get("holiday-photos.tar")
    print(f"Stored: {obj.path} ({obj.size_bytes / 1e6:.0f} MB, revision {obj.revision})")


if __name__ == "__main__":
    main()
