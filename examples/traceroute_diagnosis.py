#!/usr/bin/env python
"""The paper's diagnostic workflow (Sec. III-A, Figs. 5/6 and Fig. 3).

Two sources upload to the same Google Drive server.  One is slow.  The
workflow: measure both, traceroute both, geolocate every hop, and find
where the paths diverge — revealing that PlanetLab-sourced traffic exits
CANARIE through a rate-limited Pacific Wave port while UAlberta traffic
uses the direct Google peering.

Run:  python examples/traceroute_diagnosis.py
"""

from repro.core import DirectRoute, PlanExecutor, TransferPlan
from repro.net import format_traceroute, traceroute
from repro.sim.rng import RngRegistry
from repro.testbed import build_case_study, build_geo_registry
from repro.transfer import FileSpec
from repro.units import bps_to_mbps, mb


def measure(world, client_site: str) -> float:
    executor = PlanExecutor(world)
    plan = TransferPlan(client_site, "gdrive", FileSpec("probe.bin", int(mb(100))),
                        DirectRoute())
    return executor.run(plan).total_s


def geolocated_trace(world, geo, rng, src: str) -> str:
    hops = traceroute(world.router, src, "gdrive-frontend",
                      rng=rng.stream(f"traceroute.{src}"))
    lines = []
    for hop in hops:
        if not hop.responded:
            lines.append(f"{hop.index:>2}  * * *")
            continue
        place = geo.lookup(hop.address)
        city = place[0].city if place else "unknown location"
        lines.append(f"{hop.index:>2}  {hop.hostname} ({hop.address})  [{city}]")
    return "\n".join(lines)


def main() -> None:
    world = build_case_study(seed=7)
    geo = build_geo_registry()
    rng = RngRegistry(7)

    print("Step 1 — measure 100 MB uploads to Google Drive:")
    t_ubc = measure(world, "ubc")
    t_ual = measure(world, "ualberta")
    print(f"  from UBC PlanetLab node : {t_ubc:7.1f} s")
    print(f"  from UAlberta cluster   : {t_ual:7.1f} s")
    print(f"  -> UBC is {t_ubc / t_ual:.1f}x slower to the *same* server.\n")

    print("Step 2 — traceroute from UBC (paper Fig. 5):")
    print(geolocated_trace(world, geo, rng, "ubc-pl"))
    print("\nStep 3 — traceroute from UAlberta (paper Fig. 6):")
    print(geolocated_trace(world, geo, rng, "ualberta-dtn"))

    print("\nStep 4 — diagnosis:")
    ubc_path = world.router.resolve("ubc-pl", "gdrive-frontend")
    ual_path = world.router.resolve("ualberta-dtn", "gdrive-frontend")
    shared = set(ubc_path.nodes) & set(ual_path.nodes)
    print(f"  shared middle hop: {', '.join(n for n in ubc_path.nodes if n in shared and 'canarie' in n)}")
    only_ubc = [n for n in ubc_path.nodes if n not in ual_path.nodes and "pl" not in n
                and not n.startswith("ubc")]
    print(f"  hops only on the slow path: {', '.join(only_ubc)}")
    print(f"  bottleneck on the slow path: {bps_to_mbps(ubc_path.bottleneck_bps):.1f} Mbit/s "
          f"(the policed Pacific Wave egress)")
    print(f"  bottleneck on the fast path: {bps_to_mbps(ual_path.bottleneck_bps):.1f} Mbit/s")
    print("\nConclusion: same destination, same CANARIE router, different egress —")
    print("a source-prefix routing policy, not distance, explains the 5x gap.")


if __name__ == "__main__":
    main()
