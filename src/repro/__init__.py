"""repro — reproduction of "Mitigating Routing Inefficiencies to
Cloud-Storage Providers: A Case Study" (Sinha, Niu, Wang, Lu; IPPS 2016).

The package implements the paper's measurement apparatus and its
mitigation — *routing detours* through data-transfer nodes (DTNs) — on top
of a calibrated flow-level WAN simulator, simulated cloud-storage REST
APIs, and an rsync transfer model.  See DESIGN.md for the full inventory
and EXPERIMENTS.md for paper-vs-measured results.

Quickstart
----------
>>> from repro.testbed import build_case_study
>>> from repro.core import DetourPlanner
>>> world = build_case_study(seed=1)
>>> planner = DetourPlanner(world)
>>> report = planner.upload("ubc", "gdrive", size_bytes=100_000_000)
>>> report.best.route.describe()          # doctest: +SKIP
'detour via ualberta'
"""

from repro._version import __version__

__all__ = [
    "BrokerConfig",
    "CampaignRunner",
    "CampaignSpec",
    "DetourBroker",
    "DetourPlanner",
    "DetourRoute",
    "DirectRoute",
    "FileSpec",
    "FleetRunner",
    "PlanExecutor",
    "ShardPlan",
    "SharedDirectoryService",
    "TransferPlan",
    "World",
    "__version__",
    "build_case_study",
    "merge_sharded",
    "run_fleet",
    "run_sharded",
    "score_fleet",
]


def __getattr__(name):
    """Lazy top-level convenience exports (keeps `import repro` light)."""
    if name in ("DetourPlanner", "DetourRoute", "DirectRoute", "PlanExecutor",
                "TransferPlan", "World"):
        import repro.core as core

        return getattr(core, name)
    if name in ("CampaignRunner", "CampaignSpec"):
        import repro.campaign as campaign

        return getattr(campaign, name)
    if name in ("BrokerConfig", "DetourBroker", "FleetRunner", "run_fleet",
                "score_fleet"):
        import repro.broker as broker

        return getattr(broker, name)
    if name in ("ShardPlan", "SharedDirectoryService", "merge_sharded",
                "run_sharded"):
        import repro.shard as shard

        return getattr(shard, name)
    if name == "FileSpec":
        from repro.transfer import FileSpec

        return FileSpec
    if name == "build_case_study":
        from repro.testbed import build_case_study

        return build_case_study
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
