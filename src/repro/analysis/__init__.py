"""Paper-artifact regeneration: every table and figure of the evaluation.

* :mod:`repro.analysis.common` — experiment cell runner shared by all,
* :mod:`repro.analysis.figures` — Figs. 2, 4, 7-11 (upload-time bar
  charts) and Figs. 5/6 (traceroutes),
* :mod:`repro.analysis.tables` — Tables I-V,
* :mod:`repro.analysis.paperdata` — the paper's published numbers,
* :mod:`repro.analysis.report` — paper-vs-measured comparison report,
* :mod:`repro.analysis.ascii_plot` — terminal bar charts with error bars.
"""

from repro.analysis.ascii_plot import bar_chart, span_timeline
from repro.analysis.common import (
    AnalysisConfig,
    measure_cell,
    measure_rsync_hop,
    report_campaign_spec,
)
from repro.analysis.export import figure_to_csv, figure_to_json, table_to_csv, table_to_json
from repro.analysis.full_report import generate_full_report
from repro.analysis.sensitivity import (
    CONCLUSIONS,
    SensitivityResult,
    render_sensitivity,
    run_sensitivity,
)
from repro.analysis.timeline import (
    FlowSpan,
    concurrency_profile,
    extract_flow_spans,
    render_timeline,
)
from repro.analysis.figures import (
    FIGURES,
    FigureResult,
    FigureSpec,
    run_figure,
    run_traceroute_figures,
)
from repro.analysis.paperdata import PAPER_TABLE2, PAPER_TABLE3, PAPER_TABLE4
from repro.analysis.report import compare_rankings, compare_with_paper, render_experiment_report
from repro.analysis.tables import (
    render_table1,
    render_table4,
    render_table5,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)

__all__ = [
    "AnalysisConfig",
    "CONCLUSIONS",
    "FIGURES",
    "SensitivityResult",
    "render_sensitivity",
    "run_sensitivity",
    "FigureResult",
    "FigureSpec",
    "FlowSpan",
    "concurrency_profile",
    "extract_flow_spans",
    "figure_to_csv",
    "figure_to_json",
    "generate_full_report",
    "render_timeline",
    "table_to_csv",
    "table_to_json",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "bar_chart",
    "compare_rankings",
    "compare_with_paper",
    "measure_cell",
    "measure_rsync_hop",
    "render_experiment_report",
    "report_campaign_spec",
    "render_table1",
    "render_table4",
    "render_table5",
    "run_figure",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_traceroute_figures",
    "span_timeline",
]
