"""Terminal bar charts with error bars.

The paper's Figs. 2, 4, 7-11 are grouped bar charts of mean upload time
vs file size with ±1σ error bars.  :func:`bar_chart` renders the same
content as text: one group per file size, one bar per route, ``#`` bars
scaled to the axis, and the σ interval marked after the value.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import MeasurementError
from repro.measure.stats import Summary
from repro.obs.spans import SpanRecord, span_depths

__all__ = ["bar_chart", "span_timeline"]


def bar_chart(
    title: str,
    groups: Sequence[str],
    series: Dict[str, Sequence[Summary]],
    width: int = 56,
    unit: str = "s",
) -> str:
    """Render grouped horizontal bars.

    Parameters
    ----------
    groups:
        Group labels (e.g. file sizes: "10 MB", ...).
    series:
        ``{series label: [Summary per group]}``; all series must have one
        entry per group.
    width:
        Character width of the longest bar.
    """
    if not groups or not series:
        raise MeasurementError("bar_chart needs groups and series")
    for label, values in series.items():
        if len(values) != len(groups):
            raise MeasurementError(
                f"series {label!r} has {len(values)} values for {len(groups)} groups"
            )
    peak = max(s.mean + s.std for values in series.values() for s in values)
    if peak <= 0:
        raise MeasurementError("nothing to plot (all values are zero)")
    label_w = max(len(label) for label in series)
    scale = width / peak

    lines = [title, "=" * len(title)]
    for gi, group in enumerate(groups):
        lines.append(f"{group}:")
        for label in series:
            s = series[label][gi]
            bar_len = max(1, round(s.mean * scale))
            bar = "#" * bar_len
            err = f" ±{s.std:.2f}" if s.std > 0 else ""
            lines.append(f"  {label.ljust(label_w)} |{bar} {s.mean:.2f}{unit}{err}")
        lines.append("")
    lines.append(f"(bar width: {width} chars = {peak:.1f}{unit})")
    return "\n".join(lines)


def span_timeline(
    records: Sequence[SpanRecord],
    width: int = 56,
    max_spans: int = 80,
) -> str:
    """Gantt-style rendering of span records (see ``repro.obs.spans``).

    Each line is one span: the label indented by nesting depth, a ``=``
    bar positioned on a shared time axis, and the duration.  Reads like a
    flame graph rotated 90°: children sit under their parent, shifted
    right by where their interval starts.
    """
    records = list(records)
    if not records:
        return "span timeline: (no spans recorded)"
    t0 = min(r.start for r in records)
    t1 = max(r.end for r in records)
    window = max(t1 - t0, 1e-12)
    depths = span_depths(records)
    shown = records[:max_spans]
    labels = [
        "  " * depths[r.span_id] + f"{r.component}:{r.name}" for r in shown
    ]
    label_w = max(len(lbl) for lbl in labels)
    scale = width / window

    lines = [
        f"span timeline: {t0:.2f}s .. {t1:.2f}s "
        f"({window:.2f}s, {len(records)} spans)"
    ]
    for r, label in zip(shown, labels):
        lead = round((r.start - t0) * scale)
        bar = max(1, round((r.end - r.start) * scale))
        if lead + bar > width:
            bar = max(1, width - lead)
        err = r.field("error")
        suffix = f"  {r.duration:.2f}s" + (f" !{err}" if err else "")
        lines.append(f"  {label.ljust(label_w)} |{' ' * lead}{'=' * bar}"
                     f"{' ' * (width - lead - bar)}|{suffix}")
    if len(records) > max_spans:
        lines.append(f"  ... ({len(records) - max_spans} more spans not shown)")
    return "\n".join(lines)
