"""Shared experiment-cell runner for the analysis layer.

One *cell* is (client, provider, route, size): the runner builds a fresh
world seeded from the cell's label, executes the paper's 7-run protocol,
and returns the kept-run summary.  All tables and figures are assembled
from cells, so their numbers agree wherever they overlap (as in the
paper, where Fig. 2 and Table II show the same data).

Cells are executed through :func:`repro.campaign.worker.run_cell`, the
same entry point the campaign engine's worker pool uses, so a number in
a table, a campaign export, or a direct harness run is always the same
world from the same derived seed.  Give the config a ``store`` and every
cell is answered from / persisted to the on-disk campaign result store —
which is how ``repro report --cache-dir`` skips recomputation across
invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import CellRecord, ResultStore
from repro.campaign.worker import run_cell
from repro.core.routes import Route
from repro.core.world import World
from repro.measure.harness import ExperimentProtocol, ExperimentRunner, Measurement
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import KernelProfiler
from repro.testbed.build import world_factory
from repro.testbed.params import CaseStudyParams
from repro.transfer.files import FileSpec, PAPER_SIZES_MB
from repro.transfer.rsync import RsyncSession
from repro.units import mb

__all__ = ["AnalysisConfig", "measure_cell", "measure_rsync_hop",
           "report_campaign_spec"]


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs for an analysis run.

    The defaults reproduce the paper's protocol over its full size sweep;
    tests shrink ``sizes_mb`` and the protocol to stay fast.
    """

    master_seed: int = 0
    protocol: ExperimentProtocol = field(default_factory=ExperimentProtocol)
    sizes_mb: Tuple[float, ...] = tuple(PAPER_SIZES_MB)
    params: Optional[CaseStudyParams] = None
    cross_traffic: bool = True
    #: shared observability sinks across every world the runner builds
    #: (compared by identity, so distinct sinks never alias cache entries)
    metrics: Optional[MetricsRegistry] = None
    profiler: Optional[KernelProfiler] = None
    #: optional campaign result store: cells found there are not re-run,
    #: cells computed here are persisted there (``repro report --cache-dir``)
    store: Optional[ResultStore] = None

    def runner(self) -> ExperimentRunner:
        return ExperimentRunner(
            world_factory(params=self.params, cross_traffic=self.cross_traffic,
                          metrics=self.metrics if self.metrics is not None else False,
                          profile=self.profiler if self.profiler is not None else False),
            self.protocol,
            master_seed=self.master_seed,
        )


#: Session-level memo: cells are deterministic in (cfg, cell), and the
#: same cell backs several artifacts (Fig. 2 and Table II show the same
#: data in the paper), so recomputation is pure waste.
_CELL_CACHE: dict = {}


def _campaign_cell(cfg: AnalysisConfig, client: str, provider: str,
                   route: Route, size_mb: float) -> CampaignCell:
    """The campaign-engine view of one analysis cell (same key, same seed)."""
    return CampaignCell(
        client=client,
        provider=provider,
        route=route.describe(),
        size_mb=float(size_mb),
        seed=cfg.master_seed,
        protocol=cfg.protocol,
        cross_traffic=cfg.cross_traffic,
        params=cfg.params,
    )


def measure_cell(
    cfg: AnalysisConfig,
    client: str,
    provider: str,
    route: Route,
    size_mb: float,
) -> Measurement:
    """Run one (client, provider, route, size) cell per the paper protocol.

    Results are memoized per (cfg, cell) in-process, and — when the
    config carries a ``store`` — persisted as campaign records on disk,
    so repeated invocations (or a prior ``repro campaign run`` over the
    same matrix) never recompute a cell.  A store hit skips the world
    entirely, so it contributes nothing to ``cfg.metrics``/``profiler``.
    """
    key = (cfg, client, provider, route, size_mb)
    cached = _CELL_CACHE.get(key)
    if cached is not None:
        return cached
    cell = _campaign_cell(cfg, client, provider, route, size_mb)
    if cfg.store is not None:
        rec = cfg.store.get(cell)
        if rec is not None and rec.ok:
            _CELL_CACHE[key] = rec.measurement
            return rec.measurement
    measurement = run_cell(cell, metrics=cfg.metrics, profiler=cfg.profiler)
    if cfg.store is not None:
        cfg.store.put(CellRecord(cell=cell, status="ok", measurement=measurement))
    _CELL_CACHE[key] = measurement
    return measurement


def report_campaign_spec(cfg: AnalysisConfig) -> CampaignSpec:
    """The campaign matrix behind ``repro report`` for this config.

    ``repro campaign run`` on this spec pre-fills exactly the cells the
    tables and figures will ask :func:`measure_cell` for (the paper
    route set over ``cfg.sizes_mb``), so a report pointed at the same
    store finds every cell already computed.
    """
    return CampaignSpec(
        sizes_mb=tuple(float(s) for s in cfg.sizes_mb),
        seeds=(cfg.master_seed,),
        protocol=cfg.protocol,
        cross_traffic=cfg.cross_traffic,
        params=cfg.params,
    )


def measure_rsync_hop(
    cfg: AnalysisConfig,
    src_site: str,
    dst_site: str,
    size_mb: float,
) -> Measurement:
    """Measure a bare rsync hop (the 'UBC to UAlberta' series of Fig. 2)."""
    label = f"rsync:{src_site}->{dst_site} {size_mb:g}MB"
    spec = FileSpec(f"test-{size_mb:g}MB.bin", int(mb(size_mb)))

    def run_factory(world: World, run_index: int):
        session = RsyncSession(world.engine, world.router, world.tcp)
        start = world.sim.now
        yield from session.push(world.host_of(src_site), world.host_of(dst_site), spec)
        return world.sim.now - start

    return cfg.runner().measure(label, run_factory)
