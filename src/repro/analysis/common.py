"""Shared experiment-cell runner for the analysis layer.

One *cell* is (client, provider, route, size): the runner builds a fresh
world seeded from the cell's label, executes the paper's 7-run protocol,
and returns the kept-run summary.  All tables and figures are assembled
from cells, so their numbers agree wherever they overlap (as in the
paper, where Fig. 2 and Table II show the same data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.core.executor import PlanExecutor
from repro.core.routes import Route, TransferPlan
from repro.core.world import World
from repro.measure.harness import ExperimentProtocol, ExperimentRunner, Measurement
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import KernelProfiler
from repro.testbed.build import world_factory
from repro.testbed.params import CaseStudyParams
from repro.testbed.scenarios import experiment_label
from repro.transfer.files import FileSpec, PAPER_SIZES_MB
from repro.transfer.rsync import RsyncSession
from repro.units import mb

__all__ = ["AnalysisConfig", "measure_cell", "measure_rsync_hop"]


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs for an analysis run.

    The defaults reproduce the paper's protocol over its full size sweep;
    tests shrink ``sizes_mb`` and the protocol to stay fast.
    """

    master_seed: int = 0
    protocol: ExperimentProtocol = field(default_factory=ExperimentProtocol)
    sizes_mb: Tuple[float, ...] = tuple(PAPER_SIZES_MB)
    params: Optional[CaseStudyParams] = None
    cross_traffic: bool = True
    #: shared observability sinks across every world the runner builds
    #: (compared by identity, so distinct sinks never alias cache entries)
    metrics: Optional[MetricsRegistry] = None
    profiler: Optional[KernelProfiler] = None

    def runner(self) -> ExperimentRunner:
        return ExperimentRunner(
            world_factory(params=self.params, cross_traffic=self.cross_traffic,
                          metrics=self.metrics if self.metrics is not None else False,
                          profile=self.profiler if self.profiler is not None else False),
            self.protocol,
            master_seed=self.master_seed,
        )


#: Session-level memo: cells are deterministic in (cfg, cell), and the
#: same cell backs several artifacts (Fig. 2 and Table II show the same
#: data in the paper), so recomputation is pure waste.
_CELL_CACHE: dict = {}


def measure_cell(
    cfg: AnalysisConfig,
    client: str,
    provider: str,
    route: Route,
    size_mb: float,
) -> Measurement:
    """Run one (client, provider, route, size) cell per the paper protocol.

    Results are memoized per (cfg, cell): cells are deterministic.
    """
    key = (cfg, client, provider, route, size_mb)
    cached = _CELL_CACHE.get(key)
    if cached is not None:
        return cached
    label = experiment_label(client, provider, route, size_mb)
    spec = FileSpec(f"test-{size_mb:g}MB.bin", int(mb(size_mb)))

    def run_factory(world: World, run_index: int):
        plan = TransferPlan(client, provider, spec, route)
        result = yield from PlanExecutor(world).execute(plan)
        return result

    measurement = cfg.runner().measure(label, run_factory)
    _CELL_CACHE[key] = measurement
    return measurement


def measure_rsync_hop(
    cfg: AnalysisConfig,
    src_site: str,
    dst_site: str,
    size_mb: float,
) -> Measurement:
    """Measure a bare rsync hop (the 'UBC to UAlberta' series of Fig. 2)."""
    label = f"rsync:{src_site}->{dst_site} {size_mb:g}MB"
    spec = FileSpec(f"test-{size_mb:g}MB.bin", int(mb(size_mb)))

    def run_factory(world: World, run_index: int):
        session = RsyncSession(world.engine, world.router, world.tcp)
        start = world.sim.now
        yield from session.push(world.host_of(src_site), world.host_of(dst_site), spec)
        return world.sim.now - start

    return cfg.runner().measure(label, run_factory)
