"""Machine-readable export of regenerated artifacts (CSV / JSON).

Downstream plotting (matplotlib, gnuplot, a paper's LaTeX pipeline)
wants data files, not ASCII charts.  These helpers serialize
:class:`~repro.analysis.figures.FigureResult` and
:class:`~repro.measure.results.ResultTable` losslessly.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict

from repro.analysis.figures import FigureResult
from repro.measure.results import ResultTable

__all__ = ["figure_to_csv", "figure_to_json", "table_to_csv", "table_to_json"]


def figure_to_csv(result: FigureResult) -> str:
    """One row per (size, series): mean, std, n."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["size_mb", "series", "mean_s", "std_s", "n", "min_s", "max_s"])
    for i, size in enumerate(result.sizes_mb):
        for label, values in result.series.items():
            s = values[i]
            writer.writerow([size, label, f"{s.mean:.6f}", f"{s.std:.6f}",
                             s.n, f"{s.minimum:.6f}", f"{s.maximum:.6f}"])
    return buf.getvalue()


def figure_to_json(result: FigureResult) -> str:
    """Full figure payload as JSON (indent=2, stable key order)."""
    payload: Dict[str, Any] = {
        "figure_id": result.spec.figure_id,
        "title": result.spec.title,
        "client": result.spec.client,
        "provider": result.spec.provider,
        "sizes_mb": list(result.sizes_mb),
        "series": {
            label: [
                {"mean_s": s.mean, "std_s": s.std, "n": s.n,
                 "min_s": s.minimum, "max_s": s.maximum}
                for s in values
            ]
            for label, values in result.series.items()
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def table_to_csv(table: ResultTable) -> str:
    """One row per (size, route) with the relative gain vs baseline."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["size_mb", "route", "mean_s", "std_s", "n", "gain_vs_baseline_pct"])
    for row in sorted(table.rows, key=lambda r: r.size_mb):
        for route in table.routes:
            s = row.by_route[route]
            gain = 0.0 if route == table.baseline_route else row.gain_pct(route)
            writer.writerow([row.size_mb, route, f"{s.mean:.6f}", f"{s.std:.6f}",
                             s.n, f"{gain:.4f}"])
    return buf.getvalue()


def table_to_json(table: ResultTable) -> str:
    payload: Dict[str, Any] = {
        "title": table.title,
        "baseline_route": table.baseline_route,
        "rows": [
            {
                "size_mb": row.size_mb,
                "routes": {
                    route: {"mean_s": s.mean, "std_s": s.std, "n": s.n}
                    for route, s in row.by_route.items()
                },
            }
            for row in sorted(table.rows, key=lambda r: r.size_mb)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
