"""Regeneration of the paper's figures.

Figs. 2, 4, 7, 8, 9, 10, 11 are upload-time-vs-size bar charts for one
(client, provider) pair across routes; Figs. 2 and 10 additionally show
the bare rsync hop to UAlberta.  Figs. 5/6 are traceroutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.ascii_plot import bar_chart
from repro.analysis.common import AnalysisConfig, measure_cell, measure_rsync_hop
from repro.core.routes import DetourRoute, DirectRoute, Route
from repro.errors import MeasurementError
from repro.measure.stats import Summary
from repro.net.traceroute import format_traceroute, traceroute
from repro.sim.rng import RngRegistry
from repro.testbed.build import build_case_study
from repro.testbed.scenarios import paper_route_set

__all__ = ["FigureSpec", "FigureResult", "FIGURES", "run_figure", "run_traceroute_figures"]


@dataclass(frozen=True)
class FigureSpec:
    """One upload-performance figure from the paper."""

    figure_id: str
    title: str
    client: str
    provider: str
    #: extra bare-hop series, (src_site, dst_site, label)
    extra_hops: Tuple[Tuple[str, str, str], ...] = ()


FIGURES: Dict[str, FigureSpec] = {
    spec.figure_id: spec
    for spec in [
        FigureSpec("fig2", "Upload performance from UBC to Google Drive",
                   "ubc", "gdrive",
                   extra_hops=(("ubc", "ualberta", "UBC to UAlberta (rsync)"),)),
        FigureSpec("fig4", "Upload performance from UBC to Dropbox", "ubc", "dropbox"),
        FigureSpec("fig7", "Upload performance from Purdue to Google Drive",
                   "purdue", "gdrive"),
        FigureSpec("fig8", "Upload performance from Purdue to Dropbox",
                   "purdue", "dropbox"),
        FigureSpec("fig9", "Upload performance from Purdue to OneDrive",
                   "purdue", "onedrive"),
        FigureSpec("fig10", "Upload performance from UCLA to Google Drive",
                   "ucla", "gdrive",
                   extra_hops=(("ucla", "ualberta", "UCLA to UAlberta (rsync)"),)),
        FigureSpec("fig11", "Upload performance from UCLA to Dropbox",
                   "ucla", "dropbox"),
    ]
}


@dataclass(frozen=True)
class FigureResult:
    """All series of one figure, ready to render or tabulate."""

    spec: FigureSpec
    sizes_mb: Tuple[float, ...]
    series: Dict[str, Tuple[Summary, ...]]

    def render(self, width: int = 56) -> str:
        groups = [f"{s:g} MB" for s in self.sizes_mb]
        return bar_chart(self.spec.title, groups, dict(self.series), width=width)

    def rows(self) -> List[Tuple[float, Dict[str, Summary]]]:
        """(size, {series: summary}) rows for benchmark printing."""
        return [
            (size, {label: values[i] for label, values in self.series.items()})
            for i, size in enumerate(self.sizes_mb)
        ]

    def fastest_route_at(self, size_mb: float) -> str:
        """Fastest *route* series (hop series excluded) at one size."""
        i = self.sizes_mb.index(size_mb)
        route_series = {
            label: values for label, values in self.series.items()
            if label == "direct" or label.startswith("via ")
        }
        return min(route_series, key=lambda label: route_series[label][i].mean)


def run_figure(figure_id: str, cfg: Optional[AnalysisConfig] = None) -> FigureResult:
    """Measure every series of one figure (paper protocol per cell)."""
    cfg = cfg if cfg is not None else AnalysisConfig()
    try:
        spec = FIGURES[figure_id]
    except KeyError:
        raise MeasurementError(
            f"unknown figure {figure_id!r}; have: {sorted(FIGURES)}"
        ) from None

    series: Dict[str, List[Summary]] = {}
    for route in paper_route_set(spec.client):
        label = route.describe()
        series[label] = [
            measure_cell(cfg, spec.client, spec.provider, route, size).kept
            for size in cfg.sizes_mb
        ]
    for src, dst, label in spec.extra_hops:
        series[label] = [
            measure_rsync_hop(cfg, src, dst, size).kept for size in cfg.sizes_mb
        ]
    return FigureResult(
        spec=spec,
        sizes_mb=tuple(cfg.sizes_mb),
        series={k: tuple(v) for k, v in series.items()},
    )


def run_traceroute_figures(seed: int = 0) -> Dict[str, str]:
    """Figs. 5 and 6: traceroutes to the Google Drive frontend."""
    world = build_case_study(seed=seed, cross_traffic=False)
    frontend = world.topology.node("gdrive-frontend")
    rng = RngRegistry(seed)
    out = {}
    for fig_id, src in [("fig5", "ubc-pl"), ("fig6", "ualberta-dtn")]:
        hops = traceroute(world.router, src, frontend.name,
                          rng=rng.stream(f"analysis.traceroute.{src}"))
        out[fig_id] = format_traceroute(hops, "www.googleapis.com", frontend.address)
    return out
