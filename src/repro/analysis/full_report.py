"""One-shot regeneration of every table plus the paper comparison.

``generate_full_report()`` is the programmatic equivalent of running the
table benchmarks: it measures all cells (memoized, so shared cells are
computed once), renders Tables I-V, and appends the paper-vs-measured
comparison that backs EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.common import AnalysisConfig
from repro.analysis.report import render_experiment_report
from repro.analysis.tables import (
    render_table1,
    render_table4,
    render_table5,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)

__all__ = ["generate_full_report"]


def generate_full_report(cfg: Optional[AnalysisConfig] = None) -> str:
    """Regenerate Tables I-V and the paper comparison as one document."""
    cfg = cfg if cfg is not None else AnalysisConfig()

    table2 = run_table2(cfg)
    table3 = run_table3(cfg)
    table4_sizes = tuple(s for s in (100, 60) if s in cfg.sizes_mb) or (cfg.sizes_mb[-1],)
    table4_rows = run_table4(cfg, sizes_mb=table4_sizes)
    table1_cells = run_table1(cfg)
    table5_entries = run_table5(cfg, table1=table1_cells)

    sections = [
        "REGENERATED EVALUATION",
        "=" * 22,
        "",
        render_table1(table1_cells),
        "",
        table2.render(show_std=True),
        "",
        table3.render(show_std=True),
        "",
        render_table4(table4_rows),
        "",
        render_table5(table5_entries),
        "",
        render_experiment_report(
            table2=table2,
            table3=table3,
            table4_rows=table4_rows,
            table1_cells=table1_cells,
        ),
    ]
    return "\n".join(sections)
