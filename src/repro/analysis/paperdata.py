"""The paper's published numbers, transcribed for comparison.

Sources: Table II (UBC -> Google Drive), Table III (Purdue -> Google
Drive), Table IV (Purdue variance, 60/100 MB), and the qualitative
rankings of Table I.  Keys are file sizes in MB; values are seconds.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE1_RANKINGS",
    "PAPER_HEADLINE",
]

#: Table II: UBC-to-Google Drive average transfer times (s).
PAPER_TABLE2: Dict[int, Dict[str, float]] = {
    10: {"direct": 9.46, "via ualberta": 6.47, "via umich": 15.41},
    20: {"direct": 18.61, "via ualberta": 8.27, "via umich": 27.71},
    30: {"direct": 28.66, "via ualberta": 13.85, "via umich": 39.14},
    40: {"direct": 36.86, "via ualberta": 17.40, "via umich": 51.87},
    50: {"direct": 42.26, "via ualberta": 19.41, "via umich": 63.68},
    60: {"direct": 51.11, "via ualberta": 21.99, "via umich": 80.71},
    100: {"direct": 86.92, "via ualberta": 35.79, "via umich": 132.17},
}

#: Table III: Purdue-to-Google Drive average transfer times (s).
PAPER_TABLE3: Dict[int, Dict[str, float]] = {
    10: {"direct": 98.89, "via ualberta": 17.57, "via umich": 30.59},
    20: {"direct": 288.23, "via ualberta": 70.55, "via umich": 83.62},
    30: {"direct": 480.95, "via ualberta": 120.69, "via umich": 111.37},
    40: {"direct": 585.54, "via ualberta": 94.43, "via umich": 173.53},
    50: {"direct": 557.90, "via ualberta": 138.03, "via umich": 126.82},
    60: {"direct": 610.88, "via ualberta": 142.15, "via umich": 183.85},
    100: {"direct": 748.03, "via ualberta": 195.88, "via umich": 184.07},
}

#: Table IV: mean and standard deviation of upload times (s) from Purdue.
#: Keyed by (size_mb, provider, route) -> (mean, std).
PAPER_TABLE4: Dict[Tuple[int, str, str], Tuple[float, float]] = {
    (100, "dropbox", "direct"): (177.89, 36.03),
    (100, "dropbox", "via ualberta"): (237.78, 56.10),
    (100, "dropbox", "via umich"): (226.43, 50.48),
    (100, "onedrive", "direct"): (387.66, 117.81),
    (100, "onedrive", "via ualberta"): (201.90, 38.65),
    (100, "onedrive", "via umich"): (197.21, 58.19),
    (60, "dropbox", "direct"): (212.66, 74.92),
    (60, "dropbox", "via ualberta"): (174.54, 50.16),
    (60, "dropbox", "via umich"): (203.78, 26.93),
    (60, "onedrive", "direct"): (179.44, 51.49),
    (60, "onedrive", "via ualberta"): (145.93, 50.12),
    (60, "onedrive", "via umich"): (175.37, 26.09),
}

#: Table I: qualitative fastest-route rankings per (client, provider).
#: Values are route descriptions fastest-first (main text, ignoring the
#: per-size footnote exceptions).
PAPER_TABLE1_RANKINGS: Dict[Tuple[str, str], Tuple[str, ...]] = {
    ("ubc", "gdrive"): ("via ualberta", "direct", "via umich"),
    ("ubc", "dropbox"): ("direct", "via ualberta", "via umich"),
    ("ubc", "onedrive"): ("direct", "via ualberta", "via umich"),
    # Purdue/GDrive: both detours beat direct, mutually comparable
    ("purdue", "gdrive"): ("via ualberta", "via umich", "direct"),
    ("purdue", "dropbox"): ("direct", "via ualberta", "via umich"),
    ("purdue", "onedrive"): ("direct", "via ualberta", "via umich"),
    ("ucla", "gdrive"): ("direct", "via ualberta", "via umich"),
    ("ucla", "dropbox"): ("direct", "via ualberta", "via umich"),
    ("ucla", "onedrive"): ("direct", "via ualberta", "via umich"),
}

#: Sec. I's headline example (100 MB, UBC -> Google Drive), seconds.
PAPER_HEADLINE = {
    "direct": 87.0,
    "ubc_to_ualberta": 19.0,
    "ualberta_to_gdrive": 17.0,
    "via_ualberta_total": 36.0,
}
