"""Paper-vs-measured comparison reporting.

Quantitative artifacts (Tables II/III/IV) are compared cell by cell as
ratios; qualitative artifacts (Table I rankings) as match/mismatch.  The
output backs EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.paperdata import (
    PAPER_TABLE1_RANKINGS,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
)
from repro.analysis.tables import Table1Cell, Table4Row
from repro.measure.results import ResultTable

__all__ = ["CellComparison", "compare_with_paper", "render_experiment_report",
           "compare_rankings"]

#: Table I cells where the paper itself lists per-size footnote exceptions
#: to its main ranking (so a ranking mismatch there is within the paper's
#: own noise).
PAPER_TABLE1_FOOTNOTED = {
    ("purdue", "dropbox"),
    ("purdue", "onedrive"),
    ("ucla", "gdrive"),
    ("ucla", "onedrive"),
}


@dataclass(frozen=True)
class CellComparison:
    """One measured cell against the paper's published value."""

    label: str
    paper_s: float
    measured_s: float

    @property
    def ratio(self) -> float:
        return self.measured_s / self.paper_s

    def describe(self) -> str:
        return (f"{self.label:<42} paper {self.paper_s:8.2f}s   "
                f"measured {self.measured_s:8.2f}s   ratio {self.ratio:5.2f}")


def compare_with_paper(
    table: ResultTable,
    paper: Dict[int, Dict[str, float]],
    prefix: str,
) -> List[CellComparison]:
    """Compare a measured ResultTable against paper data, cell by cell."""
    comparisons: List[CellComparison] = []
    for row in sorted(table.rows, key=lambda r: r.size_mb):
        paper_row = paper.get(int(row.size_mb))
        if paper_row is None:
            continue
        for route, summary in sorted(row.by_route.items()):
            if route not in paper_row:
                continue
            comparisons.append(CellComparison(
                label=f"{prefix} {row.size_mb:g}MB [{route}]",
                paper_s=paper_row[route],
                measured_s=summary.mean,
            ))
    return comparisons


def compare_rankings(
    cells: Dict[Tuple[str, str], Table1Cell],
) -> List[Tuple[str, str, str, str, bool, bool]]:
    """Per Table-I cell: (client, provider, measured, paper, match, footnoted)."""
    out = []
    for key, paper_ranking in PAPER_TABLE1_RANKINGS.items():
        cell = cells.get(key)
        if cell is None:
            continue
        measured = cell.ranking
        # "match" = same fastest route; full orderings are noisy even in
        # the paper (its footnotes flip several cells per size)
        match = measured[0] == paper_ranking[0]
        out.append((key[0], key[1], " > ".join(measured),
                    " > ".join(paper_ranking), match, key in PAPER_TABLE1_FOOTNOTED))
    return out


def render_experiment_report(
    table2: Optional[ResultTable] = None,
    table3: Optional[ResultTable] = None,
    table4_rows: Optional[List[Table4Row]] = None,
    table1_cells: Optional[Dict[Tuple[str, str], Table1Cell]] = None,
) -> str:
    """Assemble the full paper-vs-measured report from available pieces."""
    sections: List[str] = ["PAPER-VS-MEASURED REPORT", "=" * 24]

    if table2 is not None:
        sections.append("\nTable II (UBC -> Google Drive):")
        for c in compare_with_paper(table2, PAPER_TABLE2, "ubc->gdrive"):
            sections.append("  " + c.describe())
    if table3 is not None:
        sections.append("\nTable III (Purdue -> Google Drive):")
        for c in compare_with_paper(table3, PAPER_TABLE3, "purdue->gdrive"):
            sections.append("  " + c.describe())
    if table4_rows is not None:
        sections.append("\nTable IV (Purdue variance):")
        for row in table4_rows:
            key = (int(row.size_mb), row.provider, row.route)
            paper = PAPER_TABLE4.get(key)
            if paper is None:
                continue
            pm, ps = paper
            sections.append(
                f"  {row.size_mb:g}MB {row.provider:<9} [{row.route:<12}] "
                f"paper {pm:7.2f}±{ps:6.2f}   measured "
                f"{row.summary.mean:7.2f}±{row.summary.std:6.2f}"
            )
    if table1_cells is not None:
        sections.append("\nTable I (fastest-route rankings):")
        for client, provider, measured, paper, match, footnoted in compare_rankings(table1_cells):
            status = "MATCH" if match else ("within paper's own footnote noise"
                                            if footnoted else "MISMATCH")
            sections.append(f"  {client:>7} -> {provider:<9} measured [{measured}]  "
                            f"paper [{paper}]  {status}")
    return "\n".join(sections)
