"""Calibration sensitivity: which knobs do the conclusions hinge on?

Every calibrated rate in :class:`~repro.testbed.params.CaseStudyParams`
came from inverting the paper's tables.  A reproduction is only credible
if its *conclusions* don't hinge on fourth-decimal tuning, so this module
perturbs each knob by a factor in both directions and re-checks the
qualitative conclusions — a tornado-style robustness analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.executor import PlanExecutor
from repro.core.routes import DetourRoute, DirectRoute, TransferPlan
from repro.testbed.build import build_case_study
from repro.testbed.params import CaseStudyParams, DEFAULT_PARAMS
from repro.transfer.files import FileSpec
from repro.units import mb

__all__ = ["Conclusion", "SensitivityResult", "CONCLUSIONS", "run_sensitivity",
           "render_sensitivity", "RATE_KNOBS"]

#: The calibration knobs that are rates (safe to scale multiplicatively).
RATE_KNOBS: Tuple[str, ...] = (
    "ubc_access_bps",
    "umich_access_bps",
    "purdue_access_bps",
    "ucla_access_bps",
    "pacificwave_policer_bps",
    "canarie_google_bps",
    "canarie_i2_bps",
    "canarie_microsoft_bps",
    "canarie_dropbox_bps",
    "i2_google_bps",
    "i2_microsoft_bps",
    "i2_dropbox_bps",
    "transita_google_bps",
    "transita_microsoft_bps",
    "transita_dropbox_bps",
    "transitb_peering_bps",
)


@dataclass(frozen=True)
class Conclusion:
    """One qualitative claim, evaluated in a given world."""

    name: str
    description: str
    check: Callable[["_Evaluator"], bool]


class _Evaluator:
    """Measures route times (one run, quiet world) for conclusion checks."""

    def __init__(self, params: CaseStudyParams, size_mb: float = 100.0, seed: int = 0):
        self.params = params
        self.size_mb = size_mb
        self.seed = seed
        self._cache: Dict[Tuple[str, str, str], float] = {}

    def time(self, client: str, provider: str, via: Optional[str] = None) -> float:
        route = DirectRoute() if via is None else DetourRoute(via)
        key = (client, provider, route.describe())
        if key not in self._cache:
            world = build_case_study(seed=self.seed, params=self.params,
                                     cross_traffic=False)
            plan = TransferPlan(client, provider,
                                FileSpec("sens.bin", int(mb(self.size_mb))), route)
            self._cache[key] = PlanExecutor(world).run(plan).total_s
        return self._cache[key]


#: The paper's qualitative claims, as executable predicates.
CONCLUSIONS: Tuple[Conclusion, ...] = (
    Conclusion(
        "ubc_gdrive_detour_wins",
        "UBC -> Drive: the UAlberta detour beats direct (Fig. 2)",
        lambda e: e.time("ubc", "gdrive", "ualberta") < e.time("ubc", "gdrive"),
    ),
    Conclusion(
        "ubc_dropbox_direct_wins",
        "UBC -> Dropbox: direct beats both detours (Fig. 4)",
        lambda e: e.time("ubc", "dropbox") < min(
            e.time("ubc", "dropbox", "ualberta"), e.time("ubc", "dropbox", "umich")),
    ),
    Conclusion(
        "purdue_gdrive_detours_win",
        "Purdue -> Drive: both detours beat direct (Fig. 7)",
        lambda e: max(e.time("purdue", "gdrive", "ualberta"),
                      e.time("purdue", "gdrive", "umich"))
        < e.time("purdue", "gdrive"),
    ),
    Conclusion(
        "ucla_detours_dont_help",
        "UCLA -> Drive: no detour improves on direct by >10% (Fig. 10)",
        lambda e: min(e.time("ucla", "gdrive", "ualberta"),
                      e.time("ucla", "gdrive", "umich"))
        > 0.9 * e.time("ucla", "gdrive"),
    ),
)


@dataclass(frozen=True)
class SensitivityResult:
    """Outcome of perturbing one knob in one direction."""

    knob: str
    factor: float
    conclusions: Dict[str, bool]

    @property
    def all_hold(self) -> bool:
        return all(self.conclusions.values())

    @property
    def flipped(self) -> List[str]:
        return [name for name, ok in self.conclusions.items() if not ok]


def run_sensitivity(
    knobs: Sequence[str] = RATE_KNOBS,
    factors: Sequence[float] = (0.8, 1.25),
    size_mb: float = 100.0,
    seed: int = 0,
) -> List[SensitivityResult]:
    """Perturb each knob by each factor; re-evaluate every conclusion.

    Quiet single-run worlds keep this tractable (~2 world-builds per
    conclusion per perturbation, all memoized within a perturbation).
    """
    results: List[SensitivityResult] = []
    for knob in knobs:
        base_value = getattr(DEFAULT_PARAMS, knob)
        for factor in factors:
            params = DEFAULT_PARAMS.with_overrides(**{knob: base_value * factor})
            evaluator = _Evaluator(params, size_mb=size_mb, seed=seed)
            outcome = {c.name: bool(c.check(evaluator)) for c in CONCLUSIONS}
            results.append(SensitivityResult(knob, factor, outcome))
    return results


def render_sensitivity(results: List[SensitivityResult]) -> str:
    lines = ["Calibration sensitivity: conclusions under per-knob perturbation",
             "(blank = holds; name = conclusion that flipped)", ""]
    width = max(len(r.knob) for r in results)
    for r in results:
        status = "ok" if r.all_hold else ", ".join(r.flipped)
        lines.append(f"  {r.knob.ljust(width)} x{r.factor:<5g} {status}")
    fragile = {r.knob for r in results if not r.all_hold}
    lines.append("")
    lines.append(
        "all conclusions robust to every perturbation" if not fragile
        else f"fragile knobs: {', '.join(sorted(fragile))}"
    )
    return "\n".join(lines)
