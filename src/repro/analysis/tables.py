"""Regeneration of the paper's Tables I-V."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.common import AnalysisConfig, measure_cell
from repro.core.routes import DetourRoute, DirectRoute, Route
from repro.geo.coords import detour_stretch, haversine_km
from repro.geo.sites import site
from repro.measure.results import ResultTable
from repro.measure.stats import Summary, error_bars_overlap
from repro.testbed.scenarios import CLIENTS, PROVIDERS, paper_route_set

__all__ = ["run_table1", "run_table2", "run_table3", "run_table4", "run_table5",
           "Table1Cell", "Table4Row", "Table5Entry"]


# ---------------------------------------------------------------------------
# Tables II and III — mean transfer times with relative gains
# ---------------------------------------------------------------------------

def _route_table(cfg: AnalysisConfig, client: str, provider: str, title: str) -> ResultTable:
    table = ResultTable(title)
    for size in cfg.sizes_mb:
        by_route: Dict[str, Summary] = {}
        for route in paper_route_set(client):
            by_route[route.describe()] = measure_cell(cfg, client, provider, route, size).kept
        table.add_row(size, by_route)
    return table


def run_table2(cfg: Optional[AnalysisConfig] = None) -> ResultTable:
    """Table II: UBC-to-Google Drive average transfer times."""
    cfg = cfg if cfg is not None else AnalysisConfig()
    return _route_table(cfg, "ubc", "gdrive",
                        "Table II: UBC-to-Google Drive average transfer times (s)")


def run_table3(cfg: Optional[AnalysisConfig] = None) -> ResultTable:
    """Table III: Purdue-to-Google Drive average transfer times."""
    cfg = cfg if cfg is not None else AnalysisConfig()
    return _route_table(cfg, "purdue", "gdrive",
                        "Table III: Purdue-to-Google Drive average transfer times (s)")


# ---------------------------------------------------------------------------
# Table I — qualitative summary of fastest routes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Cell:
    """Ranking of routes for one (client, provider) pair."""

    client: str
    provider: str
    ranking: Tuple[str, ...]  # fastest first, by total time over the sweep
    fastest_counts: Dict[str, int]  # per-size wins (the footnote exceptions)

    def describe(self) -> str:
        parts = []
        labels = ["Fastest", "Fast", "Slowest"]
        for i, route in enumerate(self.ranking):
            label = labels[min(i, len(labels) - 1)]
            parts.append(f"{label}: {route}")
        return ", ".join(parts)


def run_table1(cfg: Optional[AnalysisConfig] = None) -> Dict[Tuple[str, str], Table1Cell]:
    """Table I: summary of route rankings for all clients x providers."""
    cfg = cfg if cfg is not None else AnalysisConfig()
    out: Dict[Tuple[str, str], Table1Cell] = {}
    for client in CLIENTS:
        for provider in PROVIDERS:
            table = _route_table(cfg, client, provider, f"{client}->{provider}")
            totals = {
                route: sum(row.by_route[route].mean for row in table.rows)
                for route in table.rows[0].by_route
            }
            ranking = tuple(sorted(totals, key=totals.get))
            out[(client, provider)] = Table1Cell(
                client, provider, ranking, table.fastest_counts()
            )
    return out


def render_table1(cells: Dict[Tuple[str, str], Table1Cell]) -> str:
    lines = ["Table I: summary of fastest routes (by total time over the size sweep)"]
    for client in CLIENTS:
        for provider in PROVIDERS:
            cell = cells[(client, provider)]
            exceptions = {r: n for r, n in cell.fastest_counts.items()
                          if n and r != cell.ranking[0]}
            note = f"  (per-size wins: {exceptions})" if exceptions else ""
            lines.append(f"  {client:>7} -> {provider:<9} {cell.describe()}{note}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table IV — variance analysis
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table4Row:
    """One row: mean ± σ for a (size, provider, route) from Purdue."""

    size_mb: float
    provider: str
    route: str
    summary: Summary
    overlaps_direct: Optional[bool]  # None on the direct rows themselves

    def describe(self) -> str:
        overlap = ""
        if self.overlaps_direct is not None:
            overlap = "  [±1σ overlaps direct]" if self.overlaps_direct else "  [separated from direct]"
        return (f"{self.size_mb:g} MB {self.provider} ({self.route}): "
                f"{self.summary.mean:.2f} ± {self.summary.std:.2f}{overlap}")


def run_table4(cfg: Optional[AnalysisConfig] = None,
               sizes_mb: Sequence[float] = (100, 60)) -> List[Table4Row]:
    """Table IV: Purdue upload mean/σ for Dropbox and OneDrive.

    Includes the paper's ±1σ overlap analysis against the direct route.
    """
    cfg = cfg if cfg is not None else AnalysisConfig()
    rows: List[Table4Row] = []
    for size in sizes_mb:
        for provider in ("dropbox", "onedrive"):
            summaries: Dict[str, Summary] = {}
            for route in paper_route_set("purdue"):
                summaries[route.describe()] = measure_cell(
                    cfg, "purdue", provider, route, size).kept
            direct = summaries["direct"]
            for route_descr, summary in summaries.items():
                overlaps = None
                if route_descr != "direct":
                    overlaps = error_bars_overlap(direct, summary)
                rows.append(Table4Row(size, provider, route_descr, summary, overlaps))
    return rows


def render_table4(rows: List[Table4Row]) -> str:
    lines = ["Table IV: mean and standard deviation of upload times from Purdue (s)"]
    lines.extend("  " + row.describe() for row in rows)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table V — geographical summary of fastest routes
# ---------------------------------------------------------------------------

_PROVIDER_SITES = {"gdrive": "gdrive-dc", "dropbox": "dropbox-dc", "onedrive": "onedrive-dc"}


@dataclass(frozen=True)
class Table5Entry:
    """Fastest route for one (client, provider) with its geography."""

    client: str
    provider: str
    fastest: str
    direct_km: float
    fastest_km: float

    @property
    def geographic_stretch(self) -> float:
        return self.fastest_km / self.direct_km if self.direct_km else float("inf")

    def describe(self) -> str:
        if self.fastest == "direct":
            geo = f"direct path, {self.direct_km:.0f} km"
        else:
            geo = (f"{self.fastest}: {self.fastest_km:.0f} km vs "
                   f"{self.direct_km:.0f} km direct "
                   f"({self.geographic_stretch:.2f}x the map distance)")
        return f"{self.client} -> {self.provider}: fastest {self.fastest} ({geo})"


def run_table5(cfg: Optional[AnalysisConfig] = None,
               table1: Optional[Dict[Tuple[str, str], Table1Cell]] = None) -> List[Table5Entry]:
    """Table V: fastest routes placed on the map (geography of detours)."""
    cfg = cfg if cfg is not None else AnalysisConfig()
    cells = table1 if table1 is not None else run_table1(cfg)
    entries: List[Table5Entry] = []
    for (client, provider), cell in cells.items():
        c_loc = site(client).location
        p_loc = site(_PROVIDER_SITES[provider]).location
        direct_km = haversine_km(c_loc, p_loc)
        fastest = cell.ranking[0]
        if fastest == "direct":
            fastest_km = direct_km
        else:
            via_site = fastest.removeprefix("via ").split(" ")[0]
            v_loc = site(via_site).location
            fastest_km = haversine_km(c_loc, v_loc) + haversine_km(v_loc, p_loc)
        entries.append(Table5Entry(client, provider, fastest, direct_km, fastest_km))
    return entries


def render_table5(entries: List[Table5Entry]) -> str:
    lines = ["Table V: geographical summary of fastest routes"]
    lines.extend("  " + e.describe() for e in entries)
    return "\n".join(lines)
