"""Per-transfer timelines reconstructed from the event trace.

Turns the engine's ``flow_start``/``flow_end`` trace events into
human-readable timelines and per-interval concurrency/throughput
summaries — the "what exactly happened during run 4" debugging view that
wall-clock measurement papers never get to have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MeasurementError
from repro.sim.trace import TraceEvent, Tracer

__all__ = ["FlowSpan", "extract_flow_spans", "concurrency_profile", "render_timeline"]


@dataclass(frozen=True)
class FlowSpan:
    """One flow's lifetime as recorded in the trace."""

    flow_id: int
    label: str
    start: float
    end: float
    nbytes: int

    @property
    def duration_s(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "FlowSpan") -> bool:
        return self.start < other.end and other.start < self.end


def extract_flow_spans(
    tracer: Tracer,
    label_prefix: str = "",
    include_unfinished: bool = False,
    horizon: Optional[float] = None,
) -> List[FlowSpan]:
    """Pair up flow_start/flow_end events into spans.

    Flows still open at the end of the trace are included (with
    ``end=horizon``) only when *include_unfinished* is set.
    """
    open_flows: Dict[int, TraceEvent] = {}
    spans: List[FlowSpan] = []
    for ev in tracer.filter(component="net.engine"):
        flow = ev.fields.get("flow")
        if ev.kind == "flow_start":
            open_flows[flow] = ev
        elif ev.kind == "flow_end":
            start_ev = open_flows.pop(flow, None)
            if start_ev is None:
                continue  # started before the trace window
            label = start_ev.fields.get("label", "")
            if label_prefix and not label.startswith(label_prefix):
                continue
            spans.append(FlowSpan(
                flow_id=flow,
                label=label,
                start=start_ev.time,
                end=ev.time,
                nbytes=start_ev.fields.get("bytes", 0),
            ))
    if include_unfinished:
        if horizon is None:
            raise MeasurementError("include_unfinished requires a horizon")
        for flow, start_ev in open_flows.items():
            label = start_ev.fields.get("label", "")
            if label_prefix and not label.startswith(label_prefix):
                continue
            spans.append(FlowSpan(flow, label, start_ev.time, horizon,
                                  start_ev.fields.get("bytes", 0)))
    spans.sort(key=lambda s: (s.start, s.flow_id))
    return spans


def concurrency_profile(spans: Sequence[FlowSpan]) -> List[Tuple[float, int]]:
    """Step function of concurrent-flow count: [(time, count), ...]."""
    events: List[Tuple[float, int]] = []
    for span in spans:
        events.append((span.start, +1))
        events.append((span.end, -1))
    events.sort()
    profile: List[Tuple[float, int]] = []
    count = 0
    for t, delta in events:
        count += delta
        if profile and profile[-1][0] == t:
            profile[-1] = (t, count)
        else:
            profile.append((t, count))
    return profile


def render_timeline(spans: Sequence[FlowSpan], width: int = 64) -> str:
    """Gantt-style ASCII timeline of flow spans."""
    if not spans:
        return "(no flows in trace)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    duration = max(t1 - t0, 1e-9)
    label_w = min(36, max(len(s.label) for s in spans))
    lines = [f"timeline: {t0:.2f}s .. {t1:.2f}s ({duration:.2f}s)"]
    for span in spans:
        lead = int((span.start - t0) / duration * width)
        bar = max(1, int(span.duration_s / duration * width))
        lines.append(
            f"  {span.label[:label_w].ljust(label_w)} "
            f"|{' ' * lead}{'=' * bar}| {span.duration_s:.2f}s"
        )
    peak = max(c for _, c in concurrency_profile(spans))
    lines.append(f"peak concurrency: {peak}")
    return "\n".join(lines)
