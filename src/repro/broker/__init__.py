"""repro.broker — an online detour-brokerage control plane.

The broker runs *inside* the simulation as kernel processes: a TTL'd
:class:`RouteDirectory` serving recommendations out of shared
:class:`~repro.core.selection.HistorySelector` state, a budgeted
:class:`ProbeScheduler` refreshing the stalest entries first, DTN
load-aware admission, and a :class:`FleetRunner` that drives
``repro.workloads`` population schedules through broker-guided clients
and scores them against broker-off baselines.

See ``docs/BROKER.md`` for the architecture and the regret metrics.
"""

from repro.broker.admission import AdmissionController
from repro.broker.campaign import BrokerSweepSpec, FleetCell, SweepSummary, score_sweep
from repro.broker.config import BrokerConfig
from repro.broker.directory import (
    DirectoryEntry,
    DirectorySnapshot,
    RouteDirectory,
    size_class,
)
from repro.broker.fleet import (
    FleetResult,
    FleetRunner,
    FleetScore,
    FleetUploadRecord,
    run_fleet,
    score_fleet,
)
from repro.broker.scheduler import ProbeScheduler
from repro.broker.service import DetourBroker, Recommendation

__all__ = [
    "AdmissionController",
    "BrokerConfig",
    "BrokerSweepSpec",
    "DetourBroker",
    "DirectoryEntry",
    "DirectorySnapshot",
    "FleetCell",
    "FleetResult",
    "FleetRunner",
    "FleetScore",
    "FleetUploadRecord",
    "ProbeScheduler",
    "Recommendation",
    "RouteDirectory",
    "SweepSummary",
    "run_fleet",
    "score_fleet",
    "score_sweep",
    "size_class",
]
