"""DTN load-aware admission: spill to direct when a detour is saturated.

A detour recommendation is only as good as the DTN behind it.  DTNs with
a session limit expose a FIFO :class:`~repro.sim.resources.Resource`
(``dtn.sessions``); rather than queue a client behind a saturated relay
— turning the mitigation into a bottleneck — the broker admits the
detour only while a session slot is free and otherwise *spills* the
upload onto its direct route.  Unbounded DTNs (no session resource)
always admit.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.routes import DirectRoute, Route
from repro.core.world import World

from repro.broker.config import BrokerConfig

__all__ = ["AdmissionController"]


class AdmissionController:
    """Decide whether a recommended detour may actually be taken now."""

    def __init__(self, world: World, config: Optional[BrokerConfig] = None):
        self.world = world
        self.config = config if config is not None else BrokerConfig()
        self.spills = 0
        self._m_spills = world.metrics.counter(
            "repro_broker_admission_spills_total",
            "Detour recommendations spilled to direct (DTN saturated)")

    def dtn_saturated(self, via_site: str) -> bool:
        """True when the DTN at *via_site* has no free session slot."""
        dtn = self.world.dtns.get(via_site)
        if dtn is None or dtn.sessions is None:
            return False
        return dtn.sessions.available <= 0

    def admit(self, route: Route) -> Tuple[Route, bool]:
        """``(admitted route, spilled?)`` — spill swaps in the direct route."""
        via = route.via
        if via is None or not self.dtn_saturated(via):
            return route, False
        self.spills += 1
        self._m_spills.inc(via=via)
        self.world.tracer.emit(self.world.sim.now, "broker.admission",
                               "spill_to_direct", via=via)
        return DirectRoute(), True
