"""Campaign integration: broker-on vs broker-off sweeps as cells.

A :class:`FleetCell` is one fleet run (one policy, one seed) flattened
into the campaign engine's cell protocol: content-addressed identity,
stable key, a ``run_measurement`` method the worker dispatches to, and a
measurement whose per-"run" durations are the per-upload realized
transfer times in schedule order (``discard_runs == 0``, so the stored
mean *is* the fleet mean transfer time).

All policies of one seed share a **workload-derived world seed** (the
policy is deliberately excluded from the derivation), so ``direct``,
``static:*`` and ``broker`` cells replay the identical schedule in the
identical world — which is what makes cross-policy regret meaningful.

:class:`BrokerSweepSpec` expands the (seeds x modes) matrix;
``CampaignRunner`` accepts it unchanged (the runner duck-types specs via
``expand()``), so broker sweeps inherit caching, resume, parallel pool
execution, and canonical export for free.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.store import register_cell_type
from repro.errors import BrokerError, CampaignError
from repro.measure.harness import ExperimentProtocol, Measurement, experiment_seed
from repro.measure.stats import summarize

from repro.topo.spec import TopoSpec

from repro.broker.config import BrokerConfig
from repro.broker.fleet import _parse_mode, run_fleet

__all__ = ["FleetCell", "BrokerSweepSpec", "SweepSummary", "score_sweep"]

FLEET_CELL_TYPE = "broker-fleet"

#: Bump when a change to the fleet execution path invalidates stored cells.
FLEET_CELL_VERSION = 1


@dataclass(frozen=True)
class FleetCell:
    """One fleet run (one policy at one seed) as a campaign cell."""

    sites: Tuple[str, ...]
    provider: str
    mode: str  # "direct" | "broker" | "static:<route>"
    n_uploads_per_site: int
    mean_interarrival_s: float
    mean_size_mb: float
    size_dist: str = "lognormal"
    seed: int = 0
    cross_traffic: bool = True
    config: Optional[BrokerConfig] = None
    #: run the fleet on this (typically generated) world instead of the
    #: calibrated case study; referenced by content hash in the identity
    topo: Optional[TopoSpec] = None

    def __post_init__(self) -> None:
        if not self.sites:
            raise CampaignError("fleet cell needs at least one site")
        _parse_mode(self.mode)  # fail fast on unknown policies

    @property
    def n_uploads(self) -> int:
        return self.n_uploads_per_site * len(self.sites)

    @property
    def workload_label(self) -> str:
        """The schedule+world identity — shared by every policy."""
        world = ("" if self.topo is None
                 else f"@{self.topo.content_hash()[:12]}")
        return (f"fleet{world} {'+'.join(self.sites)}->{self.provider} "
                f"{self.n_uploads}x~{self.mean_size_mb:g}MB {self.size_dist}")

    @property
    def label(self) -> str:
        return f"{self.workload_label} [{self.mode}]"

    @property
    def world_seed(self) -> int:
        """Derived from the *workload* (not the policy): all policies of
        one seed replay the same world and schedule."""
        return experiment_seed(self.seed, self.workload_label)

    @property
    def protocol(self) -> ExperimentProtocol:
        """One 'run' per upload, nothing discarded: mean == fleet mean."""
        return ExperimentProtocol(total_runs=self.n_uploads, discard_runs=0,
                                  inter_run_gap_s=0.0)

    def identity(self) -> Dict[str, object]:
        ident: Dict[str, object] = {
            "cell_type": FLEET_CELL_TYPE,
            "version": FLEET_CELL_VERSION,
            "sites": list(self.sites),
            "provider": self.provider,
            "mode": self.mode,
            "n_uploads_per_site": int(self.n_uploads_per_site),
            "mean_interarrival_s": float(self.mean_interarrival_s),
            "mean_size_mb": float(self.mean_size_mb),
            "size_dist": self.size_dist,
            "seed": int(self.seed),
            "cross_traffic": bool(self.cross_traffic),
            "config": None if self.config is None else asdict(self.config),
        }
        if self.topo is not None:
            # content-hash reference plus the spec itself: the hash names
            # the world (and guards reconstruction); the spec dict makes
            # the identity self-contained for ``from_identity``.  Cells
            # without a topo keep their pre-topo keys.
            ident["topo"] = {"hash": self.topo.content_hash(),
                             "spec": self.topo.canonical_dict()}
        return ident

    @property
    def key(self) -> str:
        blob = json.dumps(self.identity(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    @classmethod
    def from_identity(cls, ident: Dict[str, object]) -> "FleetCell":
        if ident.get("cell_type") != FLEET_CELL_TYPE:
            raise CampaignError(f"not a {FLEET_CELL_TYPE} identity: {ident!r}")
        version = ident.get("version")
        if version != FLEET_CELL_VERSION:
            raise CampaignError(
                f"fleet cell identity version {version!r} is not the "
                f"supported {FLEET_CELL_VERSION}")
        config = ident["config"]
        if config is not None:
            config = dict(config)
            config["size_class_edges_mb"] = tuple(config["size_class_edges_mb"])
            config = BrokerConfig(**config)
        topo_ident = ident.get("topo")
        topo = None
        if topo_ident is not None:
            topo = TopoSpec.from_dict(topo_ident["spec"])
            if topo.content_hash() != topo_ident["hash"]:
                raise CampaignError(
                    f"fleet cell topo hash {topo_ident['hash']!r} does not "
                    f"match its spec (got {topo.content_hash()!r})")
        return cls(
            sites=tuple(ident["sites"]),
            provider=ident["provider"],
            mode=ident["mode"],
            n_uploads_per_site=int(ident["n_uploads_per_site"]),
            mean_interarrival_s=float(ident["mean_interarrival_s"]),
            mean_size_mb=float(ident["mean_size_mb"]),
            size_dist=ident["size_dist"],
            seed=int(ident["seed"]),
            cross_traffic=bool(ident["cross_traffic"]),
            config=config,
            topo=topo,
        )

    def describe(self) -> str:
        return f"{self.label} seed={self.seed}"

    def run_measurement(self, metrics=None) -> Measurement:
        """Execute the fleet; per-upload durations become the 'runs'."""
        result = run_fleet(
            seed=self.world_seed,
            sites=self.sites,
            provider=self.provider,
            n_uploads_per_site=self.n_uploads_per_site,
            mean_interarrival_s=self.mean_interarrival_s,
            mean_size_mb=self.mean_size_mb,
            size_dist=self.size_dist,
            mode=self.mode,
            config=self.config,
            cross_traffic=self.cross_traffic,
            metrics=metrics if metrics is not None else False,
            schedule_seed=self.seed,
            topo=self.topo,
        )
        durations = list(result.durations_s)
        return Measurement(label=self.label, all_durations_s=tuple(durations),
                           kept=summarize(durations), results=())


register_cell_type(FLEET_CELL_TYPE, FleetCell)


#: The default policy ladder: broker-off baselines, then the broker.
DEFAULT_MODES: Tuple[str, ...] = (
    "direct", "static:via ualberta", "static:via umich", "broker")


@dataclass(frozen=True)
class BrokerSweepSpec:
    """The (seeds x policies) matrix of one fleet workload."""

    sites: Tuple[str, ...] = ("ubc", "purdue", "ucla")
    provider: str = "gdrive"
    modes: Tuple[str, ...] = DEFAULT_MODES
    n_uploads_per_site: int = 20
    mean_interarrival_s: float = 60.0
    mean_size_mb: float = 40.0
    size_dist: str = "lognormal"
    seeds: Tuple[int, ...] = (0,)
    cross_traffic: bool = True
    config: Optional[BrokerConfig] = None
    #: optional generated world every cell of the sweep runs on
    topo: Optional[TopoSpec] = None

    def __post_init__(self) -> None:
        if not self.sites or not self.modes or not self.seeds:
            raise CampaignError("broker sweep has an empty axis")

    def expand(self) -> List[FleetCell]:
        """Fixed order: ``seed > mode`` (modes as given)."""
        return [
            FleetCell(
                sites=self.sites, provider=self.provider, mode=mode,
                n_uploads_per_site=self.n_uploads_per_site,
                mean_interarrival_s=self.mean_interarrival_s,
                mean_size_mb=self.mean_size_mb, size_dist=self.size_dist,
                seed=seed, cross_traffic=self.cross_traffic,
                config=self.config, topo=self.topo,
            )
            for seed in self.seeds
            for mode in self.modes
        ]

    def describe(self) -> str:
        cells = len(self.seeds) * len(self.modes)
        return (f"fleet {'+'.join(self.sites)}->{self.provider}: "
                f"{len(self.modes)} polic(ies) x {len(self.seeds)} seed(s) "
                f"= {cells} cells of "
                f"{self.n_uploads_per_site * len(self.sites)} uploads")


@dataclass(frozen=True)
class SweepSummary:
    """Cross-policy scores aggregated over a sweep's seeds."""

    n_uploads: int
    seeds: Tuple[int, ...]
    #: mode -> (mean transfer s, mean regret s vs the per-upload oracle)
    by_mode: Dict[str, Tuple[float, float]]

    def mean_s(self, mode: str) -> float:
        return self.by_mode[mode][0]

    def regret_s(self, mode: str) -> float:
        return self.by_mode[mode][1]

    def render(self) -> str:
        lines = [f"{self.n_uploads} uploads/seed over seeds "
                 f"{list(self.seeds)}; regret vs per-upload oracle:"]
        width = max(len(m) for m in self.by_mode)
        for mode in sorted(self.by_mode):
            mean_s, regret_s = self.by_mode[mode]
            lines.append(f"  {mode:<{width}}  mean {mean_s:9.2f}s  "
                         f"regret {regret_s:8.2f}s")
        return "\n".join(lines)

    def to_metrics(self, registry) -> None:
        """Publish the seed-averaged per-policy rollup as gauges."""
        uploads = registry.gauge(
            "repro_broker_sweep_uploads_count",
            "Uploads per seed in the scored sweep")
        mean_g = registry.gauge(
            "repro_broker_sweep_mean_transfer_seconds",
            "Seed-averaged mean upload duration per policy")
        regret_g = registry.gauge(
            "repro_broker_sweep_regret_mean_seconds",
            "Seed-averaged mean regret vs the per-upload oracle per policy")
        uploads.set(self.n_uploads)
        for mode in sorted(self.by_mode):
            mean_s, regret_s = self.by_mode[mode]
            mean_g.set(mean_s, mode=mode)
            regret_g.set(regret_s, mode=mode)


def score_sweep(spec: BrokerSweepSpec, records: Sequence) -> SweepSummary:
    """Score a completed sweep's records (cross-policy regret per seed).

    *records* are the campaign's ok records for *spec* (cells still
    missing or quarantined raise — a partial sweep cannot be scored).
    """
    by_cell = {}
    for rec in records:
        if rec.ok:
            by_cell[rec.cell.key] = rec.measurement
    durations: Dict[int, Dict[str, Tuple[float, ...]]] = {}
    for cell in spec.expand():
        m = by_cell.get(cell.key)
        if m is None:
            raise BrokerError(f"sweep is missing cell {cell.describe()!r}")
        durations.setdefault(cell.seed, {})[cell.mode] = m.all_durations_s
    n = spec.n_uploads_per_site * len(spec.sites)
    totals: Dict[str, List[float]] = {m: [0.0, 0.0] for m in spec.modes}
    for seed in spec.seeds:
        per_mode = durations[seed]
        oracle = [min(per_mode[m][i] for m in spec.modes) for i in range(n)]
        for mode in spec.modes:
            mean_s = sum(per_mode[mode]) / n
            regret_s = sum(d - o for d, o in zip(per_mode[mode], oracle)) / n
            totals[mode][0] += mean_s
            totals[mode][1] += regret_s
    n_seeds = len(spec.seeds)
    return SweepSummary(
        n_uploads=n,
        seeds=tuple(spec.seeds),
        by_mode={m: (totals[m][0] / n_seeds, totals[m][1] / n_seeds)
                 for m in spec.modes},
    )
