"""Broker tunables: TTLs, probe budgets, staleness, size classes.

One frozen dataclass so a broker deployment is fully described by a
single value — campaign cells and benchmarks can carry it around, and
two brokers with equal configs behave identically under equal seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro import units
from repro.errors import BrokerError

__all__ = ["BrokerConfig"]


@dataclass(frozen=True)
class BrokerConfig:
    """How the control plane caches, probes, and admits.

    The defaults are tuned for fleet scales of tens of uploads per hour:
    long TTLs (recommendations are refreshed by transfer reports anyway),
    a slow background probe loop, and a probe budget that keeps the
    amortized cost under one probe per five uploads.
    """

    #: Directory entry time-to-live (sim seconds).
    ttl_s: float = 3600.0
    #: Background scheduler wake period (sim seconds).
    probe_interval_s: float = 600.0
    #: Probes the scheduler may issue per wake.
    probes_per_wake: int = 1
    #: Hard cap on probes over the broker's lifetime (None = unbounded).
    max_probes: Optional[int] = None
    #: Size of each scheduler probe transfer.  Large enough that fixed
    #: per-transfer overheads (staging, handshakes) don't swamp the
    #: bandwidth signal — a 1 MB probe makes a policed-but-low-latency
    #: direct path look competitive with a fast detour; an 8 MB one
    #: reflects the sec/byte a bulk upload will actually see.
    probe_bytes: int = 8 * units.MB
    #: EWMA smoothing for the shared history estimates.
    history_alpha: float = 0.3
    #: Staleness half-life of history estimates (sim seconds).
    half_life_s: float = 1800.0
    #: Below this freshness an estimate no longer backs recommendations
    #: and becomes a probe-refresh candidate.
    min_freshness: float = 0.25
    #: Upper edges (decimal MB) of the directory's file-size classes; an
    #: upload larger than every edge falls in the open top class.
    size_class_edges_mb: Tuple[float, ...] = (8.0, 64.0)
    #: Probe every (pair, route) once at startup before serving.
    warmup: bool = True
    #: Scan for control/forwarding-plane anomalies on each wake and
    #: invalidate direct-route entries the first time one appears.
    anomaly_scan: bool = True

    def __post_init__(self) -> None:
        if self.ttl_s <= 0:
            raise BrokerError("directory TTL must be positive")
        if self.probe_interval_s <= 0:
            raise BrokerError("probe interval must be positive")
        if self.probes_per_wake < 1:
            raise BrokerError("probes per wake must be >= 1")
        if self.max_probes is not None and self.max_probes < 0:
            raise BrokerError("max_probes must be >= 0 (or None)")
        if self.probe_bytes <= 0:
            raise BrokerError("probe size must be positive")
        if not (0 < self.history_alpha <= 1):
            raise BrokerError("history alpha must be in (0, 1]")
        if self.half_life_s <= 0:
            raise BrokerError("half-life must be positive")
        if not (0 < self.min_freshness <= 1):
            raise BrokerError("min_freshness must be in (0, 1]")
        if not self.size_class_edges_mb:
            raise BrokerError("need at least one size-class edge")
        if any(e <= 0 for e in self.size_class_edges_mb):
            raise BrokerError("size-class edges must be positive MB values")
        if list(self.size_class_edges_mb) != sorted(self.size_class_edges_mb):
            raise BrokerError("size-class edges must be strictly ascending")
        if len(set(self.size_class_edges_mb)) != len(self.size_class_edges_mb):
            raise BrokerError("size-class edges must be strictly ascending")
