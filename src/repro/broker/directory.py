"""The route directory: a TTL'd recommendation cache with invalidation.

The directory is the broker's serving tier.  A lookup is O(1) on
``(client site, provider, size class)``; a hit returns the cached route
without touching the network, a miss sends the caller back to the shared
history estimates (and the resulting recommendation is installed, so the
next client in the same cohort hits).

Entries leave the directory three ways, mirroring how real control
planes lose confidence in cached answers:

* **expiry** — every entry carries ``installed_s + ttl_s``; lookups
  lazily evict entries past their deadline (counted in
  ``evictions`` / ``repro_broker_directory_evictions_total``),
* **dead-route invalidation** — a :class:`~repro.core.monitor.BottleneckMonitor`
  dead-route event drops every entry recommending that route,
* **policy-anomaly invalidation** — a ``routeviews`` control/forwarding
  divergence on a client's direct path drops that pair's direct entries,
* **supersession** — a transfer report that dethrones the cached route in
  the shared history drops that one cohort's entry early.

The directory is also *serializable*: :meth:`RouteDirectory.snapshot`
exports the live entries as a :class:`DirectorySnapshot` (canonical
JSON, content-hashed) and :meth:`RouteDirectory.preload` warms a fresh
directory from one — the protocol ``repro.shard`` uses to share route
recommendations across shard workers instead of re-probing cold.
Snapshots merge deterministically (:meth:`DirectorySnapshot.merged`):
freshest-wins by sim-time ``installed_s``, ties resolved by merge order
— exactly the supersession rule :meth:`install` applies in-process.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.world import World
from repro.errors import BrokerError
from repro.units import mb

from repro.broker.config import BrokerConfig

__all__ = ["size_class", "DirectoryEntry", "DirectorySnapshot",
           "RouteDirectory"]

#: Bump when the snapshot wire shape changes incompatibly.
SNAPSHOT_VERSION = 1


def size_class(size_bytes: int, edges_mb: Tuple[float, ...]) -> str:
    """Bucket an upload size into the directory's class label.

    Labels are human-readable and stable: ``"le8MB"``, ``"le64MB"``,
    ``"gt64MB"`` for the default edges.
    """
    if size_bytes <= 0:
        raise BrokerError("size must be positive")
    for edge in edges_mb:
        if size_bytes <= mb(edge):
            return f"le{edge:g}MB"
    return f"gt{edges_mb[-1]:g}MB"


@dataclass(frozen=True)
class DirectoryEntry:
    """One cached recommendation."""

    client_site: str
    provider_name: str
    size_class: str
    route_descr: str
    #: Sim time the entry was installed (drives the staleness metric).
    installed_s: float
    #: Sim time past which lookups treat the entry as gone.
    expires_s: float
    #: What produced the recommendation: "probe" | "history".
    source: str

    def age_s(self, now: float) -> float:
        return now - self.installed_s

    @property
    def cohort(self) -> Tuple[str, str, str]:
        """The directory key this entry serves."""
        return (self.client_site, self.provider_name, self.size_class)


@dataclass(frozen=True)
class DirectorySnapshot:
    """A serializable view of a route directory's live entries.

    The exchange format between shard workers and the shared directory
    tiers: canonical (JSON-able, content-hashed) and mergeable.  Entry
    times are *fleet sim-time* — every fleet world starts its clock at
    zero, so ``installed_s`` values from different workers are directly
    comparable and freshest-wins merging is well defined.
    """

    entries: Tuple[DirectoryEntry, ...] = ()

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def max_expires_s(self) -> float:
        """Sim time past which the snapshot warms nothing at all."""
        return max((e.expires_s for e in self.entries), default=0.0)

    def restricted(self, pairs: Iterable[Tuple[str, str]]) -> "DirectorySnapshot":
        """The sub-snapshot serving only *(client, provider)* pairs."""
        served = frozenset(pairs)
        return DirectorySnapshot(tuple(
            e for e in self.entries
            if (e.client_site, e.provider_name) in served))

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON shape; equal dicts <=> identical snapshots."""
        return {
            "version": SNAPSHOT_VERSION,
            "entries": [asdict(e) for e in self.entries],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "DirectorySnapshot":
        version = d.get("version")
        if version != SNAPSHOT_VERSION:
            raise BrokerError(
                f"unsupported directory snapshot version {version!r}")
        return cls(tuple(DirectoryEntry(**e) for e in d["entries"]))

    def content_hash(self) -> str:
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    @classmethod
    def merged(cls, snapshots: Sequence["DirectorySnapshot"]) -> "DirectorySnapshot":
        """Deterministic fold of snapshots, freshest-wins per cohort.

        For each ``(client, provider, size class)`` key the entry with
        the latest ``installed_s`` survives; on a tie the later snapshot
        in *snapshots* wins — the same supersession rule
        :meth:`RouteDirectory.install` applies in-process, where a newer
        install replaces the cohort's entry unconditionally.  The fold
        is a pure function of the input order, so callers pass snapshots
        in a deterministic (e.g. plan-site) order.
        """
        best: Dict[Tuple[str, str, str], DirectoryEntry] = {}
        for snap in snapshots:
            for entry in snap.entries:
                cur = best.get(entry.cohort)
                if cur is None or entry.installed_s >= cur.installed_s:
                    best[entry.cohort] = entry
        return cls(tuple(best[k] for k in sorted(best)))


class RouteDirectory:
    """TTL'd recommendation cache keyed by (client, provider, size class)."""

    def __init__(self, world: World, config: Optional[BrokerConfig] = None):
        self.world = world
        self.config = config if config is not None else BrokerConfig()
        self._entries: Dict[Tuple[str, str, str], DirectoryEntry] = {}
        #: cohort keys installed by :meth:`preload` (not yet re-installed
        #: by this world's own control plane): the "warm tier" of the
        #: serving path, tracked so shard rollups can report how much of
        #: the hit rate a shared snapshot bought.
        self._warm_keys: set = set()
        #: plain counters (not just metrics) so fleet results stay
        #: self-contained even with the registry disabled
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: lazy TTL expiries observed by lookups (satellite accounting:
        #: invalidations never included these)
        self.evictions = 0
        #: hits served by a preloaded (warm) entry
        self.warm_hits = 0
        metrics = world.metrics
        self._m_hits = metrics.counter(
            "repro_broker_directory_hits_total", "Directory lookups served from cache")
        self._m_misses = metrics.counter(
            "repro_broker_directory_misses_total", "Directory lookups that missed")
        self._m_invalidations = metrics.counter(
            "repro_broker_directory_invalidations_total",
            "Directory entries dropped before expiry, by reason")
        self._m_evictions = metrics.counter(
            "repro_broker_directory_evictions_total",
            "Directory entries lazily expired at lookup time")
        # Surface the eviction series at zero: a fleet with no expiries
        # should still render the counter (e.g. `--metrics -` tables), so
        # "no evictions" is distinguishable from "not instrumented".
        self._m_evictions.inc(0)
        self._m_warm_hits = metrics.counter(
            "repro_broker_directory_warm_hits_total",
            "Directory hits served by preloaded (warm-snapshot) entries")
        self._m_entries = metrics.gauge(
            "repro_broker_directory_entries_count", "Live directory entries")

    def _key(self, client_site: str, provider_name: str,
             size_bytes: int) -> Tuple[str, str, str]:
        return (client_site, provider_name,
                size_class(size_bytes, self.config.size_class_edges_mb))

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    @property
    def warm_hit_ratio(self) -> float:
        """Fraction of all lookups served by preloaded (warm) entries."""
        looked = self.hits + self.misses
        return self.warm_hits / looked if looked else 0.0

    def lookup(self, client_site: str, provider_name: str,
               size_bytes: int) -> Optional[DirectoryEntry]:
        """The live cached recommendation, or None (counted as a miss)."""
        key = self._key(client_site, provider_name, size_bytes)
        entry = self._entries.get(key)
        now = self.world.sim.now
        if entry is not None and now >= entry.expires_s:
            del self._entries[key]
            self._warm_keys.discard(key)
            self.evictions += 1
            self._m_evictions.inc(client=client_site, provider=provider_name)
            self._m_entries.set(len(self._entries))
            self.world.tracer.emit(now, "broker.directory", "entry_expired",
                                   client=client_site, provider=provider_name,
                                   size_class=key[2], route=entry.route_descr)
            entry = None
        if entry is None:
            self.misses += 1
            self._m_misses.inc(client=client_site, provider=provider_name)
            return None
        self.hits += 1
        self._m_hits.inc(client=client_site, provider=provider_name)
        if key in self._warm_keys:
            self.warm_hits += 1
            self._m_warm_hits.inc(client=client_site, provider=provider_name)
        return entry

    def peek(self, client_site: str, provider_name: str,
             size_bytes: int) -> Optional[DirectoryEntry]:
        """Like :meth:`lookup` but off the books: no eviction, no counters.

        The broker's report path uses it to see what a cohort is being
        told without perturbing the hit-rate accounting.
        """
        key = self._key(client_site, provider_name, size_bytes)
        entry = self._entries.get(key)
        if entry is not None and self.world.sim.now >= entry.expires_s:
            return None
        return entry

    def install(self, client_site: str, provider_name: str, size_bytes: int,
                route_descr: str, source: str) -> DirectoryEntry:
        """Cache a recommendation; replaces any entry under the same key."""
        key = self._key(client_site, provider_name, size_bytes)
        now = self.world.sim.now
        entry = DirectoryEntry(
            client_site=client_site,
            provider_name=provider_name,
            size_class=key[2],
            route_descr=route_descr,
            installed_s=now,
            expires_s=now + self.config.ttl_s,
            source=source,
        )
        self._entries[key] = entry
        self._warm_keys.discard(key)
        self._m_entries.set(len(self._entries))
        self.world.tracer.emit(now, "broker.directory", "entry_installed",
                               client=client_site, provider=provider_name,
                               size_class=key[2], route=route_descr,
                               source=source)
        return entry

    def _drop(self, keys: List[Tuple[str, str, str]], reason: str) -> int:
        for key in keys:
            del self._entries[key]
            self._warm_keys.discard(key)
        if keys:
            self.invalidations += len(keys)
            self._m_invalidations.inc(len(keys), reason=reason)
            self._m_entries.set(len(self._entries))
            self.world.tracer.emit(self.world.sim.now, "broker.directory",
                                   "invalidated", reason=reason,
                                   entries=len(keys))
        return len(keys)

    def invalidate_entry(self, client_site: str, provider_name: str,
                         size_bytes: int, reason: str = "superseded") -> int:
        """Drop one cohort's entry (fresh evidence dethroned its route)."""
        key = self._key(client_site, provider_name, size_bytes)
        return self._drop([key] if key in self._entries else [], reason)

    def invalidate_route(self, route_descr: str, reason: str = "dead_route") -> int:
        """Drop every entry recommending *route_descr*; returns the count."""
        doomed = [k for k, e in self._entries.items()
                  if e.route_descr == route_descr]
        return self._drop(doomed, reason)

    def invalidate_pair_direct(self, client_site: str, provider_name: str,
                               reason: str = "policy_anomaly") -> int:
        """Drop the pair's *direct* entries (an anomalous forwarding path)."""
        doomed = [k for k, e in self._entries.items()
                  if k[0] == client_site and k[1] == provider_name
                  and e.route_descr == "direct"]
        return self._drop(doomed, reason)

    def entries(self) -> List[DirectoryEntry]:
        """Live entries in deterministic key order."""
        return [self._entries[k] for k in sorted(self._entries)]

    # -- the snapshot protocol (shared-directory serving) ------------------

    def snapshot(self) -> DirectorySnapshot:
        """Serialize the live entries (deterministic key order).

        Entries are exported verbatim — sim times included — so a
        snapshot published by one fleet world can warm another on the
        same fleet timeline and still merge freshest-wins correctly.
        """
        return DirectorySnapshot(tuple(self.entries()))

    def preload(self, snapshot: DirectorySnapshot) -> Tuple[int, int]:
        """Warm the directory from a snapshot; ``(loaded, stale)`` counts.

        Entries already expired at the current sim time are skipped (and
        counted as *stale*); the rest are installed verbatim under their
        recorded ``installed_s`` / ``expires_s`` and flagged as the warm
        tier, so subsequent hits can be attributed to the snapshot.  An
        entry's cohort key is taken from its recorded ``size_class`` —
        the snapshot and this directory must share the same class edges,
        which the broker's config identity guarantees.
        """
        now = self.world.sim.now
        loaded = stale = 0
        for entry in snapshot.entries:
            if now >= entry.expires_s:
                stale += 1
                continue
            self._entries[entry.cohort] = entry
            self._warm_keys.add(entry.cohort)
            loaded += 1
        if loaded:
            self._m_entries.set(len(self._entries))
        self.world.tracer.emit(now, "broker.directory", "warmed",
                               loaded=loaded, stale=stale)
        return loaded, stale
