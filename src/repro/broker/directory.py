"""The route directory: a TTL'd recommendation cache with invalidation.

The directory is the broker's serving tier.  A lookup is O(1) on
``(client site, provider, size class)``; a hit returns the cached route
without touching the network, a miss sends the caller back to the shared
history estimates (and the resulting recommendation is installed, so the
next client in the same cohort hits).

Entries leave the directory three ways, mirroring how real control
planes lose confidence in cached answers:

* **expiry** — every entry carries ``installed_s + ttl_s``; lookups
  lazily evict entries past their deadline,
* **dead-route invalidation** — a :class:`~repro.core.monitor.BottleneckMonitor`
  dead-route event drops every entry recommending that route,
* **policy-anomaly invalidation** — a ``routeviews`` control/forwarding
  divergence on a client's direct path drops that pair's direct entries,
* **supersession** — a transfer report that dethrones the cached route in
  the shared history drops that one cohort's entry early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.world import World
from repro.errors import BrokerError
from repro.units import mb

from repro.broker.config import BrokerConfig

__all__ = ["size_class", "DirectoryEntry", "RouteDirectory"]


def size_class(size_bytes: int, edges_mb: Tuple[float, ...]) -> str:
    """Bucket an upload size into the directory's class label.

    Labels are human-readable and stable: ``"le8MB"``, ``"le64MB"``,
    ``"gt64MB"`` for the default edges.
    """
    if size_bytes <= 0:
        raise BrokerError("size must be positive")
    for edge in edges_mb:
        if size_bytes <= mb(edge):
            return f"le{edge:g}MB"
    return f"gt{edges_mb[-1]:g}MB"


@dataclass(frozen=True)
class DirectoryEntry:
    """One cached recommendation."""

    client_site: str
    provider_name: str
    size_class: str
    route_descr: str
    #: Sim time the entry was installed (drives the staleness metric).
    installed_s: float
    #: Sim time past which lookups treat the entry as gone.
    expires_s: float
    #: What produced the recommendation: "probe" | "history".
    source: str

    def age_s(self, now: float) -> float:
        return now - self.installed_s


class RouteDirectory:
    """TTL'd recommendation cache keyed by (client, provider, size class)."""

    def __init__(self, world: World, config: Optional[BrokerConfig] = None):
        self.world = world
        self.config = config if config is not None else BrokerConfig()
        self._entries: Dict[Tuple[str, str, str], DirectoryEntry] = {}
        #: plain counters (not just metrics) so fleet results stay
        #: self-contained even with the registry disabled
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        metrics = world.metrics
        self._m_hits = metrics.counter(
            "repro_broker_directory_hits_total", "Directory lookups served from cache")
        self._m_misses = metrics.counter(
            "repro_broker_directory_misses_total", "Directory lookups that missed")
        self._m_invalidations = metrics.counter(
            "repro_broker_directory_invalidations_total",
            "Directory entries dropped before expiry, by reason")
        self._m_entries = metrics.gauge(
            "repro_broker_directory_entries_count", "Live directory entries")

    def _key(self, client_site: str, provider_name: str,
             size_bytes: int) -> Tuple[str, str, str]:
        return (client_site, provider_name,
                size_class(size_bytes, self.config.size_class_edges_mb))

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def lookup(self, client_site: str, provider_name: str,
               size_bytes: int) -> Optional[DirectoryEntry]:
        """The live cached recommendation, or None (counted as a miss)."""
        key = self._key(client_site, provider_name, size_bytes)
        entry = self._entries.get(key)
        now = self.world.sim.now
        if entry is not None and now >= entry.expires_s:
            del self._entries[key]
            self._m_entries.set(len(self._entries))
            self.world.tracer.emit(now, "broker.directory", "entry_expired",
                                   client=client_site, provider=provider_name,
                                   size_class=key[2], route=entry.route_descr)
            entry = None
        if entry is None:
            self.misses += 1
            self._m_misses.inc(client=client_site, provider=provider_name)
            return None
        self.hits += 1
        self._m_hits.inc(client=client_site, provider=provider_name)
        return entry

    def peek(self, client_site: str, provider_name: str,
             size_bytes: int) -> Optional[DirectoryEntry]:
        """Like :meth:`lookup` but off the books: no eviction, no counters.

        The broker's report path uses it to see what a cohort is being
        told without perturbing the hit-rate accounting.
        """
        key = self._key(client_site, provider_name, size_bytes)
        entry = self._entries.get(key)
        if entry is not None and self.world.sim.now >= entry.expires_s:
            return None
        return entry

    def install(self, client_site: str, provider_name: str, size_bytes: int,
                route_descr: str, source: str) -> DirectoryEntry:
        """Cache a recommendation; replaces any entry under the same key."""
        key = self._key(client_site, provider_name, size_bytes)
        now = self.world.sim.now
        entry = DirectoryEntry(
            client_site=client_site,
            provider_name=provider_name,
            size_class=key[2],
            route_descr=route_descr,
            installed_s=now,
            expires_s=now + self.config.ttl_s,
            source=source,
        )
        self._entries[key] = entry
        self._m_entries.set(len(self._entries))
        self.world.tracer.emit(now, "broker.directory", "entry_installed",
                               client=client_site, provider=provider_name,
                               size_class=key[2], route=route_descr,
                               source=source)
        return entry

    def _drop(self, keys: List[Tuple[str, str, str]], reason: str) -> int:
        for key in keys:
            del self._entries[key]
        if keys:
            self.invalidations += len(keys)
            self._m_invalidations.inc(len(keys), reason=reason)
            self._m_entries.set(len(self._entries))
            self.world.tracer.emit(self.world.sim.now, "broker.directory",
                                   "invalidated", reason=reason,
                                   entries=len(keys))
        return len(keys)

    def invalidate_entry(self, client_site: str, provider_name: str,
                         size_bytes: int, reason: str = "superseded") -> int:
        """Drop one cohort's entry (fresh evidence dethroned its route)."""
        key = self._key(client_site, provider_name, size_bytes)
        return self._drop([key] if key in self._entries else [], reason)

    def invalidate_route(self, route_descr: str, reason: str = "dead_route") -> int:
        """Drop every entry recommending *route_descr*; returns the count."""
        doomed = [k for k, e in self._entries.items()
                  if e.route_descr == route_descr]
        return self._drop(doomed, reason)

    def invalidate_pair_direct(self, client_site: str, provider_name: str,
                               reason: str = "policy_anomaly") -> int:
        """Drop the pair's *direct* entries (an anomalous forwarding path)."""
        doomed = [k for k, e in self._entries.items()
                  if k[0] == client_site and k[1] == provider_name
                  and e.route_descr == "direct"]
        return self._drop(doomed, reason)

    def entries(self) -> List[DirectoryEntry]:
        """Live entries in deterministic key order."""
        return [self._entries[k] for k in sorted(self._entries)]
