"""Fleet execution: a population schedule driven through the broker.

``FleetRunner`` plays an :class:`~repro.workloads.UploadSchedule` inside
one world, one kernel process per upload.  Three policies:

* ``"direct"`` — every upload takes its direct route.  This mode is
  *broker-off bit-identical*: it performs exactly the kernel operations
  of a plain schedule loop, so a world that never imported
  ``repro.broker`` renders the same numbers (pinned by a tier-1 test).
* ``"static:<route>"`` — one fixed route for the whole fleet (clients
  for whom it would be a self-detour fall back to direct).
* ``"broker"`` — each upload asks the :class:`~repro.broker.service.DetourBroker`
  at its start time and reports its realized duration back.

``score_fleet`` computes the regret of each policy against the per-upload
oracle (the best duration any compared policy achieved for that upload).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import zip_longest
from typing import (Dict, Iterable, List, Mapping, Optional, Sequence, Tuple,
                    Union)

from repro.core.executor import PlanExecutor
from repro.core.routes import DirectRoute, Route, TransferPlan
from repro.core.world import World
from repro.errors import BrokerError
from repro.sim.kernel import AllOf
from repro.workloads.generator import UploadSchedule, fleet_population_schedule

from repro.broker.config import BrokerConfig
from repro.broker.service import DetourBroker, Recommendation

__all__ = ["FleetUploadRecord", "FleetResult", "FleetRunner", "run_fleet",
           "FleetScore", "parse_mode", "score_fleet"]


@dataclass(frozen=True)
class FleetUploadRecord:
    """One realized upload of a fleet run."""

    index: int
    client_site: str
    provider_name: str
    size_bytes: int
    start_s: float
    route_descr: str
    #: "directory" | "history" | "default" (broker mode), or the policy
    #: name ("direct" / "static") otherwise.
    source: str
    spilled: bool
    staleness_s: float
    duration_s: float


@dataclass(frozen=True)
class FleetResult:
    """Everything one fleet run produced, in schedule order."""

    mode: str
    seed: int
    records: Tuple[FleetUploadRecord, ...]
    probes_issued: int
    directory_hits: int
    directory_misses: int
    admission_spills: int
    #: lazy TTL expiries the directory observed during the run
    directory_evictions: int = 0

    @property
    def durations_s(self) -> Tuple[float, ...]:
        return tuple(r.duration_s for r in self.records)

    @property
    def mean_transfer_s(self) -> float:
        return sum(self.durations_s) / len(self.records)

    @property
    def hit_rate(self) -> float:
        looked = self.directory_hits + self.directory_misses
        return self.directory_hits / looked if looked else 0.0

    @property
    def probes_per_upload(self) -> float:
        return self.probes_issued / len(self.records)

    def to_dict(self) -> Dict[str, object]:
        """Canonical (JSON-able) view; equal dicts == bit-identical runs."""
        return {
            "mode": self.mode,
            "seed": self.seed,
            "probes_issued": self.probes_issued,
            "directory_hits": self.directory_hits,
            "directory_misses": self.directory_misses,
            "directory_evictions": self.directory_evictions,
            "admission_spills": self.admission_spills,
            "uploads": [
                {
                    "index": r.index,
                    "client": r.client_site,
                    "provider": r.provider_name,
                    "size_bytes": r.size_bytes,
                    "start_s": r.start_s,
                    "route": r.route_descr,
                    "source": r.source,
                    "spilled": r.spilled,
                    "staleness_s": r.staleness_s,
                    "duration_s": r.duration_s,
                }
                for r in self.records
            ],
        }


def parse_mode(mode: str) -> Tuple[str, Optional[str]]:
    """``"broker" | "direct" | "static:<route>"`` -> (kind, static route)."""
    if mode in ("broker", "direct"):
        return mode, None
    if mode.startswith("static:"):
        descr = mode.split(":", 1)[1].strip()
        if not descr:
            raise BrokerError("static mode needs a route, e.g. 'static:via umich'")
        return "static", descr
    raise BrokerError(
        f"unknown fleet mode {mode!r}; have: 'broker', 'direct', 'static:<route>'")


#: Backwards-compatible private alias (pre-shard callers).
_parse_mode = parse_mode


class FleetRunner:
    """Drive one upload schedule through one policy inside one world."""

    def __init__(self, world: World, schedule: UploadSchedule,
                 mode: str = "broker", broker: Optional[DetourBroker] = None):
        if not schedule.uploads:
            raise BrokerError("fleet schedule is empty")
        self.kind, self.static_route = _parse_mode(mode)
        if self.kind == "broker" and broker is None:
            raise BrokerError("broker mode needs a DetourBroker instance")
        if self.kind != "broker" and broker is not None:
            raise BrokerError(f"mode {mode!r} must not carry a broker")
        self.world = world
        self.schedule = schedule
        self.mode = mode
        self.broker = broker
        self._m_uploads = world.metrics.counter(
            "repro_broker_fleet_uploads_total", "Fleet uploads completed")
        self._m_transfer = world.metrics.histogram(
            "repro_broker_fleet_transfer_seconds", "Realized upload durations")
        self._m_bytes = world.metrics.counter(
            "repro_broker_fleet_payload_bytes_total",
            "Fleet upload payload bytes by client site")
        self._m_source = world.metrics.counter(
            "repro_broker_fleet_route_source_total",
            "Route recommendations by decision source")

    def _recommend(self, upload) -> Recommendation:
        if self.kind == "broker":
            return self.broker.recommend(upload.client_site,
                                         upload.provider_name,
                                         upload.file.size_bytes)
        if self.kind == "static":
            from repro.campaign.spec import route_from_string

            route: Route = route_from_string(self.static_route)
            if route.via == upload.client_site:
                route = DirectRoute()
            return Recommendation(route, "static", False, 0.0)
        return Recommendation(DirectRoute(), "direct", False, 0.0)

    def run(self, horizon_s: float = 1e7) -> FleetResult:
        """Execute the whole schedule; returns the ordered records."""
        world = self.world
        executor = PlanExecutor(world)
        uploads = self.schedule.uploads
        records: List[Optional[FleetUploadRecord]] = [None] * len(uploads)

        def one(index: int, upload):
            delay = upload.start_s - world.sim.now
            if delay > 0:
                yield delay
            rec = self._recommend(upload)
            plan = TransferPlan(upload.client_site, upload.provider_name,
                                upload.file, rec.route)
            result = yield from executor.execute(plan)
            duration = result.total_s
            if self.broker is not None:
                self.broker.report(upload.client_site, upload.provider_name,
                                   rec.route, upload.file.size_bytes, duration)
            self._m_uploads.inc(mode=self.kind, site=upload.client_site)
            self._m_transfer.observe(duration, mode=self.kind,
                                     site=upload.client_site)
            self._m_bytes.inc(upload.file.size_bytes, site=upload.client_site)
            self._m_source.inc(source=rec.source)
            records[index] = FleetUploadRecord(
                index=index,
                client_site=upload.client_site,
                provider_name=upload.provider_name,
                size_bytes=upload.file.size_bytes,
                start_s=upload.start_s,
                route_descr=rec.route.describe(),
                source=rec.source,
                spilled=rec.spilled,
                staleness_s=rec.staleness_s,
                duration_s=duration,
            )

        if self.broker is not None:
            self.broker.start()
        procs = [world.sim.process(one(i, u), name=f"fleet:{i}")
                 for i, u in enumerate(uploads)]

        def drive():
            yield AllOf(procs)

        driver = world.sim.process(drive(), name="fleet-drive")
        world.sim.run_until_triggered(driver.done, horizon=horizon_s)
        if not driver.finished:
            done = sum(1 for r in records if r is not None)
            raise BrokerError(
                f"fleet did not finish within {horizon_s:g}s of sim time "
                f"({done}/{len(uploads)} uploads done)")
        for proc in procs:
            if proc.error is not None:
                raise proc.error
        if self.broker is not None:
            probes = self.broker.probes_issued
            hits = self.broker.directory.hits
            misses = self.broker.directory.misses
            spills = self.broker.admission.spills
            evictions = self.broker.directory.evictions
        else:
            probes = hits = misses = spills = evictions = 0
        return FleetResult(
            mode=self.mode,
            seed=world.seed,
            records=tuple(records),
            probes_issued=probes,
            directory_hits=hits,
            directory_misses=misses,
            admission_spills=spills,
            directory_evictions=evictions,
        )


def run_fleet(
    seed: int,
    sites: Sequence[str],
    provider: str = "gdrive",
    n_uploads_per_site: int = 20,
    mean_interarrival_s: float = 60.0,
    mean_size_mb: float = 40.0,
    size_dist: str = "lognormal",
    mode: str = "broker",
    config: Optional[BrokerConfig] = None,
    cross_traffic: bool = True,
    metrics=False,
    profile=False,
    schedule_seed: Optional[int] = None,
    horizon_s: float = 1e7,
    topo=None,
    cache_dir: Optional[str] = None,
) -> FleetResult:
    """Build a world + fleet schedule and run one policy.

    By default the world is the calibrated case study; passing a
    :class:`~repro.topo.spec.TopoSpec` as *topo* runs the fleet on that
    (typically generated) world instead, compiled through
    :func:`~repro.topo.materialize.compile_spec` — with routes served
    from *cache_dir* when given.  Generated worlds carry no calibrated
    cross-traffic sources, so *cross_traffic* only applies to the
    default world.

    ``schedule_seed`` decouples the workload from the world (defaults to
    *seed*, so one number reproduces the whole run).  ``metrics`` and
    ``profile`` take a bool or a prebuilt registry/profiler, exactly as
    :func:`~repro.testbed.build.build_case_study` does.
    """
    if topo is not None:
        from repro.topo.materialize import compile_spec, materialize

        compiled = compile_spec(topo, cache_dir=cache_dir, routes=True)
        world = materialize(compiled, seed=seed, metrics=metrics,
                            profile=profile)
    else:
        from repro.testbed.build import build_case_study

        world = build_case_study(seed=seed, cross_traffic=cross_traffic,
                                 metrics=metrics, profile=profile,
                                 cache_dir=cache_dir)
    unknown = sorted(set(sites) - set(world.hosts))
    if unknown:
        raise BrokerError(
            f"fleet sites not in the world's host map: {unknown[:5]} "
            f"(world has {len(world.hosts)} hosts)")
    schedule = fleet_population_schedule(
        tuple(sites), provider, n_uploads_per_site, mean_interarrival_s,
        mean_size_mb, seed=schedule_seed if schedule_seed is not None else seed,
        size_dist=size_dist)
    broker = None
    if _parse_mode(mode)[0] == "broker":
        broker = DetourBroker(world, pairs=[(c, provider) for c in sites],
                              config=config)
    return FleetRunner(world, schedule, mode=mode, broker=broker).run(horizon_s)


@dataclass(frozen=True)
class FleetScore:
    """Cross-policy comparison over one shared schedule."""

    n_uploads: int
    oracle_mean_s: float
    #: mode -> (mean transfer seconds, mean regret seconds vs the oracle)
    by_mode: Dict[str, Tuple[float, float]]
    #: (mode, site) -> (mean transfer seconds, mean regret seconds); the
    #: per-site rollup of the same oracle comparison.
    by_site: Dict[Tuple[str, str], Tuple[float, float]] = field(
        default_factory=dict)

    def render(self, per_site: bool = False) -> str:
        lines = [f"fleet of {self.n_uploads} uploads; "
                 f"per-upload oracle mean {self.oracle_mean_s:.2f}s"]
        width = max(len(m) for m in self.by_mode)
        for mode in sorted(self.by_mode):
            mean_s, regret_s = self.by_mode[mode]
            lines.append(f"  {mode:<{width}}  mean {mean_s:9.2f}s  "
                         f"regret {regret_s:8.2f}s")
            if per_site:
                for (m, site) in sorted(self.by_site):
                    if m != mode:
                        continue
                    s_mean, s_regret = self.by_site[(m, site)]
                    lines.append(f"    {site:<{width - 2}}  "
                                 f"mean {s_mean:9.2f}s  "
                                 f"regret {s_regret:8.2f}s")
        return "\n".join(lines)

    def to_metrics(self, registry) -> None:
        """Publish the rollup as ``repro_broker_fleet_*`` gauges.

        Per-policy series carry a ``mode`` label; the per-site breakdown
        adds a ``site`` label, so the existing Prometheus/JSONL exporters
        ship both granularities from one registry.
        """
        oracle = registry.gauge(
            "repro_broker_fleet_oracle_mean_seconds",
            "Mean per-upload oracle duration across compared policies")
        mean_g = registry.gauge(
            "repro_broker_fleet_mean_transfer_seconds",
            "Mean realized upload duration per policy (and per site)")
        regret_g = registry.gauge(
            "repro_broker_fleet_regret_mean_seconds",
            "Mean per-upload regret vs the oracle per policy (and per site)")
        oracle.set(self.oracle_mean_s)
        for mode in sorted(self.by_mode):
            mean_s, regret_s = self.by_mode[mode]
            mean_g.set(mean_s, mode=mode)
            regret_g.set(regret_s, mode=mode)
        for (mode, site) in sorted(self.by_site):
            mean_s, regret_s = self.by_site[(mode, site)]
            mean_g.set(mean_s, mode=mode, site=site)
            regret_g.set(regret_s, mode=mode, site=site)


#: ``score_fleet`` accepts full results or bare per-mode record streams.
FleetRecords = Union[FleetResult, Iterable[FleetUploadRecord]]


def score_fleet(results: Mapping[str, FleetRecords]) -> FleetScore:
    """Score policies that ran the *same* schedule against each other.

    The oracle for upload *i* is the fastest duration any compared policy
    realized for it; a policy's regret is its mean excess over that
    oracle.  (An oracle over policies, not over routes — contention makes
    a true per-route oracle schedule-dependent.)  The per-site rollup
    restricts both aggregates to each client site's own uploads.

    Each mapping value is either a :class:`FleetResult` or any iterable
    of :class:`FleetUploadRecord` — including a one-shot generator: the
    scorer makes a single index-aligned pass and accumulates per-mode and
    per-site sums as it goes, so a million-upload fleet streams through
    in O(modes x sites) memory without the records ever being
    materialized as a list.
    """
    if not results:
        raise BrokerError("score_fleet needs at least one result")
    modes = sorted(results)
    streams = [iter(getattr(results[m], "records", results[m]))
               for m in modes]
    n = 0
    oracle_sum = 0.0
    #: mode -> [duration sum, regret sum]; accumulated in upload order,
    #: matching the summation order of the materialized-list scorer.
    mode_acc: Dict[str, List[float]] = {m: [0.0, 0.0] for m in modes}
    #: (mode, site) -> [duration sum, regret sum, uploads]
    site_acc: Dict[Tuple[str, str], List[float]] = {}
    for row in zip_longest(*streams, fillvalue=None):
        if any(rec is None for rec in row):
            raise BrokerError("fleet results disagree on upload count")
        oracle = min(rec.duration_s for rec in row)
        oracle_sum += oracle
        n += 1
        for mode, rec in zip(modes, row):
            acc = mode_acc[mode]
            acc[0] += rec.duration_s
            acc[1] += rec.duration_s - oracle
            cell = site_acc.setdefault((mode, rec.client_site),
                                       [0.0, 0.0, 0.0])
            cell[0] += rec.duration_s
            cell[1] += rec.duration_s - oracle
            cell[2] += 1.0
    if n == 0:
        raise BrokerError("fleet results are empty")
    by_mode = {m: (mode_acc[m][0] / n, mode_acc[m][1] / n) for m in modes}
    by_site = {key: (site_acc[key][0] / site_acc[key][2],
                     site_acc[key][1] / site_acc[key][2])
               for key in sorted(site_acc)}
    return FleetScore(n_uploads=n, oracle_mean_s=oracle_sum / n,
                      by_mode=by_mode, by_site=by_site)
