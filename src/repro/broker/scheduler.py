"""The budgeted background probe scheduler.

Per-transfer probing (the :class:`~repro.core.selection.ProbeSelector`
pattern) costs two probe transfers per route per upload — fine for one
scientist, ruinous for a fleet.  The broker amortizes instead: one
kernel process wakes every ``probe_interval_s``, ranks every
(client, provider, route) estimate by freshness, and refreshes only the
stalest few, never exceeding ``probes_per_wake`` per wake or
``max_probes`` overall.  Transfer reports from served clients refresh
the routes the fleet actually uses for free, so the probe budget is
spent almost entirely on the roads not taken.

Each wake also runs the ``routeviews`` control/forwarding-plane scan:
the first time a client's direct path to a provider diverges from its
BGP choice (the paper's Pacific Wave artifact), the pair's cached
direct-route entries are invalidated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.monitor import BottleneckMonitor
from repro.core.routes import Route
from repro.core.selection import HistorySelector, SelectionContext
from repro.core.world import World
from repro.net import detect_policy_anomalies
from repro.units import transfer_seconds

from repro.broker.config import BrokerConfig
from repro.broker.directory import RouteDirectory

__all__ = ["ProbeScheduler"]


class ProbeScheduler:
    """Background kernel process refreshing the stalest route estimates."""

    def __init__(
        self,
        world: World,
        pairs: Sequence[Tuple[str, str]],
        vias: Dict[str, Tuple[str, ...]],
        history: HistorySelector,
        monitors: Dict[Tuple[str, str], BottleneckMonitor],
        directory: RouteDirectory,
        config: Optional[BrokerConfig] = None,
    ):
        self.world = world
        self.pairs = tuple(pairs)
        self.vias = vias
        self.history = history
        self.monitors = monitors
        self.directory = directory
        self.config = config if config is not None else BrokerConfig()
        self.probes_issued = 0
        self.wakes = 0
        #: (client, provider) pairs whose direct path already tripped the
        #: anomaly detector (insertion-ordered; invalidate only on onset)
        self._anomalous_pairs: Dict[Tuple[str, str], bool] = {}
        self._m_probes = world.metrics.counter(
            "repro_broker_probes_total", "Background probes issued by the scheduler")
        self._m_wakes = world.metrics.counter(
            "repro_broker_scheduler_wakes_total", "Scheduler wake-ups")
        self._m_anomalies = world.metrics.counter(
            "repro_broker_anomalies_total",
            "Policy anomalies newly detected by the wake-time scan")

    # -- probing ---------------------------------------------------------------

    def _ctx(self, client: str, provider: str) -> SelectionContext:
        return SelectionContext(self.world, client, provider,
                                self.config.probe_bytes, self.vias[client])

    def budget_left(self) -> bool:
        return (self.config.max_probes is None
                or self.probes_issued < self.config.max_probes)

    def _probe_one(self, client: str, provider: str, route: Route):
        """Coroutine: one probe; feeds the shared history. False = no budget."""
        if not self.budget_left():
            return False
        monitor = self.monitors[(client, provider)]
        observed_bps = yield from monitor.probe(route)
        self.probes_issued += 1
        self._m_probes.inc(client=client, provider=provider,
                           route=route.describe())
        if observed_bps > 0:
            duration_s = transfer_seconds(self.config.probe_bytes, observed_bps)
            self.history.update(self._ctx(client, provider), route,
                                self.config.probe_bytes, duration_s)
        # a dead probe already invalidated the directory through the
        # monitor's on_dead hook — nothing more to do here
        return True

    def warmup(self):
        """Coroutine: probe every (pair, route) once before serving."""
        for client, provider in self.pairs:
            for route in self.monitors[(client, provider)].routes():
                if not (yield from self._probe_one(client, provider, route)):
                    return

    # -- the background loop ---------------------------------------------------

    def _stale_candidates(self) -> List[Tuple[float, str, str, Route]]:
        """Every route estimate below the freshness bar, stalest first."""
        out: List[Tuple[float, str, str, Route]] = []
        for client, provider in self.pairs:
            ctx = self._ctx(client, provider)
            for route in self.monitors[(client, provider)].routes():
                freshness = self.history.freshness(ctx, route)
                if freshness < self.config.min_freshness:
                    out.append((freshness, client, provider, route))
        out.sort(key=lambda c: (c[0], c[1], c[2], c[3].describe()))
        return out

    def scan_anomalies(self) -> int:
        """Run the control/forwarding divergence scan; returns new anomalies."""
        fresh = 0
        for client, provider in self.pairs:
            if (client, provider) in self._anomalous_pairs:
                continue
            src_host = self.world.host_of(client)
            dst_host = self.world.provider(provider).frontend_for(
                self.world.dns, src_host)
            anomalies = detect_policy_anomalies(self.world.router,
                                                [src_host], dst_host)
            if anomalies:
                self._anomalous_pairs[(client, provider)] = True
                fresh += 1
                self._m_anomalies.inc(client=client, provider=provider)
                self.directory.invalidate_pair_direct(client, provider)
                self.world.tracer.emit(
                    self.world.sim.now, "broker.scheduler", "anomaly_detected",
                    client=client, provider=provider, dst=dst_host)
        return fresh

    def run(self):
        """The scheduler's kernel process body (runs until interrupted)."""
        while True:
            yield self.config.probe_interval_s
            self.wakes += 1
            self._m_wakes.inc()
            with self.world.spans.span("broker.scheduler", "wake",
                                       wake=self.wakes) as wake_span:
                if self.config.anomaly_scan:
                    self.scan_anomalies()
                issued = 0
                for _, client, provider, route in self._stale_candidates():
                    if issued >= self.config.probes_per_wake:
                        break
                    if not (yield from self._probe_one(client, provider, route)):
                        wake_span.annotate(budget_exhausted=True)
                        return
                    issued += 1
                wake_span.annotate(probes=issued)
