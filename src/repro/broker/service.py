"""The detour broker: one control plane serving a fleet of clients.

``DetourBroker`` wires the pieces together inside one :class:`World`:

* a shared :class:`~repro.core.selection.HistorySelector` (EWMA per
  (client, provider, route), with sim-clock staleness decay) fed by both
  scheduler probes and served clients' transfer reports,
* per-pair :class:`~repro.core.monitor.BottleneckMonitor` instances whose
  dead-route events invalidate the directory,
* the TTL'd :class:`~repro.broker.directory.RouteDirectory` serving tier,
* the budgeted :class:`~repro.broker.scheduler.ProbeScheduler` process,
* DTN load-aware :class:`~repro.broker.admission.AdmissionController`.

The serving path (:meth:`DetourBroker.recommend`) is pure bookkeeping —
no simulated time passes answering a query, matching a control plane
whose RPC latency is negligible next to a multi-minute upload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.monitor import BottleneckMonitor
from repro.core.routes import DirectRoute, Route
from repro.core.selection import HistorySelector, SelectionContext
from repro.core.world import World
from repro.errors import BrokerError
from repro.sim.kernel import Process

from repro.broker.admission import AdmissionController
from repro.broker.config import BrokerConfig
from repro.broker.directory import DirectorySnapshot, RouteDirectory
from repro.broker.scheduler import ProbeScheduler

__all__ = ["Recommendation", "DetourBroker"]


@dataclass(frozen=True)
class Recommendation:
    """One answer from the broker's serving path."""

    route: Route
    #: "directory" (cache hit), "history" (estimate-backed miss), or
    #: "default" (no usable information: direct).
    source: str
    #: True when DTN admission spilled a detour onto the direct route.
    spilled: bool
    #: Age (sim seconds) of the information backing the answer.
    staleness_s: float


class DetourBroker:
    """In-simulation detour-brokerage control plane."""

    def __init__(
        self,
        world: World,
        pairs: Optional[Sequence[Tuple[str, str]]] = None,
        config: Optional[BrokerConfig] = None,
        warm: Optional[DirectorySnapshot] = None,
    ):
        self.world = world
        self.config = config if config is not None else BrokerConfig()
        if pairs is None:
            pairs = [(c, p) for c in world.client_sites()
                     for p in sorted(world.providers)]
        if not pairs:
            raise BrokerError("broker needs at least one (client, provider) pair")
        self.pairs = tuple(pairs)
        #: candidate detour sites per client: every DTN site except itself
        self.vias: Dict[str, Tuple[str, ...]] = {}
        for client, _provider in self.pairs:
            self.vias.setdefault(
                client,
                tuple(v for v in sorted(world.dtns) if v != client))

        self.history = HistorySelector(
            alpha=self.config.history_alpha,
            epsilon=0.0,
            rng=world.rng.stream("broker.explore"),
            half_life_s=self.config.half_life_s,
            clock=lambda: world.sim.now,
            min_freshness=self.config.min_freshness,
        )
        self.directory = RouteDirectory(world, self.config)
        if warm is not None:
            # Warm the serving tier from a shared snapshot, restricted to
            # the pairs this broker actually serves: entries for foreign
            # cohorts would only distort the entries gauge and
            # invalidation counts without ever being looked up.
            self.directory.preload(warm.restricted(self.pairs))
        self.admission = AdmissionController(world, self.config)
        self.monitors: Dict[Tuple[str, str], BottleneckMonitor] = {}
        for client, provider in self.pairs:
            monitor = BottleneckMonitor(
                world, client, provider, self.vias[client],
                probe_bytes=self.config.probe_bytes)
            monitor.on_dead(self.directory.invalidate_route)
            self.monitors[(client, provider)] = monitor
        self.scheduler = ProbeScheduler(
            world, self.pairs, self.vias, self.history, self.monitors,
            self.directory, self.config)
        self._process: Optional[Process] = None

        metrics = world.metrics
        self._m_recommendations = metrics.counter(
            "repro_broker_recommendations_total",
            "Recommendations served, by information source")
        self._m_reports = metrics.counter(
            "repro_broker_reports_total", "Transfer outcomes reported back")
        self._m_staleness = metrics.histogram(
            "repro_broker_recommendation_staleness_seconds",
            "Age of the information backing each recommendation")
        self._m_hit_ratio = metrics.gauge(
            "repro_broker_directory_hit_ratio", "Directory hit rate so far")

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> Process:
        """Spawn the control plane's kernel process (warmup, then the loop)."""
        if self._process is not None:
            raise BrokerError("broker already started")

        def _main():
            if self.config.warmup:
                yield from self.scheduler.warmup()
            yield from self.scheduler.run()

        self._process = self.world.sim.process(_main(), name="broker")
        return self._process

    def stop(self) -> None:
        if self._process is not None and not self._process.finished:
            self._process.interrupt("broker stopped")

    @property
    def probes_issued(self) -> int:
        return self.scheduler.probes_issued

    # -- the serving path ------------------------------------------------------

    def _ctx(self, client: str, provider: str, size_bytes: int) -> SelectionContext:
        try:
            vias = self.vias[client]
        except KeyError:
            raise BrokerError(
                f"broker does not serve client {client!r}; pairs: "
                f"{sorted(set(c for c, _ in self.pairs))}") from None
        return SelectionContext(self.world, client, provider, size_bytes, vias)

    def _best_from_history(self, ctx: SelectionContext) -> Optional[Route]:
        """The freshest-informed fastest route, or None if nothing usable."""
        best: Optional[Route] = None
        best_est = float("inf")
        for route in ctx.routes():
            if self.history.freshness(ctx, route) < self.config.min_freshness:
                continue
            est = self.history.estimate_s(ctx, route)
            if est is not None and est > 0 and est < best_est:
                best, best_est = route, est
        return best

    def recommend(self, client_site: str, provider_name: str,
                  size_bytes: int) -> Recommendation:
        """Answer one client query (no simulated time passes)."""
        from repro.campaign.spec import route_from_string

        now = self.world.sim.now
        ctx = self._ctx(client_site, provider_name, size_bytes)
        entry = self.directory.lookup(client_site, provider_name, size_bytes)
        if entry is not None:
            route: Route = route_from_string(entry.route_descr)
            source = "directory"
            # Clamp: a warm-preloaded entry can carry an install time
            # ahead of this (fresh) world's clock; in-process entries are
            # always in the past, so the clamp never changes them.
            staleness_s = max(0.0, entry.age_s(now))
        else:
            best = self._best_from_history(ctx)
            if best is not None:
                route = best
                source = "history"
                updated = self.history.last_update_s(ctx, best)
                staleness_s = now - updated if updated is not None else 0.0
                self.directory.install(client_site, provider_name, size_bytes,
                                       route.describe(), source="history")
            else:
                route = DirectRoute()
                source = "default"
                staleness_s = 0.0
        if source != "default":
            self._m_staleness.observe(staleness_s)
        route, spilled = self.admission.admit(route)
        self._m_recommendations.inc(source=source,
                                    client=client_site, provider=provider_name)
        self._m_hit_ratio.set(self.directory.hit_ratio)
        return Recommendation(route=route, source=source, spilled=spilled,
                              staleness_s=staleness_s)

    def report(self, client_site: str, provider_name: str, route: Route,
               size_bytes: int, duration_s: float) -> None:
        """Feed a realized transfer outcome back into the shared history.

        If the new evidence dethrones the route the directory is serving
        this cohort, the cached entry is superseded (invalidated), so the
        next query re-derives from history instead of riding a refuted
        recommendation to the end of its TTL.
        """
        ctx = self._ctx(client_site, provider_name, size_bytes)
        self.history.update(ctx, route, size_bytes, duration_s)
        self._m_reports.inc(client=client_site, provider=provider_name,
                            route=route.describe())
        entry = self.directory.peek(client_site, provider_name, size_bytes)
        if entry is not None:
            best = self._best_from_history(ctx)
            if best is not None and best.describe() != entry.route_descr:
                self.directory.invalidate_entry(client_site, provider_name,
                                                size_bytes, reason="superseded")
