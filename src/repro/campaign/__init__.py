"""repro.campaign: parallel, cached, resumable experiment campaigns.

The four moving parts, one module each:

* :mod:`~repro.campaign.spec` — the declarative experiment matrix and
  the content-addressed cell identity (``CampaignSpec`` / ``CampaignCell``);
* :mod:`~repro.campaign.store` — the on-disk result store that makes
  campaigns resumable (``ResultStore`` / ``CellRecord``);
* :mod:`~repro.campaign.pool` — the per-cell worker pool with timeout,
  bounded retry, and quarantine (``PoolConfig`` / ``execute_cells``);
* :mod:`~repro.campaign.runner` — the orchestrator tying them together
  (``CampaignRunner``), plus :mod:`~repro.campaign.export` for the
  canonical JSON export.

This package is the **only** place in the tree allowed to use
``multiprocessing`` (lint rules SL501/SL502); everything inside a worker
is the ordinary single-process deterministic harness.
"""

from repro.campaign.export import export_campaign, export_records, load_export
from repro.campaign.pool import CellOutcome, PoolConfig, execute_cells
from repro.campaign.runner import CampaignResult, CampaignRunner, campaign_status
from repro.campaign.spec import CampaignCell, CampaignSpec, route_from_string
from repro.campaign.store import CellError, CellRecord, ResultStore
from repro.campaign.worker import run_cell

__all__ = [
    "CampaignCell",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CellError",
    "CellOutcome",
    "CellRecord",
    "PoolConfig",
    "ResultStore",
    "campaign_status",
    "execute_cells",
    "export_campaign",
    "export_records",
    "load_export",
    "route_from_string",
    "run_cell",
]
