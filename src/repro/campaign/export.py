"""Canonical JSON export of campaign results.

The export is a *deterministic function of the records*: cells appear in
spec order, keys are sorted, floats round-trip exactly, and nothing
schedule-dependent (timings, worker ids, completion order) is included.
That is the property the acceptance test pins: a ``--jobs 4`` run
exports **byte-identical** output to a ``--jobs 1`` run of the same
spec.  Error records ride along with the same shape as ok records
(``status``/``error`` fields), so quarantined cells survive the
round-trip.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional, Sequence

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CellRecord, ResultStore, record_from_dict, record_to_dict
from repro.errors import CampaignError

__all__ = ["export_records", "export_campaign", "load_export"]

EXPORT_FORMAT_VERSION = 1


def export_records(records: Sequence[CellRecord],
                   spec: Optional[CampaignSpec] = None) -> str:
    """Render records (already in spec order) as canonical JSON text."""
    doc: Dict[str, object] = {
        "format": "repro-campaign-export",
        "version": EXPORT_FORMAT_VERSION,
        "cells": [record_to_dict(r) for r in records],
    }
    if spec is not None:
        doc["spec"] = spec.describe()
    return json.dumps(doc, sort_keys=True, indent=1) + "\n"


def export_campaign(spec: CampaignSpec, store: ResultStore, fp: IO[str]) -> int:
    """Export every stored cell of *spec*, in spec order; returns the count.

    Cells not yet in the store are simply absent from the export (use
    ``campaign status`` to see what is missing); a partially-run campaign
    still exports cleanly.
    """
    records = []
    for cell in spec.expand():
        rec = store.get(cell)
        if rec is not None:
            records.append(rec)
    fp.write(export_records(records, spec))
    return len(records)


def load_export(fp: IO[str]) -> List[CellRecord]:
    """Parse an export back into records (the round-trip inverse)."""
    try:
        doc = json.load(fp)
    except json.JSONDecodeError as exc:
        raise CampaignError(f"bad campaign export: {exc}") from exc
    if doc.get("format") != "repro-campaign-export":
        raise CampaignError("not a repro-campaign-export document")
    if doc.get("version") != EXPORT_FORMAT_VERSION:
        raise CampaignError(
            f"unsupported export version {doc.get('version')!r}")
    return [record_from_dict(d) for d in doc["cells"]]
