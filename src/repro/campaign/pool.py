"""Worker pool: cells out, deterministic-order outcomes back.

The only module in the tree allowed to import ``multiprocessing`` (the
SL501 lint rule pins this): workers must never nest pools, and model
code must stay single-process deterministic.

Scheduling model — one short-lived process per cell, at most ``jobs``
alive at once.  That costs a fork per cell but buys three properties a
shared ``multiprocessing.Pool`` cannot give cheaply:

* a **per-cell timeout** that actually kills the offender (``terminate``)
  instead of abandoning a busy pool worker,
* **quarantine** — a crashed or timed-out child affects exactly one
  cell's record, never its neighbours,
* **no shared mutable state** between cells, so parallel execution
  cannot perturb results (each cell is its own seeded world anyway).

Timeouts and retries are *wall-clock* concepts: this is orchestration
code outside the simulation, the one place (besides ``repro.obs.profile``)
where reading real time is sanctioned.  Outcomes are always returned in
input order, regardless of completion order.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.spec import CampaignCell
from repro.campaign.store import CRASH_KIND, TIMEOUT_KIND, CellError
from repro.campaign.worker import child_main, run_cell_payload
from repro.errors import CampaignError
from repro.measure.harness import Measurement
from repro.obs.metrics import MetricSample
from repro.obs.telemetry import TelemetryEvent, TelemetrySink, as_sink

__all__ = ["PoolConfig", "CellOutcome", "execute_cells"]

#: Parent poll interval while waiting on children (wall-clock seconds).
_POLL_S = 0.02


@dataclass(frozen=True)
class PoolConfig:
    """How cells are executed: parallelism, per-attempt timeout, retries."""

    jobs: int = 1
    #: Wall-clock budget per attempt; None = unbounded.  Enforced only
    #: when ``jobs > 1`` (killing a timed-out cell needs a subprocess),
    #: and strictly: an attempt whose deadline passed is a timeout even
    #: if its result arrived before the parent noticed.
    timeout_s: Optional[float] = None
    #: Extra attempts after a crash or timeout (deterministic model
    #: exceptions are quarantined immediately — retrying cannot help).
    retries: int = 1

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise CampaignError(f"jobs must be >= 1, got {self.jobs}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise CampaignError(f"timeout must be positive, got {self.timeout_s}")
        if self.retries < 0:
            raise CampaignError(f"retries must be >= 0, got {self.retries}")


@dataclass(frozen=True)
class CellOutcome:
    """In-memory result of executing one cell (pre-store)."""

    cell: CampaignCell
    status: str  # "ok" | "error"
    measurement: Optional[Measurement]
    error: Optional[CellError]
    attempts: int
    metric_samples: Tuple[MetricSample, ...]
    #: Worker-measured wall time of the final attempt; telemetry only,
    #: never stored (records must not vary with host speed).
    wall_s: float = 0.0


def _decode(cell: CampaignCell, payload: dict, attempts: int) -> CellOutcome:
    """Payload dict (from the serial path or a child process) -> outcome."""
    from repro.campaign.store import measurement_from_dict

    samples = tuple(MetricSample.from_dict(d) for d in payload.get("metrics", ()))
    wall_s = payload.get("wall_s", 0.0)
    if payload["status"] == "ok":
        return CellOutcome(cell, "ok", measurement_from_dict(payload["measurement"]),
                           None, attempts, samples, wall_s)
    err = payload["error"]
    return CellOutcome(cell, "error", None, CellError(err["kind"], err["message"]),
                       attempts, samples, wall_s)


def _finished_event(outcome: CellOutcome, index: int, queue_depth: int,
                    running: int, worker: int = 0) -> TelemetryEvent:
    return TelemetryEvent(
        "cell_finished", outcome.cell.describe(), index,
        attempt=outcome.attempts, status=outcome.status,
        error_kind=outcome.error.kind if outcome.error is not None else "",
        wall_s=outcome.wall_s, queue_depth=queue_depth, running=running,
        worker=worker)


def _execute_serial(cells: Sequence[CampaignCell],
                    sink: Optional[TelemetrySink] = None) -> List[CellOutcome]:
    outcomes: List[CellOutcome] = []
    for i, cell in enumerate(cells):
        left = len(cells) - i - 1
        if sink is not None:
            sink(TelemetryEvent("cell_started", cell.describe(), i,
                                queue_depth=left, running=1))
        outcome = _decode(cell, run_cell_payload(cell), attempts=1)
        if sink is not None:
            sink(_finished_event(outcome, i, queue_depth=left, running=0))
        outcomes.append(outcome)
    return outcomes


class _Running:
    """Bookkeeping for one in-flight child process."""

    def __init__(self, ctx, index: int, cell: CampaignCell, attempt: int,
                 timeout_s: Optional[float]):
        self.index = index
        self.cell = cell
        self.attempt = attempt
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        self.conn = parent_conn
        self.proc = ctx.Process(target=child_main, args=(child_conn, cell),
                                daemon=True)
        self.proc.start()
        child_conn.close()  # the parent's copy; the child holds its own
        self.deadline = (None if timeout_s is None
                         else time.monotonic() + timeout_s)

    def reap(self) -> None:
        self.conn.close()
        self.proc.join()

    def kill(self) -> None:
        self.proc.terminate()
        self.reap()


def _execute_parallel(cells: Sequence[CampaignCell],
                      config: PoolConfig,
                      sink: Optional[TelemetrySink] = None) -> List[CellOutcome]:
    ctx = multiprocessing.get_context()
    pending = deque((i, cell, 1) for i, cell in enumerate(cells))
    running: Dict[int, _Running] = {}
    outcomes: Dict[int, CellOutcome] = {}

    def emit(kind: str, task: _Running, **kw) -> None:
        if sink is not None:
            sink(TelemetryEvent(kind, task.cell.describe(), task.index,
                                attempt=task.attempt,
                                queue_depth=len(pending), running=len(running),
                                worker=task.proc.pid or 0, **kw))

    def infra_failure(task: _Running, kind: str, message: str) -> None:
        """A crash/timeout: retry while budget remains, else quarantine."""
        if task.attempt <= config.retries:
            pending.appendleft((task.index, task.cell, task.attempt + 1))
            emit("cell_retried", task, error_kind=kind)
        else:
            outcomes[task.index] = CellOutcome(
                task.cell, "error", None, CellError(kind, message),
                task.attempt, ())
            emit("cell_quarantined", task, error_kind=kind)

    try:
        while pending or running:
            while pending and len(running) < config.jobs:
                index, cell, attempt = pending.popleft()
                task = _Running(ctx, index, cell, attempt, config.timeout_s)
                running[index] = task
                emit("cell_started", task)
            progressed = []
            for index, task in running.items():
                # Deadline first: an attempt only counts if it beat its
                # budget — a payload that raced in late is still a timeout,
                # so timeout behaviour never depends on poll scheduling.
                if task.deadline is not None and time.monotonic() > task.deadline:
                    task.kill()
                    infra_failure(task, TIMEOUT_KIND,
                                  f"cell exceeded {config.timeout_s:g}s "
                                  f"wall-clock (attempt {task.attempt})")
                    progressed.append(index)
                elif task.conn.poll(0):
                    try:
                        payload = task.conn.recv()
                    except EOFError:
                        payload = None
                    task.reap()
                    if payload is None:
                        infra_failure(task, CRASH_KIND,
                                      "worker exited without a result")
                    else:
                        outcome = _decode(task.cell, payload, task.attempt)
                        outcomes[index] = outcome
                        if sink is not None:
                            sink(_finished_event(
                                outcome, index, queue_depth=len(pending),
                                running=len(running) - 1,
                                worker=task.proc.pid or 0))
                    progressed.append(index)
                elif not task.proc.is_alive():
                    task.reap()
                    infra_failure(task, CRASH_KIND,
                                  f"worker died with exit code "
                                  f"{task.proc.exitcode}")
                    progressed.append(index)
            for index in progressed:
                del running[index]
            if not progressed and running:
                time.sleep(_POLL_S)
    finally:
        for task in running.values():  # interrupted: leave no orphans
            task.kill()

    return [outcomes[i] for i in range(len(cells))]


def execute_cells(cells: Sequence[CampaignCell],
                  config: Optional[PoolConfig] = None,
                  telemetry=None) -> List[CellOutcome]:
    """Execute *cells*, returning outcomes in input order.

    ``jobs == 1`` runs in-process (through the exact payload path the
    children use, so serial and parallel campaigns are byte-identical);
    ``jobs > 1`` fans out over worker processes.

    ``telemetry`` is an optional sink (a callable or anything with an
    ``.emit`` method, e.g. :class:`~repro.obs.telemetry.TelemetryAggregator`)
    that receives one :class:`~repro.obs.telemetry.TelemetryEvent` per
    cell-lifecycle transition.  Events carry pool state only — attaching
    a sink never changes what executes or what is returned.
    """
    config = config if config is not None else PoolConfig()
    sink = as_sink(telemetry)
    if not cells:
        return []
    if config.jobs == 1:
        return _execute_serial(cells, sink)
    return _execute_parallel(cells, config, sink)
