"""Campaign orchestration: spec -> (store ∪ pool) -> ordered records.

The runner is deliberately thin.  It expands the spec, skips every cell
the store already holds, hands the rest to the pool, persists what comes
back, and merges worker metrics into the parent registry **in spec
order** (not completion order), so the aggregated registry is identical
for any ``--jobs`` setting.

Resume semantics fall out of the store check: killing a campaign and
re-running it with the same spec and store executes only the missing
cells.  The parent-side counters make that observable —
``repro_campaign_cells_executed_total`` vs
``repro_campaign_cells_cached_total`` — which is also how the resume
tests assert "only the remaining cells ran".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.campaign.pool import CellOutcome, PoolConfig, execute_cells
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import CellRecord, ResultStore
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryEvent, as_sink, reindexed

__all__ = ["CampaignResult", "CampaignRunner", "campaign_status"]


@dataclass(frozen=True)
class CampaignResult:
    """What one :meth:`CampaignRunner.run` produced, in spec order."""

    spec: CampaignSpec
    records: Tuple[CellRecord, ...]
    executed: int  # cells actually run this invocation
    cached: int  # cells answered from the store
    errors: int  # quarantined cells among ``records``

    @property
    def ok(self) -> bool:
        return self.errors == 0


class CampaignRunner:
    """Run a campaign spec against an optional store with a worker pool."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: Optional[ResultStore] = None,
        pool: Optional[PoolConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        telemetry=None,
    ):
        self.spec = spec
        self.store = store
        self.pool = pool if pool is not None else PoolConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        #: optional telemetry sink/aggregator; events use spec-order indexes.
        self.telemetry = telemetry

    def run(self) -> CampaignResult:
        cells = self.spec.expand()
        sink = as_sink(self.telemetry)
        expect = getattr(self.telemetry, "expect", None)
        if expect is not None:
            expect(len(cells))
        executed_ctr = self.metrics.counter(
            "repro_campaign_cells_executed_total",
            "Campaign cells computed by this invocation")
        cached_ctr = self.metrics.counter(
            "repro_campaign_cells_cached_total",
            "Campaign cells answered from the result store")
        error_ctr = self.metrics.counter(
            "repro_campaign_cells_error_total",
            "Campaign cells quarantined with an error record")
        retry_ctr = self.metrics.counter(
            "repro_campaign_retries_total",
            "Extra attempts after worker crashes or timeouts")

        records: Dict[int, CellRecord] = {}
        to_run: List[Tuple[int, CampaignCell]] = []
        for i, cell in enumerate(cells):
            hit = self.store.get(cell) if self.store is not None else None
            if hit is not None:
                records[i] = hit
                cached_ctr.inc()
                if sink is not None:
                    sink(TelemetryEvent("cell_cached", cell.describe(), i,
                                        status="ok" if hit.ok else "error"))
            else:
                to_run.append((i, cell))

        # Pool events index into the to_run subset; rewrite to spec order.
        pool_sink = (reindexed(sink, [i for i, _ in to_run])
                     if sink is not None else None)
        outcomes = execute_cells([cell for _, cell in to_run], self.pool,
                                 telemetry=pool_sink)
        for (i, _cell), outcome in zip(to_run, outcomes):
            records[i] = self._persist(outcome)
            executed_ctr.inc()
            if outcome.attempts > 1:
                retry_ctr.inc(outcome.attempts - 1)
            # Worker metrics merge in spec order (this loop), regardless
            # of the order the pool finished them in.
            self.metrics.merge_samples(outcome.metric_samples)

        ordered = tuple(records[i] for i in range(len(cells)))
        errors = sum(1 for r in ordered if not r.ok)
        error_ctr.inc(sum(1 for _, o in zip(to_run, outcomes) if o.status == "error"))
        return CampaignResult(
            spec=self.spec,
            records=ordered,
            executed=len(to_run),
            cached=len(cells) - len(to_run),
            errors=errors,
        )

    def _persist(self, outcome: CellOutcome) -> CellRecord:
        rec = CellRecord(
            cell=outcome.cell,
            status=outcome.status,
            measurement=outcome.measurement,
            error=outcome.error,
            attempts=outcome.attempts,
        )
        if self.store is not None:
            self.store.put(rec)
        return rec


def campaign_status(spec: CampaignSpec,
                    store: Optional[ResultStore]) -> Dict[str, object]:
    """How much of *spec* the store already holds (for ``campaign status``)."""
    cells = spec.expand()
    done = errored = 0
    missing: List[str] = []
    for cell in cells:
        rec = store.get(cell) if store is not None else None
        if rec is None:
            missing.append(cell.describe())
        elif rec.ok:
            done += 1
        else:
            errored += 1
    return {
        "total": len(cells),
        "ok": done,
        "error": errored,
        "missing": len(missing),
        "missing_cells": missing,
    }
