"""Declarative campaign specifications.

A :class:`CampaignSpec` is the (clients x providers x routes x sizes x
seeds) matrix behind every table and figure of the paper.  ``expand()``
flattens it — in a fixed, documented order — into :class:`CampaignCell`
records, each of which is one `(client, provider, route, size)` world
that the measurement harness knows how to run.

Two contracts make campaigns trustworthy:

* **bit-identity** — a cell's world seed is
  ``experiment_seed(cell.seed, cell.label)``, exactly what
  :class:`~repro.measure.harness.ExperimentRunner` derives for the same
  label, so a campaign cell reproduces a direct harness run bit for bit;
* **stable keys** — ``cell.key`` is a content hash of every field that
  can influence the measured numbers (and nothing else), so on-disk
  results can be reused across processes without ever aliasing two
  different experiments (see ``docs/CAMPAIGNS.md``).
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.routes import DetourRoute, DirectRoute, Route
from repro.errors import CampaignError
from repro.measure.harness import ExperimentProtocol, experiment_seed
from repro.testbed.params import CaseStudyParams
from repro.testbed.scenarios import (
    CLIENTS,
    PAPER_SIZES_MB,
    PROVIDERS,
    experiment_label,
    paper_route_set,
)
from repro.transfer.dtn import RelayMode

__all__ = ["CampaignCell", "CampaignSpec", "route_from_string"]

#: Version stamped into every cell identity; bump when a change to the
#: execution path invalidates previously stored results.
CELL_KEY_VERSION = 1

_ROUTE_RE = re.compile(r"via (\S+)(?: \(([a-z_]+)\))?")


def route_from_string(text: str) -> Route:
    """Parse a canonical route descriptor back into a :class:`Route`.

    The inverse of ``Route.describe()``: ``"direct"``,
    ``"via ualberta"``, ``"via umich (pipelined)"``.
    """
    text = text.strip()
    if text == "direct":
        return DirectRoute()
    m = _ROUTE_RE.fullmatch(text)
    if m is None:
        raise CampaignError(
            f"unparseable route {text!r}; expected 'direct', 'via <site>', "
            f"or 'via <site> (<mode>)'"
        )
    site, mode = m.group(1), m.group(2)
    if mode is None:
        return DetourRoute(site)
    try:
        return DetourRoute(site, RelayMode(mode))
    except ValueError:
        raise CampaignError(
            f"unknown relay mode {mode!r} in route {text!r}; "
            f"have: {sorted(m.value for m in RelayMode)}"
        ) from None


@dataclass(frozen=True)
class CampaignCell:
    """One `(client, provider, route, size)` experiment at one seed.

    ``route`` is the canonical ``describe()`` string, not a route
    object, so cells stay trivially hashable, picklable, and JSON-able;
    :func:`route_from_string` rebuilds the object at execution time.
    """

    client: str
    provider: str
    route: str
    size_mb: float
    seed: int = 0
    protocol: ExperimentProtocol = field(default_factory=ExperimentProtocol)
    cross_traffic: bool = True
    params: Optional[CaseStudyParams] = None

    @property
    def label(self) -> str:
        """The harness experiment label (drives the derived world seed)."""
        return experiment_label(self.client, self.provider, self.route, self.size_mb)

    @property
    def world_seed(self) -> int:
        """Seed of the world this cell builds — the bit-identity contract."""
        return experiment_seed(self.seed, self.label)

    def identity(self) -> Dict[str, object]:
        """Canonical dict of every result-shaping field (drives ``key``)."""
        return {
            "version": CELL_KEY_VERSION,
            "client": self.client,
            "provider": self.provider,
            "route": self.route,
            "size_mb": float(self.size_mb),
            "seed": int(self.seed),
            "protocol": [self.protocol.total_runs, self.protocol.discard_runs,
                         self.protocol.inter_run_gap_s],
            "cross_traffic": bool(self.cross_traffic),
            "params": None if self.params is None else asdict(self.params),
        }

    @property
    def key(self) -> str:
        """Content-addressed store key: a stable hash of :meth:`identity`."""
        blob = json.dumps(self.identity(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    @classmethod
    def from_identity(cls, ident: Dict[str, object]) -> "CampaignCell":
        """Rebuild a cell from a stored :meth:`identity` dict."""
        version = ident.get("version")
        if version != CELL_KEY_VERSION:
            raise CampaignError(
                f"cell identity version {version!r} is not the supported "
                f"{CELL_KEY_VERSION}"
            )
        total, discard, gap = ident["protocol"]
        params = ident["params"]
        return cls(
            client=ident["client"],
            provider=ident["provider"],
            route=ident["route"],
            size_mb=float(ident["size_mb"]),
            seed=int(ident["seed"]),
            protocol=ExperimentProtocol(int(total), int(discard), float(gap)),
            cross_traffic=bool(ident["cross_traffic"]),
            params=None if params is None else CaseStudyParams(**params),
        )

    def describe(self) -> str:
        return f"{self.label} seed={self.seed}"


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative experiment matrix.

    ``routes=None`` means the paper's route set for each client (direct
    plus both detours, minus the self-detour); an explicit tuple of
    canonical route strings applies to every client, with self-detours
    skipped per client.  Expansion order is fixed:
    ``seed > client > provider > route > size`` — campaigns return
    results in this order no matter how cells were scheduled.
    """

    clients: Tuple[str, ...] = tuple(CLIENTS)
    providers: Tuple[str, ...] = tuple(PROVIDERS)
    routes: Optional[Tuple[str, ...]] = None
    sizes_mb: Tuple[float, ...] = tuple(PAPER_SIZES_MB)
    seeds: Tuple[int, ...] = (0,)
    protocol: ExperimentProtocol = field(default_factory=ExperimentProtocol)
    cross_traffic: bool = True
    params: Optional[CaseStudyParams] = None

    def __post_init__(self) -> None:
        for name in ("clients", "providers", "sizes_mb", "seeds"):
            if not getattr(self, name):
                raise CampaignError(f"campaign spec has an empty {name} axis")
        if self.routes is not None:
            for r in self.routes:
                route_from_string(r)  # fail fast on unparseable descriptors

    def routes_for(self, client: str) -> Tuple[str, ...]:
        """Canonical route descriptors for one client (self-detours dropped)."""
        if self.routes is None:
            return tuple(r.describe() for r in paper_route_set(client))
        return tuple(r for r in self.routes
                     if route_from_string(r).via != client)

    def expand(self) -> List[CampaignCell]:
        """Every cell of the matrix, in the documented deterministic order."""
        cells: List[CampaignCell] = []
        for seed in self.seeds:
            for client in self.clients:
                for provider in self.providers:
                    for route in self.routes_for(client):
                        for size in self.sizes_mb:
                            cells.append(CampaignCell(
                                client=client, provider=provider, route=route,
                                size_mb=size, seed=seed, protocol=self.protocol,
                                cross_traffic=self.cross_traffic,
                                params=self.params,
                            ))
        if not cells:
            raise CampaignError("campaign spec expands to zero cells "
                                "(every route was a self-detour?)")
        return cells

    def describe(self) -> str:
        n = len(self.expand())
        return (f"{len(self.clients)} client(s) x {len(self.providers)} "
                f"provider(s) x {len(self.sizes_mb)} size(s) x "
                f"{len(self.seeds)} seed(s) = {n} cells")
