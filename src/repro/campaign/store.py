"""Content-addressed on-disk result store — what makes campaigns resumable.

Layout: one JSON document per cell under the store root, named by the
cell's content hash (``<key>.json``).  Writes are atomic (temp file +
``os.replace``), so a campaign killed mid-write never leaves a torn
record; a re-run simply recomputes the one missing cell.

A record stores the cell's full :meth:`~repro.campaign.spec.CampaignCell.identity`
next to the result, and ``get`` verifies it against the requesting cell,
so a truncated-hash collision (or a hand-edited file) surfaces as a
:class:`~repro.errors.CampaignError` instead of silently returning the
wrong experiment.

Measurements are persisted as their raw per-run durations; the kept-run
summary is *recomputed* on load.  JSON round-trips floats exactly, so a
loaded measurement is bit-identical to the freshly computed one (the
per-run payload objects are not persisted — ``Measurement.results`` is
empty on load).
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.campaign.spec import CampaignCell
from repro.core.atomic import atomic_write_json
from repro.errors import CampaignError
from repro.measure.harness import Measurement
from repro.measure.stats import summarize

__all__ = ["CellError", "CellRecord", "ResultStore", "register_cell_type",
           "measurement_to_dict", "measurement_from_dict"]

STORE_FORMAT_VERSION = 1

#: ``CellError.kind`` values the pool itself produces (as opposed to the
#: class name of a model exception).
TIMEOUT_KIND = "timeout"
CRASH_KIND = "worker-crash"

#: Registered cell types: the ``cell_type`` field of a stored identity
#: names the class that rebuilds it.  Identities *without* the field are
#: the original paper cells, so pre-registry stores keep loading.
_CELL_TYPES: Dict[str, type] = {}

#: Lazily imported providers of non-default cell types (importing the
#: module runs its ``register_cell_type`` call).
_CELL_TYPE_MODULES: Dict[str, str] = {
    "broker-fleet": "repro.broker.campaign",
    "shard-fleet": "repro.shard.plan",
}


def register_cell_type(name: str, cls: type) -> None:
    """Make stored identities with ``cell_type == name`` loadable as *cls*.

    *cls* must provide the cell protocol the engine duck-types:
    ``identity()`` / ``key`` / ``label`` / ``describe()`` / ``protocol``,
    a ``from_identity`` classmethod, and either the paper-cell fields
    (run through :func:`~repro.campaign.worker.run_cell`) or a
    ``run_measurement(metrics=...)`` method.
    """
    _CELL_TYPES[name] = cls


register_cell_type("paper", CampaignCell)


def _cell_from_identity(ident: Dict[str, object]):
    name = str(ident.get("cell_type", "paper"))
    cls = _CELL_TYPES.get(name)
    if cls is None and name in _CELL_TYPE_MODULES:
        importlib.import_module(_CELL_TYPE_MODULES[name])
        cls = _CELL_TYPES.get(name)
    if cls is None:
        raise CampaignError(
            f"unknown campaign cell type {name!r}; registered: "
            f"{sorted(_CELL_TYPES)}")
    return cls.from_identity(ident)


@dataclass(frozen=True)
class CellError:
    """Why a quarantined cell failed (an error record, not an exception)."""

    kind: str  # exception class name, or "timeout" / "worker-crash"
    message: str

    def describe(self) -> str:
        return f"{self.kind}: {self.message}" if self.message else self.kind


@dataclass(frozen=True)
class CellRecord:
    """One stored campaign outcome: a measurement or a quarantined error."""

    cell: CampaignCell
    status: str  # "ok" | "error"
    measurement: Optional[Measurement] = None
    error: Optional[CellError] = None
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.status == "ok" and self.measurement is None:
            raise CampaignError("ok record must carry a measurement")
        if self.status == "error" and self.error is None:
            raise CampaignError("error record must carry an error")
        if self.status not in ("ok", "error"):
            raise CampaignError(f"unknown record status {self.status!r}")

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def measurement_to_dict(m: Measurement, discard_runs: int) -> Dict[str, object]:
    """Losslessly serializable view of a measurement (payloads dropped)."""
    return {
        "label": m.label,
        "all_durations_s": list(m.all_durations_s),
        "discard_runs": discard_runs,
    }


def measurement_from_dict(d: Dict[str, object]) -> Measurement:
    """Rebuild a measurement; the kept summary is recomputed bit-exactly."""
    durations = tuple(float(x) for x in d["all_durations_s"])
    discard = int(d["discard_runs"])
    return Measurement(
        label=d["label"],
        all_durations_s=durations,
        kept=summarize(list(durations[discard:])),
        results=(),
    )


def record_to_dict(rec: CellRecord) -> Dict[str, object]:
    """The on-disk (and export) JSON shape of one record."""
    return {
        "version": STORE_FORMAT_VERSION,
        "key": rec.cell.key,
        "identity": rec.cell.identity(),
        "status": rec.status,
        "attempts": rec.attempts,
        "measurement": (None if rec.measurement is None else
                        measurement_to_dict(rec.measurement,
                                            rec.cell.protocol.discard_runs)),
        "error": (None if rec.error is None else
                  {"kind": rec.error.kind, "message": rec.error.message}),
    }


def record_from_dict(d: Dict[str, object]) -> CellRecord:
    """Inverse of :func:`record_to_dict`."""
    version = d.get("version")
    if version != STORE_FORMAT_VERSION:
        raise CampaignError(f"unsupported store record version {version!r}")
    cell = _cell_from_identity(d["identity"])
    measurement = d.get("measurement")
    error = d.get("error")
    return CellRecord(
        cell=cell,
        status=d["status"],
        measurement=None if measurement is None else measurement_from_dict(measurement),
        error=None if error is None else CellError(error["kind"], error["message"]),
        attempts=int(d.get("attempts", 1)),
    )


class ResultStore:
    """Directory of per-cell JSON records, keyed by content hash."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def path_for(self, cell: CampaignCell) -> Path:
        return self.root / f"{cell.key}.json"

    def get(self, cell: CampaignCell) -> Optional[CellRecord]:
        """The stored record for *cell*, or None if not yet computed."""
        path = self.path_for(cell)
        if not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            rec = record_from_dict(payload)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise CampaignError(f"corrupt store record {path}: {exc}") from exc
        if rec.cell.identity() != cell.identity():
            raise CampaignError(
                f"store record {path} does not match the requesting cell "
                f"(key collision or edited file): stored "
                f"{rec.cell.describe()!r}, requested {cell.describe()!r}"
            )
        return rec

    def put(self, rec: CellRecord) -> Path:
        """Atomically persist one record; returns its path."""
        return atomic_write_json(self.path_for(rec.cell), record_to_dict(rec),
                                 sort_keys=True, indent=1, mkdir=True)

    def discard(self, cell: CampaignCell) -> bool:
        """Drop one cell's record (e.g. to force recomputation)."""
        path = self.path_for(cell)
        if path.is_file():
            path.unlink()
            return True
        return False

    def __contains__(self, cell: CampaignCell) -> bool:
        return self.path_for(cell).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def records(self) -> List[CellRecord]:
        """Every stored record, in deterministic cell-identity order."""
        if not self.root.is_dir():
            return []
        out: List[CellRecord] = []
        for path in sorted(self.root.glob("*.json")):
            try:
                out.append(record_from_dict(
                    json.loads(path.read_text(encoding="utf-8"))))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise CampaignError(f"corrupt store record {path}: {exc}") from exc
        out.sort(key=_record_order)
        return out


def _record_order(rec: CellRecord):
    """Deterministic listing order; stable for stores mixing cell types."""
    cell = rec.cell
    if isinstance(cell, CampaignCell):
        return (0, cell.seed, cell.client, cell.provider, cell.route,
                cell.size_mb)
    return (1, json.dumps(cell.identity(), sort_keys=True))
