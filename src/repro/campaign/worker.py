"""Execution of one campaign cell — the harness run, verbatim.

:func:`run_cell` is the *only* way campaign results are produced, and it
is also what :func:`repro.analysis.common.measure_cell` calls, so a cell
measured through a worker pool, through ``repro report``, or through a
direct :class:`~repro.measure.harness.ExperimentRunner` is the same
world executing the same coroutine from the same derived seed.

:func:`child_main` is the entry point of a pool worker process: it runs
one cell against a fresh :class:`~repro.obs.MetricsRegistry`, then ships
a plain-dict result (measurement or error, plus metric samples) back
over a pipe.  Everything crossing the process boundary is primitives,
so the parent never unpickles model objects from a child.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Dict, Optional

from repro.campaign.spec import CampaignCell, route_from_string
from repro.campaign.store import measurement_to_dict
from repro.core.executor import PlanExecutor
from repro.core.routes import TransferPlan
from repro.core.world import World
from repro.measure.harness import ExperimentRunner, Measurement
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import KernelProfiler
from repro.testbed.build import world_factory
from repro.transfer.files import FileSpec
from repro.units import mb

__all__ = ["run_cell", "child_main"]


def run_cell(
    cell: CampaignCell,
    metrics: Optional[MetricsRegistry] = None,
    profiler: Optional[KernelProfiler] = None,
) -> Measurement:
    """Run one cell per the paper protocol; bit-identical to the harness."""
    route = route_from_string(cell.route)
    spec = FileSpec(f"test-{cell.size_mb:g}MB.bin", int(mb(cell.size_mb)))
    runner = ExperimentRunner(
        world_factory(params=cell.params, cross_traffic=cell.cross_traffic,
                      metrics=metrics if metrics is not None else False,
                      profile=profiler if profiler is not None else False),
        cell.protocol,
        master_seed=cell.seed,
    )

    def run_factory(world: World, run_index: int):
        plan = TransferPlan(cell.client, cell.provider, spec, route)
        result = yield from PlanExecutor(world).execute(plan)
        return result

    return runner.measure(cell.label, run_factory)


def run_cell_payload(cell: CampaignCell) -> Dict[str, Any]:
    """One attempt at a cell, reduced to a primitives-only payload.

    Used identically by the serial executor and by pool children, so
    ``--jobs 1`` and ``--jobs N`` flow through the same code path.

    Cells that know how to run themselves (a ``run_measurement`` method —
    e.g. the broker's fleet cells) are dispatched to it; classic paper
    cells go through :func:`run_cell`.

    The payload carries ``wall_s``, the attempt's wall time measured
    *here* — inside the worker — so campaign telemetry ships over the
    same pipe as the result and the parent never times on a child's
    behalf.  ``wall_s`` never enters the stored record (see ``_decode``).
    """
    t0 = time.perf_counter()
    registry = MetricsRegistry()
    try:
        self_runner = getattr(cell, "run_measurement", None)
        if self_runner is not None:
            measurement = self_runner(metrics=registry)
        else:
            measurement = run_cell(cell, metrics=registry)
    except Exception as exc:  # quarantine: a failing cell is a record
        return {
            "status": "error",
            "error": {"kind": type(exc).__name__,
                      "message": str(exc) or traceback.format_exc(limit=1).strip()},
            "metrics": [s.to_dict() for s in registry.collect()],
            "wall_s": time.perf_counter() - t0,
        }
    return {
        "status": "ok",
        "measurement": measurement_to_dict(measurement,
                                           cell.protocol.discard_runs),
        "metrics": [s.to_dict() for s in registry.collect()],
        "wall_s": time.perf_counter() - t0,
    }


def child_main(conn, cell: CampaignCell) -> None:
    """Pool-worker process entry: run one cell, send the payload, exit."""
    try:
        payload = run_cell_payload(cell)
        conn.send(payload)
    finally:
        conn.close()
