"""Command-line interface: the case study from a shell.

    python -m repro.cli compare ubc gdrive --size-mb 100
    python -m repro.cli upload purdue onedrive --size-mb 60
    python -m repro.cli traceroute ubc-pl gdrive-frontend
    python -m repro.cli figure fig2 --fast
    python -m repro.cli table 2 --fast
    python -m repro.cli routeviews google
    python -m repro.cli tiv
    python -m repro.cli campaign run --fast --jobs 4 --cache-dir .cells
    python -m repro.cli campaign status --watch --cache-dir .cells
    python -m repro.cli campaign export --fast --cache-dir .cells
    python -m repro.cli obs ubc gdrive --profile-trace trace.json
    python -m repro.cli bench check --record
    python -m repro.cli shard run --root fleet/ --sites ubc,purdue --shards 4 --jobs 4
    python -m repro.cli shard merge --root fleet/ --per-site
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import units
from repro._version import __version__

__all__ = ["main", "build_parser"]


def _add_cache_flags(p: argparse.ArgumentParser) -> None:
    """Campaign-engine flags shared by report/table/figure."""
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="precompute the experiment matrix with N parallel "
                        "workers before rendering (default: 1, in-process)")
    p.add_argument("--cache-dir", default=None, metavar="DIR", dest="cache_dir",
                   help="campaign result store: reuse cells already there, "
                        "persist cells computed here")


def _add_campaign_spec_flags(p: argparse.ArgumentParser) -> None:
    """Matrix axes shared by campaign run/status/export."""
    p.add_argument("--clients", default=None, metavar="A,B",
                   help="comma-separated client sites (default: ubc,purdue,ucla)")
    p.add_argument("--providers", default=None, metavar="A,B",
                   help="comma-separated providers (default: gdrive,dropbox,onedrive)")
    p.add_argument("--routes", default=None, metavar="R;R",
                   help="semicolon-separated canonical routes ('direct', "
                        "'via umich', 'via ualberta (pipelined)'); default: "
                        "the paper route set per client")
    p.add_argument("--sizes-mb", default=None, metavar="N,N", dest="sizes_mb",
                   help="comma-separated sizes in MB (default: the paper sweep)")
    p.add_argument("--seeds", default=None, metavar="N,N",
                   help="comma-separated master seeds (default: 0)")
    p.add_argument("--fast", action="store_true",
                   help="3 runs (discard 1) instead of the paper's 7-run protocol")
    p.add_argument("--no-cross-traffic", action="store_true", dest="no_cross_traffic",
                   help="build worlds without background cross-traffic")
    p.add_argument("--cache-dir", default=None, metavar="DIR", dest="cache_dir",
                   help="result store directory (run: resume into it; "
                        "status/export: read from it)")


def _add_broker_fleet_flags(p: argparse.ArgumentParser) -> None:
    """Fleet workload axes shared by broker simulate/eval/export."""
    p.add_argument("--sites", default=None, metavar="A,B",
                   help="comma-separated client sites (default: ubc,purdue,ucla)")
    p.add_argument("--provider", default="gdrive",
                   choices=["gdrive", "dropbox", "onedrive"])
    p.add_argument("--uploads-per-site", type=int, default=20, metavar="N",
                   dest="uploads_per_site")
    p.add_argument("--interarrival-s", type=float, default=60.0, metavar="S",
                   dest="interarrival_s",
                   help="mean exponential interarrival per site (default: 60)")
    p.add_argument("--size-mb", type=float, default=40.0, dest="size_mb",
                   help="mean upload size in MB (default: 40)")
    p.add_argument("--size-dist", choices=["lognormal", "fixed"],
                   default="lognormal", dest="size_dist",
                   help="heavy-tailed lognormal sizes, or every upload at "
                        "exactly --size-mb")
    p.add_argument("--no-cross-traffic", action="store_true",
                   dest="no_cross_traffic",
                   help="build worlds without background cross-traffic")


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    """Observability flags shared by compare/upload/report."""
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="export metrics: '-' prints a table to stdout, any "
                        "other path gets Prometheus exposition text")
    p.add_argument("--trace-out", default=None, metavar="FILE", dest="trace_out",
                   help="dump metrics + trace events as JSON lines to FILE "
                        "('-' for stdout)")
    p.add_argument("--profile", action="store_true",
                   help="profile kernel callbacks and print a wall-time report")
    p.add_argument("--profile-trace", default=None, metavar="FILE",
                   dest="profile_trace",
                   help="record the profiler timeline and write it as "
                        "Chrome-trace/Perfetto JSON (implies --profile)")
    p.add_argument("--profile-stacks", default=None, metavar="FILE",
                   dest="profile_stacks",
                   help="write self-time-weighted collapsed stacks in "
                        "flamegraph format (implies --profile)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Routing detours to cloud-storage providers (IPPS 2016 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compare", help="measure direct vs detour routes for one upload")
    p.add_argument("client", choices=["ubc", "purdue", "ucla"])
    p.add_argument("provider", choices=["gdrive", "dropbox", "onedrive"])
    p.add_argument("--size-mb", type=float, default=100.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--runs", type=int, default=3)
    _add_obs_flags(p)

    p = sub.add_parser("upload", help="plan (compare) and execute the best route")
    p.add_argument("client", choices=["ubc", "purdue", "ucla"])
    p.add_argument("provider", choices=["gdrive", "dropbox", "onedrive"])
    p.add_argument("--size-mb", type=float, default=100.0)
    p.add_argument("--seed", type=int, default=0)
    _add_obs_flags(p)

    p = sub.add_parser("traceroute", help="traceroute between two simulated hosts")
    p.add_argument("src")
    p.add_argument("dst")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("figure_id",
                   choices=["fig2", "fig4", "fig5", "fig6", "fig7", "fig8",
                            "fig9", "fig10", "fig11"])
    p.add_argument("--fast", action="store_true",
                   help="3 runs x 3 sizes instead of the full protocol")
    p.add_argument("--seed", type=int, default=0)
    _add_cache_flags(p)

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("table_id", choices=["1", "2", "3", "4", "5"])
    p.add_argument("--fast", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    _add_cache_flags(p)

    p = sub.add_parser("routeviews", help="dump the BGP RIB toward a provider AS "
                                          "and flag control/forwarding anomalies")
    p.add_argument("dest", choices=["google", "dropbox", "microsoft"])
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("tiv", help="probe the overlay mesh and catalog "
                                   "triangle-inequality violations")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--margin", type=float, default=1.10)

    p = sub.add_parser("validate", help="check the testbed calibration against "
                                        "the paper-derived targets")
    p.add_argument("--size-mb", type=float, default=100.0)
    p.add_argument("--tolerance", type=float, default=0.35)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("report", help="regenerate all tables + the "
                                      "paper-vs-measured comparison")
    p.add_argument("--fast", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    _add_cache_flags(p)
    _add_obs_flags(p)

    p = sub.add_parser("campaign", help="run/inspect/export an experiment "
                                        "campaign (parallel, cached, resumable)")
    csub = p.add_subparsers(dest="campaign_command", required=True)

    c = csub.add_parser("run", help="execute every cell of the matrix not "
                                    "already in the store")
    _add_campaign_spec_flags(c)
    c.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="parallel worker processes (default: 1, in-process)")
    c.add_argument("--timeout-s", type=float, default=None, dest="timeout_s",
                   metavar="S", help="per-cell wall-clock budget (needs --jobs > 1)")
    c.add_argument("--retries", type=int, default=1,
                   help="extra attempts after a worker crash/timeout (default: 1)")
    c.add_argument("--metrics", default=None, metavar="FILE",
                   help="export campaign metrics: '-' prints a table, any "
                        "other path gets Prometheus exposition text")
    c.add_argument("--progress", action="store_true",
                   help="stream one telemetry line per cell-lifecycle event "
                        "to stderr (started/finished/retried/quarantined)")

    c = csub.add_parser("status", help="how much of the matrix the store holds")
    _add_campaign_spec_flags(c)
    c.add_argument("--watch", action="store_true",
                   help="re-poll the store and print a progress line until "
                        "every cell is present (follow a run live)")
    c.add_argument("--interval-s", type=float, default=2.0, dest="interval_s",
                   metavar="S", help="poll interval for --watch (default: 2)")

    c = csub.add_parser("export", help="canonical JSON of every stored cell, "
                                       "in spec order")
    _add_campaign_spec_flags(c)
    c.add_argument("--out", default=None, metavar="FILE",
                   help="write the export to FILE instead of stdout")

    p = sub.add_parser("broker", help="simulate/evaluate the detour-brokerage "
                                      "control plane over a client fleet")
    bsub = p.add_subparsers(dest="broker_command", required=True)

    b = bsub.add_parser("simulate", help="run one fleet under one policy and "
                                         "print the per-upload ledger")
    _add_broker_fleet_flags(b)
    b.add_argument("--mode", default="broker", metavar="POLICY",
                   help="'broker', 'direct', or 'static:<route>' "
                        "(default: broker)")
    b.add_argument("--seed", type=int, default=0)
    b.add_argument("--uploads", action="store_true", dest="show_uploads",
                   help="also print one line per upload")
    b.add_argument("--metrics", default=None, metavar="FILE",
                   help="export per-site fleet metrics: '-' prints a table, "
                        "any other path gets Prometheus exposition text")
    b.add_argument("--profile-trace", default=None, metavar="FILE",
                   dest="profile_trace",
                   help="profile the fleet's kernel and write the timeline "
                        "as Chrome-trace/Perfetto JSON")

    b = bsub.add_parser("eval", help="run the broker-on vs broker-off sweep "
                                     "through the campaign engine and score it")
    _add_broker_fleet_flags(b)
    b.add_argument("--modes", default=None, metavar="M1;M2;...",
                   help="policies to compare, ';'-separated (default: direct, "
                        "both static detours, broker)")
    b.add_argument("--seeds", default=None, metavar="S1,S2,...")
    _add_cache_flags(b)
    b.add_argument("--metrics", default=None, metavar="FILE",
                   help="export the per-policy score rollup: '-' prints a "
                        "table, any other path gets Prometheus text")

    b = bsub.add_parser("export", help="canonical JSON of every stored fleet "
                                       "cell, in sweep order")
    _add_broker_fleet_flags(b)
    b.add_argument("--modes", default=None, metavar="M1;M2;...")
    b.add_argument("--seeds", default=None, metavar="S1,S2,...")
    b.add_argument("--cache-dir", default=None, metavar="DIR", dest="cache_dir",
                   help="result store directory to export from")
    b.add_argument("--out", default=None, metavar="FILE",
                   help="write the export to FILE instead of stdout")

    p = sub.add_parser("shard", help="run a fleet as sharded campaign cells "
                                     "with a shared route directory")
    hsub = p.add_subparsers(dest="shard_command", required=True)

    h = hsub.add_parser("run", help="execute (or resume) a sharded fleet "
                                    "plan under a run root, then merge")
    _add_broker_fleet_flags(h)
    h.add_argument("--root", required=True, metavar="DIR",
                   help="run root: cell store, shared directory tier, and "
                        "the plan's provenance file live under it")
    h.add_argument("--modes", default=None, metavar="M1;M2;...",
                   help="policies to compare, ';'-separated "
                        "(default: direct;broker)")
    h.add_argument("--shards", type=int, default=1, metavar="N",
                   help="stable-hash site partitions (default: 1)")
    h.add_argument("--seed", type=int, default=0)
    h.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="parallel worker processes (default: 1, in-process)")
    h.add_argument("--timeout-s", type=float, default=None, dest="timeout_s",
                   metavar="S", help="per-cell wall-clock budget "
                                     "(needs --jobs > 1)")
    h.add_argument("--retries", type=int, default=1,
                   help="extra attempts after a worker crash/timeout "
                        "(default: 1)")
    h.add_argument("--warm-from", default=None, metavar="NAME",
                   dest="warm_from",
                   help="published directory snapshot to preload broker "
                        "cells from (e.g. a previous run's 'merged-<key>')")
    h.add_argument("--topo", default=None, metavar="SPEC.json",
                   help="run the fleet on a generated world spec instead of "
                        "the calibrated case study")
    h.add_argument("--per-site", action="store_true", dest="per_site",
                   help="include the per-site breakdown in the merged score")
    h.add_argument("--metrics", default=None, metavar="FILE",
                   help="export run metrics: '-' prints a table, any other "
                        "path gets Prometheus exposition text")
    h.add_argument("--progress", action="store_true",
                   help="stream one telemetry line per cell-lifecycle event "
                        "to stderr")

    h = hsub.add_parser("status", help="how far the run under a root has "
                                       "progressed (crash-safe, read-only)")
    h.add_argument("--root", required=True, metavar="DIR")

    h = hsub.add_parser("merge", help="fold a completed run's stored cells "
                                      "and published reports into the fleet "
                                      "score (works offline)")
    h.add_argument("--root", required=True, metavar="DIR")
    h.add_argument("--per-site", action="store_true", dest="per_site")
    h.add_argument("--metrics", default=None, metavar="FILE",
                   help="export merge metrics: '-' prints a table, any "
                        "other path gets Prometheus exposition text")

    p = sub.add_parser("obs", help="run an instrumented compare and export "
                                   "its metrics, spans, and profile")
    p.add_argument("client", nargs="?", default="ubc",
                   choices=["ubc", "purdue", "ucla"])
    p.add_argument("provider", nargs="?", default="gdrive",
                   choices=["gdrive", "dropbox", "onedrive"])
    p.add_argument("--size-mb", type=float, default=20.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--runs", type=int, default=2)
    p.add_argument("--format", choices=["text", "json", "prom"], default="text",
                   dest="fmt",
                   help="text: timeline + metrics table; json: JSON-lines "
                        "metrics+trace dump; prom: Prometheus exposition")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the export to FILE instead of stdout")
    p.add_argument("--profile", action="store_true",
                   help="also print the kernel wall-time profile (text format)")
    p.add_argument("--profile-trace", default=None, metavar="FILE",
                   dest="profile_trace",
                   help="record the profiler timeline and write it as "
                        "Chrome-trace/Perfetto JSON")
    p.add_argument("--profile-stacks", default=None, metavar="FILE",
                   dest="profile_stacks",
                   help="write self-time-weighted collapsed stacks in "
                        "flamegraph format")

    p = sub.add_parser("bench", help="trend ledger over the benchmark "
                                     "suite's BENCH_*.json results")
    nsub = p.add_subparsers(dest="bench_command", required=True)

    n = nsub.add_parser("check", help="flag results that regressed past a "
                                      "threshold vs the ledger's last "
                                      "generation (exit 1 on regression)")
    n.add_argument("--results-dir", default="benchmarks/results",
                   dest="results_dir", metavar="DIR",
                   help="directory holding BENCH_*.json "
                        "(default: benchmarks/results)")
    n.add_argument("--ledger", default=None, metavar="FILE",
                   help="ledger path (default: <results-dir>/"
                        "bench_ledger.jsonl)")
    n.add_argument("--threshold", type=float, default=None,
                   help="degradation ratio that counts as a regression "
                        "(default: 1.25)")
    n.add_argument("--record", action="store_true",
                   help="after checking, append the current results to the "
                        "ledger as a new generation")
    n.add_argument("--note", default="", metavar="TEXT",
                   help="free-form note stored with --record")

    n = nsub.add_parser("trend", help="print the per-metric value trail "
                                      "over recent ledger generations")
    n.add_argument("--results-dir", default="benchmarks/results",
                   dest="results_dir", metavar="DIR")
    n.add_argument("--ledger", default=None, metavar="FILE")
    n.add_argument("--suite", default=None,
                   help="restrict to one suite (the X of BENCH_X.json)")
    n.add_argument("--last", type=int, default=8, metavar="N",
                   help="show the most recent N generations (default: 8)")

    p = sub.add_parser("topo", help="generate, ingest, compile, and export "
                                    "topology worlds (see docs/TOPOLOGY.md)")
    tsub = p.add_subparsers(dest="topo_command", required=True)

    t = tsub.add_parser("generate", help="write a world spec (JSON): a "
                                         "synthetic preset or an ingested "
                                         "ITDK-style snapshot")
    t.add_argument("--preset", choices=["smoke", "metro", "internet"],
                   default="metro",
                   help="synthetic recipe size (default: metro)")
    t.add_argument("--seed", type=int, default=0,
                   help="generator seed baked into the spec")
    t.add_argument("--name", default=None,
                   help="spec name (default: the preset name)")
    t.add_argument("--from-itdk", default=None, metavar="DIR", dest="from_itdk",
                   help="ingest an ITDK-style snapshot directory instead of "
                        "generating synthetically")
    t.add_argument("--prefix", default="itdk",
                   help="with --from-itdk: snapshot file prefix")
    t.add_argument("-o", "--out", default=None, metavar="FILE",
                   help="spec JSON path (default: <name>.topo.json)")

    t = tsub.add_parser("inspect", help="summarize a spec JSON or a compiled "
                                        ".npz world")
    t.add_argument("path", help="a *.topo.json spec or a compiled *.npz")

    t = tsub.add_parser("compile", help="compile a spec to flat arrays + "
                                        "precomputed routes (.npz)")
    t.add_argument("spec", help="spec JSON path")
    t.add_argument("-o", "--out", default=None, metavar="FILE",
                   help="compiled output (default: <spec stem>.npz)")
    t.add_argument("--cache-dir", default=None, metavar="DIR", dest="cache_dir",
                   help="content-addressed route cache directory")
    t.add_argument("--no-routes", action="store_true", dest="no_routes",
                   help="skip route precomputation (routes resolve on "
                        "demand at materialize time)")

    t = tsub.add_parser("export", help="write a spec's expanded graph as an "
                                       "ITDK-style text snapshot")
    t.add_argument("spec", help="spec JSON path")
    t.add_argument("-o", "--out", required=True, metavar="DIR",
                   help="snapshot output directory")
    t.add_argument("--prefix", default="itdk", help="snapshot file prefix")

    p = sub.add_parser("lint", help="statically check the simulation invariants "
                                    "(determinism / units / kernel-safety)")
    p.add_argument("paths", nargs="*",
                   help="files or directories to lint (default: the installed "
                        "repro package); the literal first path 'graph' "
                        "switches to call-graph inspection (see --dot)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text", dest="fmt")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="baseline JSON (default: auto-discover lint_baseline.json)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline file")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline to cover the current findings")
    p.add_argument("--graph", action="store_true",
                   help="whole-program analysis: per-file rules plus the "
                        "SL6xx transitive-determinism and SL7xx unit-"
                        "dataflow call-graph rules")
    p.add_argument("--cache-dir", default=None, metavar="DIR", dest="cache_dir",
                   help="incremental analysis cache for --graph runs "
                        "(default: .lint_cache)")
    p.add_argument("--no-cache", action="store_true", dest="no_cache",
                   help="analyze from scratch, neither reading nor writing "
                        "the cache")
    p.add_argument("--dot", action="store_true",
                   help="with 'graph': emit the project call graph as "
                        "Graphviz DOT instead of stats")
    p.add_argument("--focus", default=None, metavar="PREFIX",
                   help="with 'graph --dot': keep only edges touching "
                        "functions under this dotted-name prefix")
    p.add_argument("--changed", action="store_true",
                   help="lint only files changed vs git HEAD (plus "
                        "untracked); with --graph the whole program is "
                        "still analyzed (cache-warm) but findings are "
                        "reported for changed files only")
    p.add_argument("--fix", action="store_true",
                   help="auto-repair fixable findings (SL104 sorted-"
                        "iteration, SL201 units constants, SL802 hot-loop "
                        "hoists, SL1002 atomic-write protocol) with token-"
                        "preserving rewrites, printing unified diffs")
    p.add_argument("--fix-mode", choices=["rewrite", "suppress"],
                   default="rewrite", dest="fix_mode",
                   help="rewrite: repair the code; suppress: insert inline "
                        "'# simlint: ignore[...]' markers instead")
    p.add_argument("--dry-run", action="store_true", dest="dry_run",
                   help="with --fix: print the diffs without writing files")
    return parser


def _analysis_config(fast: bool, seed: int):
    from repro.analysis import AnalysisConfig
    from repro.measure import ExperimentProtocol

    if fast:
        return AnalysisConfig(master_seed=seed, sizes_mb=(10, 50, 100),
                              protocol=ExperimentProtocol(3, 1))
    return AnalysisConfig(master_seed=seed)


def _split_csv(text: Optional[str], cast=str, sep: str = ",") -> Optional[tuple]:
    if text is None:
        return None
    return tuple(cast(part.strip()) for part in text.split(sep) if part.strip())


def _campaign_spec(args):
    """Build a CampaignSpec from the shared matrix flags."""
    from repro.campaign import CampaignSpec
    from repro.measure import ExperimentProtocol

    protocol = ExperimentProtocol(3, 1) if args.fast else ExperimentProtocol()
    return CampaignSpec(
        clients=_split_csv(args.clients) or CampaignSpec.clients,
        providers=_split_csv(args.providers) or CampaignSpec.providers,
        routes=_split_csv(args.routes, sep=";"),
        sizes_mb=_split_csv(args.sizes_mb, cast=float) or CampaignSpec.sizes_mb,
        seeds=_split_csv(args.seeds, cast=int) or (0,),
        protocol=protocol,
        cross_traffic=not args.no_cross_traffic,
    )


def _campaign_store(args, required: bool):
    from repro.campaign import ResultStore

    if args.cache_dir:
        return ResultStore(args.cache_dir)
    if required:
        raise SystemExit("error: this campaign command needs --cache-dir")
    return None


def _warmed_config(cfg, args):
    """Honour --cache-dir/--jobs on report/table/figure.

    With a cache dir, cells read from / persist to the store.  With
    ``--jobs N > 1`` the full report matrix is precomputed by a parallel
    campaign first (into the cache dir, or a throwaway store), so the
    serial rendering path finds every cell already measured.  Returns
    ``(cfg, keepalive)`` — hold *keepalive* until rendering is done.
    """
    from dataclasses import replace

    from repro.analysis import report_campaign_spec
    from repro.campaign import CampaignRunner, PoolConfig, ResultStore

    store = _campaign_store(args, required=False)
    keepalive = None
    if args.jobs > 1:
        if store is None:
            import tempfile

            keepalive = tempfile.TemporaryDirectory(prefix="repro-campaign-")
            store = ResultStore(keepalive.name)
        cfg = replace(cfg, store=store)
        result = CampaignRunner(report_campaign_spec(cfg), store=store,
                                pool=PoolConfig(jobs=args.jobs),
                                metrics=cfg.metrics).run()
        print(f"campaign: {result.executed} cell(s) computed with "
              f"--jobs {args.jobs}, {result.cached} from cache", file=sys.stderr)
        return cfg, keepalive
    if store is not None:
        cfg = replace(cfg, store=store)
    return cfg, keepalive


def _obs_requested(args) -> bool:
    return bool(args.metrics or args.trace_out or _profile_requested(args))


def _profile_requested(args) -> bool:
    return bool(args.profile or getattr(args, "profile_trace", None)
                or getattr(args, "profile_stacks", None))


def _build_profiler(args):
    """A profiler matching the flags: timeline recording only when a
    Chrome-trace export was asked for (it is the only consumer)."""
    from repro.obs import KernelProfiler

    return KernelProfiler(timeline=bool(getattr(args, "profile_trace", None)))


def _instrumented_world(args):
    """Build the case-study world honouring the observability flags.

    Without any obs flag this is exactly ``build_case_study(seed=...)``,
    so default runs stay byte-identical to the uninstrumented CLI.
    """
    from repro.testbed import build_case_study

    obs_on = _obs_requested(args)
    return build_case_study(
        seed=args.seed,
        trace=obs_on,
        metrics=bool(args.metrics or args.trace_out),
        profile=_build_profiler(args) if _profile_requested(args) else False,
    )


def _write_profile_exports(profiler, args) -> None:
    """Honour --profile-trace / --profile-stacks for a finished profiler."""
    from repro.obs import write_chrome_trace, write_collapsed_stacks

    trace_path = getattr(args, "profile_trace", None)
    stacks_path = getattr(args, "profile_stacks", None)
    if trace_path:
        with open(trace_path, "w", encoding="utf-8") as fp:
            n = write_chrome_trace(fp, profiler)
        print(f"wrote Chrome trace ({n} events) to {trace_path}")
    if stacks_path:
        with open(stacks_path, "w", encoding="utf-8") as fp:
            n = write_collapsed_stacks(fp, profiler)
        print(f"wrote {n} collapsed stack(s) to {stacks_path}")


def _emit_obs(world, args) -> None:
    """Print/write the obs exports selected by the shared flags."""
    from repro.analysis import span_timeline
    from repro.obs import (
        extract_span_records,
        record_trace_health,
        render_metrics_table,
        render_prometheus,
        write_jsonl,
    )

    record_trace_health(world.metrics, world.tracer)
    print()
    print(span_timeline(extract_span_records(world.tracer)))
    print(f"trace: {len(world.tracer)} event(s), "
          f"{world.tracer.dropped} dropped")
    if args.metrics == "-":
        print()
        print(render_metrics_table(world.metrics))
    elif args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as fp:
            fp.write(render_prometheus(world.metrics))
        print(f"\nwrote Prometheus metrics to {args.metrics}")
    if args.trace_out == "-":
        print()
        write_jsonl(sys.stdout, metrics=world.metrics, tracer=world.tracer)
    elif args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as fp:
            lines = write_jsonl(fp, metrics=world.metrics, tracer=world.tracer)
        print(f"\nwrote {lines} JSON lines to {args.trace_out}")
    if args.profile and world.profiler is not None:
        print()
        print(world.profiler.report())
    if world.profiler is not None:
        _write_profile_exports(world.profiler, args)


def _cmd_compare(args) -> int:
    from repro.core import DetourPlanner

    world = _instrumented_world(args)
    planner = DetourPlanner(world, runs_per_route=args.runs,
                            discard_runs=1 if args.runs > 1 else 0)
    comparison = planner.compare(args.client, args.provider,
                                 int(units.mb(args.size_mb)))
    print(comparison.render())
    if _obs_requested(args):
        _emit_obs(world, args)
    return 0


def _cmd_upload(args) -> int:
    from repro.core import DetourPlanner

    world = _instrumented_world(args)
    planner = DetourPlanner(world)
    planned = planner.upload(args.client, args.provider, int(units.mb(args.size_mb)))
    print(planned.comparison.render())
    print()
    print(planned.final.describe())
    if _obs_requested(args):
        _emit_obs(world, args)
    return 0


def _cmd_traceroute(args) -> int:
    from repro.net import format_traceroute, traceroute
    from repro.sim.rng import RngRegistry
    from repro.testbed import build_case_study

    world = build_case_study(seed=args.seed, cross_traffic=False)
    dst = world.topology.node(args.dst)
    hops = traceroute(world.router, args.src, args.dst,
                      rng=RngRegistry(args.seed).stream("cli.traceroute"))
    print(format_traceroute(hops, dst.hostname, dst.address, show_rtts=True))
    return 0


def _cmd_figure(args) -> int:
    from repro.analysis import run_figure, run_traceroute_figures

    if args.figure_id in ("fig5", "fig6"):
        figs = run_traceroute_figures(seed=args.seed)
        print(figs[args.figure_id])
        return 0
    cfg, keepalive = _warmed_config(_analysis_config(args.fast, args.seed), args)
    result = run_figure(args.figure_id, cfg)
    print(result.render())
    del keepalive
    return 0


def _cmd_table(args) -> int:
    from repro.analysis import (
        render_table1,
        render_table4,
        render_table5,
        run_table1,
        run_table2,
        run_table3,
        run_table4,
        run_table5,
    )

    cfg, keepalive = _warmed_config(_analysis_config(args.fast, args.seed), args)
    if args.table_id == "1":
        print(render_table1(run_table1(cfg)))
    elif args.table_id == "2":
        print(run_table2(cfg).render(show_std=True))
    elif args.table_id == "3":
        print(run_table3(cfg).render(show_std=True))
    elif args.table_id == "4":
        sizes = (100, 60) if not args.fast else (100,)
        print(render_table4(run_table4(cfg, sizes_mb=sizes)))
    else:
        print(render_table5(run_table5(cfg)))
    del keepalive
    return 0


def _cmd_routeviews(args) -> int:
    from repro.net import RouteCollector, detect_policy_anomalies
    from repro.testbed import build_case_study
    from repro.testbed.build import AS_NUMBERS

    world = build_case_study(seed=args.seed, cross_traffic=False)
    dest_asn = AS_NUMBERS[args.dest]
    collector = RouteCollector(world.router.bgp)
    print(collector.dump(dest_asn))
    print()
    frontends = {"google": "gdrive-frontend", "dropbox": "dropbox-frontend",
                 "microsoft": "onedrive-frontend"}
    anomalies = detect_policy_anomalies(
        world.router,
        ["ubc-pl", "ualberta-dtn", "umich-pl", "purdue-pl", "ucla-pl"],
        frontends[args.dest],
    )
    if anomalies:
        print("control-plane vs forwarding-plane anomalies:")
        for a in anomalies:
            print("  " + a.render())
    else:
        print("no control/forwarding anomalies observed")
    return 0


def _cmd_tiv(args) -> int:
    from repro.overlay import ProbeMesh, catalog_tivs
    from repro.testbed import build_case_study

    world = build_case_study(seed=args.seed, cross_traffic=False)
    mesh = ProbeMesh(world, ["ubc-pl", "ualberta-dtn", "umich-pl",
                             "purdue-pl", "ucla-pl"], probe_bytes=2 * units.MB)
    proc = world.sim.process(mesh.probe_round())
    world.sim.run_until_triggered(proc.done, horizon=1e7)
    records = catalog_tivs(mesh, margin=args.margin)
    print(f"probed {len(mesh.pairs())} pairs; "
          f"{len(records)} violations at margin {args.margin:.2f}:")
    for rec in records:
        print("  " + rec.describe())
    return 0


def _cmd_validate(args) -> int:
    from repro.testbed import render_validation, validate_calibration

    checks = validate_calibration(size_mb=args.size_mb, seed=args.seed)
    print(render_validation(checks, tolerance=args.tolerance))
    return 0 if all(c.ok(args.tolerance) for c in checks) else 1


def _cmd_report(args) -> int:
    from repro.analysis import generate_full_report

    cfg = _analysis_config(args.fast, args.seed)
    registry = profiler = None
    if _obs_requested(args):
        from dataclasses import replace

        from repro.obs import MetricsRegistry

        if args.trace_out:
            print("note: --trace-out is ignored by report (per-world traces "
                  "are not aggregated)", file=sys.stderr)
        if args.metrics:
            registry = MetricsRegistry()
        if _profile_requested(args):
            profiler = _build_profiler(args)
        cfg = replace(cfg, metrics=registry, profiler=profiler)
    cfg, keepalive = _warmed_config(cfg, args)
    print(generate_full_report(cfg))
    del keepalive
    if registry is not None:
        from repro.obs import render_metrics_table, render_prometheus

        if args.metrics == "-":
            print()
            print(render_metrics_table(registry))
        else:
            with open(args.metrics, "w", encoding="utf-8") as fp:
                fp.write(render_prometheus(registry))
            print(f"\nwrote Prometheus metrics to {args.metrics}")
    if profiler is not None:
        if args.profile:
            print()
            print(profiler.report())
        _write_profile_exports(profiler, args)
    return 0


def _cmd_obs(args) -> int:
    from repro.analysis import span_timeline
    from repro.core import DetourPlanner
    from repro.obs import (
        extract_span_records,
        record_trace_health,
        render_metrics_table,
        render_prometheus,
        write_jsonl,
    )
    from repro.testbed import build_case_study

    profile = (_build_profiler(args) if _profile_requested(args)
               else args.profile)
    world = build_case_study(seed=args.seed, trace=True, metrics=True,
                             profile=profile)
    planner = DetourPlanner(world, runs_per_route=args.runs,
                            discard_runs=1 if args.runs > 1 else 0)
    comparison = planner.compare(args.client, args.provider,
                                 int(units.mb(args.size_mb)))

    record_trace_health(world.metrics, world.tracer)
    out = sys.stdout if args.out in (None, "-") else open(
        args.out, "w", encoding="utf-8")
    try:
        if args.fmt == "json":
            write_jsonl(out, metrics=world.metrics, tracer=world.tracer)
        elif args.fmt == "prom":
            out.write(render_prometheus(world.metrics))
        else:
            out.write(comparison.render() + "\n\n")
            out.write(span_timeline(extract_span_records(world.tracer)) + "\n\n")
            out.write(f"trace: {len(world.tracer)} event(s), "
                      f"{world.tracer.dropped} dropped\n\n")
            out.write(render_metrics_table(world.metrics) + "\n")
            if args.profile and world.profiler is not None:
                out.write("\n" + world.profiler.report() + "\n")
    finally:
        if out is not sys.stdout:
            out.close()
            print(f"wrote {args.fmt} export to {args.out}")
    if world.profiler is not None:
        _write_profile_exports(world.profiler, args)
    return 0


def _cmd_campaign(args) -> int:
    from repro.campaign import (
        CampaignRunner,
        PoolConfig,
        campaign_status,
        export_campaign,
    )
    from repro.obs import MetricsRegistry, render_metrics_table, render_prometheus

    spec = _campaign_spec(args)

    if args.campaign_command == "run":
        store = _campaign_store(args, required=False)
        registry = MetricsRegistry()
        pool = PoolConfig(jobs=args.jobs, timeout_s=args.timeout_s,
                          retries=args.retries)
        telemetry = None
        if args.progress or args.metrics:
            from repro.obs import TelemetryAggregator, render_event

            on_event = None
            if args.progress:
                def on_event(ev):
                    print(render_event(ev), file=sys.stderr)
            telemetry = TelemetryAggregator(metrics=registry,
                                            on_event=on_event)
        result = CampaignRunner(spec, store=store, pool=pool,
                                metrics=registry, telemetry=telemetry).run()
        if telemetry is not None and args.progress:
            from repro.obs import render_progress

            print(render_progress(telemetry.snapshot()), file=sys.stderr)
        for rec in result.records:
            if rec.ok:
                mean = rec.measurement.kept.mean
                print(f"  ok    {rec.cell.describe():<44} mean {mean:9.2f} s")
            else:
                print(f"  ERROR {rec.cell.describe():<44} "
                      f"{rec.error.describe()}")
        print(f"\n{spec.describe()}")
        print(f"executed {result.executed}, cached {result.cached}, "
              f"quarantined {result.errors}"
              + (f"; store: {store.root}" if store is not None else ""))
        if args.metrics == "-":
            print()
            print(render_metrics_table(registry))
        elif args.metrics:
            with open(args.metrics, "w", encoding="utf-8") as fp:
                fp.write(render_prometheus(registry))
            print(f"wrote Prometheus metrics to {args.metrics}")
        return 0 if result.errors == 0 else 1

    store = _campaign_store(args, required=True)
    if args.campaign_command == "status":
        if args.watch:
            import time

            from repro.obs import ProgressSnapshot, render_progress

            print(f"{spec.describe()}  (store: {store.root})")
            while True:
                status = campaign_status(spec, store)
                snap = ProgressSnapshot(total=status["total"],
                                        finished_ok=status["ok"],
                                        finished_error=status["error"])
                print(render_progress(snap), flush=True)
                if status["missing"] == 0:
                    break
                time.sleep(args.interval_s)
            return 0 if status["error"] == 0 else 1
        status = campaign_status(spec, store)
        print(f"{spec.describe()}")
        print(f"ok {status['ok']}  error {status['error']}  "
              f"missing {status['missing']}  (store: {store.root})")
        for desc in status["missing_cells"][:20]:
            print(f"  missing: {desc}")
        if status["missing"] > 20:
            print(f"  ... and {status['missing'] - 20} more")
        return 0 if status["missing"] == 0 and status["error"] == 0 else 1

    # export
    if args.out in (None, "-"):
        export_campaign(spec, store, sys.stdout)
    else:
        with open(args.out, "w", encoding="utf-8") as fp:
            n = export_campaign(spec, store, fp)
        print(f"exported {n} cell record(s) to {args.out}")
    return 0


def _broker_sweep_spec(args):
    """Build a BrokerSweepSpec from the shared fleet flags."""
    from repro.broker import BrokerSweepSpec

    return BrokerSweepSpec(
        sites=_split_csv(args.sites) or BrokerSweepSpec.sites,
        provider=args.provider,
        modes=_split_csv(args.modes, sep=";") or BrokerSweepSpec.modes,
        n_uploads_per_site=args.uploads_per_site,
        mean_interarrival_s=args.interarrival_s,
        mean_size_mb=args.size_mb,
        size_dist=args.size_dist,
        seeds=_split_csv(args.seeds, cast=int) or (0,),
        cross_traffic=not args.no_cross_traffic,
    )


def _cmd_broker(args) -> int:
    from repro.broker import BrokerSweepSpec, run_fleet, score_sweep

    if args.broker_command == "simulate":
        registry = profiler = None
        if args.metrics:
            from repro.obs import MetricsRegistry

            registry = MetricsRegistry()
        if args.profile_trace:
            from repro.obs import KernelProfiler

            profiler = KernelProfiler(timeline=True)
        result = run_fleet(
            seed=args.seed,
            sites=_split_csv(args.sites) or BrokerSweepSpec.sites,
            provider=args.provider,
            n_uploads_per_site=args.uploads_per_site,
            mean_interarrival_s=args.interarrival_s,
            mean_size_mb=args.size_mb,
            size_dist=args.size_dist,
            mode=args.mode,
            cross_traffic=not args.no_cross_traffic,
            metrics=registry if registry is not None else False,
            profile=profiler if profiler is not None else False,
        )
        if args.show_uploads:
            for r in result.records:
                print(f"  #{r.index:<3} t={r.start_s:8.1f}s {r.client_site:<7} "
                      f"{r.size_bytes / 1e6:7.1f} MB  {r.route_descr:<13} "
                      f"[{r.source}{', spilled' if r.spilled else ''}]  "
                      f"{r.duration_s:8.2f} s")
        n = len(result.records)
        print(f"fleet [{result.mode}]: {n} uploads, "
              f"mean transfer {result.mean_transfer_s:.2f} s")
        print(f"  probes {result.probes_issued} "
              f"({result.probes_per_upload:.2f}/upload), "
              f"directory hit rate {result.hit_rate:.0%} "
              f"({result.directory_hits}/{result.directory_hits + result.directory_misses}), "
              f"evictions {result.directory_evictions}, "
              f"admission spills {result.admission_spills}")
        if registry is not None:
            from repro.obs import render_metrics_table, render_prometheus

            if args.metrics == "-":
                print()
                print(render_metrics_table(registry))
            else:
                with open(args.metrics, "w", encoding="utf-8") as fp:
                    fp.write(render_prometheus(registry))
                print(f"wrote Prometheus metrics to {args.metrics}")
        if profiler is not None:
            _write_profile_exports(profiler, args)
        return 0

    from repro.campaign import CampaignRunner, PoolConfig, export_campaign

    spec = _broker_sweep_spec(args)
    store = _campaign_store(args, required=(args.broker_command == "export"))

    if args.broker_command == "eval":
        pool = PoolConfig(jobs=args.jobs)
        result = CampaignRunner(spec, store=store, pool=pool).run()
        for rec in result.records:
            if not rec.ok:
                print(f"  ERROR {rec.cell.describe():<52} {rec.error.describe()}")
        print(spec.describe())
        print(f"executed {result.executed}, cached {result.cached}, "
              f"quarantined {result.errors}"
              + (f"; store: {store.root}" if store is not None else ""))
        if result.errors:
            return 1
        summary = score_sweep(spec, result.records)
        print()
        print(summary.render())
        if args.metrics:
            from repro.obs import (
                MetricsRegistry,
                render_metrics_table,
                render_prometheus,
            )

            registry = MetricsRegistry()
            summary.to_metrics(registry)
            if args.metrics == "-":
                print()
                print(render_metrics_table(registry))
            else:
                with open(args.metrics, "w", encoding="utf-8") as fp:
                    fp.write(render_prometheus(registry))
                print(f"wrote Prometheus metrics to {args.metrics}")
        return 0

    # export
    if args.out in (None, "-"):
        export_campaign(spec, store, sys.stdout)
    else:
        with open(args.out, "w", encoding="utf-8") as fp:
            n = export_campaign(spec, store, fp)
        print(f"exported {n} fleet cell record(s) to {args.out}")
    return 0


def _cmd_bench(args) -> int:
    import os

    from repro.obs.bench import (
        DEFAULT_THRESHOLD,
        check_regressions,
        load_bench_results,
        read_ledger,
        record_generation,
        render_regressions,
        render_trend,
    )

    ledger_path = args.ledger or os.path.join(args.results_dir,
                                              "bench_ledger.jsonl")
    if args.bench_command == "trend":
        print(render_trend(read_ledger(ledger_path), suite=args.suite,
                           last=args.last))
        return 0

    # check
    threshold = args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    results = load_bench_results(args.results_dir)
    if not results:
        print(f"bench check: no BENCH_*.json under {args.results_dir}")
        return 0
    ledger = read_ledger(ledger_path)
    regressions = check_regressions(results, ledger, threshold=threshold)
    print(render_regressions(regressions, threshold))
    if not ledger:
        print("note: ledger is empty — nothing to compare against"
              + ("" if args.record else "; use --record to seed it"))
    if args.record:
        import datetime

        stamp = datetime.datetime.now().isoformat(timespec="seconds")
        gen = record_generation(ledger_path, results, stamp=stamp,
                                note=args.note)
        print(f"recorded generation {gen} in {ledger_path}")
    return 1 if regressions else 0


def _cmd_lint(args) -> int:
    from repro.lint import run_graph_export, run_lint

    if args.paths and args.paths[0] == "graph":
        return run_graph_export(
            paths=args.paths[1:] or None,
            dot=args.dot,
            focus=args.focus,
            cache_dir=args.cache_dir,
            no_cache=args.no_cache,
        )
    return run_lint(
        paths=args.paths or None,
        fmt=args.fmt,
        baseline_path=args.baseline,
        no_baseline=args.no_baseline,
        update_baseline=args.update_baseline,
        graph=args.graph,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        fix=args.fix,
        fix_mode=args.fix_mode,
        dry_run=args.dry_run,
        changed=args.changed,
    )


def _write_cli_metrics(registry, dest: str) -> None:
    """Shared `--metrics` epilogue: '-' prints a table, else Prometheus."""
    from repro.obs import render_metrics_table, render_prometheus

    if dest == "-":
        print()
        print(render_metrics_table(registry))
    else:
        with open(dest, "w", encoding="utf-8") as fp:
            fp.write(render_prometheus(registry))
        print(f"wrote Prometheus metrics to {dest}")


def _cmd_shard(args) -> int:
    from repro.shard import ShardPlan, merge_sharded, run_sharded, shard_status
    from repro.shard.runner import read_run_file

    if args.shard_command == "run":
        from repro.broker import BrokerSweepSpec

        registry = None
        if args.metrics or args.progress:
            from repro.obs import MetricsRegistry

            registry = MetricsRegistry()
        telemetry = None
        if args.progress:
            from repro.obs import TelemetryAggregator, render_event

            def on_event(ev):
                print(render_event(ev), file=sys.stderr)

            telemetry = TelemetryAggregator(metrics=registry,
                                            on_event=on_event)
        plan = ShardPlan(
            sites=_split_csv(args.sites) or BrokerSweepSpec.sites,
            provider=args.provider,
            modes=_split_csv(args.modes, sep=";") or ("direct", "broker"),
            n_shards=args.shards,
            n_uploads_per_site=args.uploads_per_site,
            mean_interarrival_s=args.interarrival_s,
            mean_size_mb=args.size_mb,
            size_dist=args.size_dist,
            seed=args.seed,
            cross_traffic=not args.no_cross_traffic,
            topo=_load_topo_spec(args.topo) if args.topo else None,
        )
        result = run_sharded(
            plan, args.root, jobs=args.jobs, warm_from=args.warm_from,
            timeout_s=args.timeout_s, retries=args.retries,
            metrics=registry, telemetry=telemetry)
        print(plan.describe())
        if result.warm_from is not None:
            print(f"warmed from {result.warm_from} "
                  f"({result.warm_entries} entries)")
        print(f"executed {result.executed}, cached {result.cached}; "
              f"root: {args.root}")
        print(result.merge.render(per_site=args.per_site))
        if args.metrics:
            _write_cli_metrics(registry, args.metrics)
        return 0

    payload = read_run_file(args.root)
    plan = ShardPlan.from_dict(payload["plan"])
    warm_hash = str(payload.get("warm_hash", ""))

    if args.shard_command == "status":
        status = shard_status(plan, args.root, warm_hash=warm_hash)
        print(plan.describe())
        print(f"cells ok {status['ok']}  error {status['error']}  "
              f"missing {status['missing']}  (root: {args.root})")
        print(f"site reports {status['reports_published']}"
              f"/{status['reports_expected']}; merged snapshot "
              f"{'published' if status['merged_published'] else 'missing'}")
        for desc in status["missing_cells"][:10]:
            print(f"  missing: {desc}")
        if status["missing"] > 10:
            print(f"  ... and {status['missing'] - 10} more")
        return 0 if status["missing"] == 0 and status["error"] == 0 else 1

    # merge
    registry = None
    if args.metrics:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    merge = merge_sharded(plan, args.root, warm_hash=warm_hash,
                          metrics=registry)
    print(plan.describe())
    print(merge.render(per_site=args.per_site))
    if args.metrics:
        _write_cli_metrics(registry, args.metrics)
    return 0


def _load_topo_spec(path: str):
    from repro.topo import TopoSpec

    with open(path, "r", encoding="utf-8") as fp:
        return TopoSpec.from_json(fp.read())


def _cmd_topo(args) -> int:
    import os

    from repro.topo import (
        CompiledTopology,
        compile_spec,
        export_itdk,
        generate,
        ingest_itdk,
        preset_spec,
    )

    if args.topo_command == "generate":
        if args.from_itdk:
            spec = ingest_itdk(args.from_itdk, name=args.name or "ingested",
                               prefix=args.prefix)
        else:
            spec = preset_spec(args.preset, seed=args.seed,
                               name=args.name or "")
        out = args.out or f"{spec.name}.topo.json"
        with open(out, "w", encoding="utf-8") as fp:
            fp.write(spec.to_json())
            fp.write("\n")
        stats = generate(spec).stats()
        shape = ", ".join(f"{k}={v}" for k, v in stats.items())
        print(f"wrote {out}: {spec.source} spec {spec.name!r} "
              f"(hash {spec.content_hash()[:12]}; {shape})")
        return 0

    if args.topo_command == "inspect":
        if args.path.endswith(".npz"):
            compiled = CompiledTopology.load(args.path)
            for key, value in compiled.describe().items():
                print(f"{key:>12}: {value}")
            print(f"{'digest':>12}: {compiled.content_digest()[:16]}")
        else:
            spec = _load_topo_spec(args.path)
            print(f"{'name':>12}: {spec.name}")
            print(f"{'source':>12}: {spec.source}")
            print(f"{'hash':>12}: {spec.content_hash()[:16]}")
            for key, value in generate(spec).stats().items():
                print(f"{key:>12}: {value}")
        return 0

    if args.topo_command == "compile":
        spec = _load_topo_spec(args.spec)
        compiled = compile_spec(spec, cache_dir=args.cache_dir,
                                routes=not args.no_routes)
        out = args.out or os.path.splitext(args.spec)[0] + ".npz"
        compiled.save(out)
        print(f"wrote {out}: {compiled.n_nodes} nodes, {compiled.n_links} "
              f"links, {compiled.n_routes} routes "
              f"(digest {compiled.content_digest()[:12]})")
        return 0

    # export
    spec = _load_topo_spec(args.spec)
    graph = generate(spec)
    files = export_itdk(graph, args.out, prefix=args.prefix)
    print(f"wrote {len(files)} snapshot file(s) to {args.out}")
    return 0


_COMMANDS = {
    "compare": _cmd_compare,
    "report": _cmd_report,
    "upload": _cmd_upload,
    "traceroute": _cmd_traceroute,
    "figure": _cmd_figure,
    "table": _cmd_table,
    "routeviews": _cmd_routeviews,
    "tiv": _cmd_tiv,
    "validate": _cmd_validate,
    "obs": _cmd_obs,
    "bench": _cmd_bench,
    "campaign": _cmd_campaign,
    "broker": _cmd_broker,
    "shard": _cmd_shard,
    "topo": _cmd_topo,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
