"""Simulated cloud-storage providers (Google Drive, Dropbox, OneDrive).

Each provider is a storage frontend (or several POPs) in the topology,
an OAuth2 token service, and a provider-specific **chunked upload
protocol** mirroring the real REST APIs the paper drives through the
official Java client libraries:

* Google Drive — resumable uploads (initiate + 8 MiB PUT chunks),
* Dropbox — upload sessions (start / 4 MiB append / finish),
* OneDrive — upload sessions with 10 MiB fragments.

Protocol structure matters because per-request overheads produce the
fixed-cost intercepts in the paper's transfer-time curves.
"""

from repro.cloud.http import FaultInjector, HttpsSession, RetryPolicy
from repro.cloud.oauth import AccessToken, OAuth2Server, TokenCache
from repro.cloud.provider import CloudProvider, UploadProtocol
from repro.cloud.storage import ObjectStore, StoredObject
from repro.cloud.gdrive import make_gdrive_protocol
from repro.cloud.dropbox import make_dropbox_protocol
from repro.cloud.onedrive import make_onedrive_protocol

__all__ = [
    "AccessToken",
    "CloudProvider",
    "FaultInjector",
    "HttpsSession",
    "OAuth2Server",
    "RetryPolicy",
    "ObjectStore",
    "StoredObject",
    "TokenCache",
    "UploadProtocol",
    "make_dropbox_protocol",
    "make_gdrive_protocol",
    "make_onedrive_protocol",
]
