"""Dropbox API model: upload sessions.

The Dropbox v2 API uploads large files through ``upload_session/start``,
repeated ``upload_session/append_v2`` calls, then
``upload_session/finish`` which commits the file metadata.  The official
Java SDK chunks at 4 MiB; the finish/commit step is comparatively heavy
(it lands the file in the user's namespace journal).
"""

from __future__ import annotations

from repro import units
from repro.cloud.provider import UploadProtocol

__all__ = ["make_dropbox_protocol", "DROPBOX_CHUNK_BYTES"]

DROPBOX_CHUNK_BYTES = 4 * units.MiB


def make_dropbox_protocol() -> UploadProtocol:
    """Cost parameters for Dropbox upload sessions."""
    return UploadProtocol(
        name="dropbox",
        chunk_bytes=DROPBOX_CHUNK_BYTES,
        session_init_server_s=0.18,
        per_chunk_server_s=0.05,
        commit_server_s=0.55,
        request_overhead_bytes=750,
        init_request_name="POST /2/files/upload_session/start",
        chunk_request_name="POST /2/files/upload_session/append_v2",
        commit_request_name="POST /2/files/upload_session/finish",
    )
