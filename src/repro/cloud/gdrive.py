"""Google Drive API model: resumable uploads.

The Drive v3 API uploads large files with the *resumable* protocol: an
initiating ``POST .../files?uploadType=resumable`` returns a session URI,
then the client PUTs chunks (multiples of 256 KiB; the official Java
client the paper uses defaults to 8 MiB via ``MediaHttpUploader``),
each answered with ``308 Resume Incomplete`` until the final ``200``.
"""

from __future__ import annotations

from repro import units
from repro.cloud.provider import UploadProtocol

__all__ = ["make_gdrive_protocol", "GDRIVE_CHUNK_BYTES"]

#: MediaHttpUploader.DEFAULT_CHUNK_SIZE in the official Java client.
GDRIVE_CHUNK_BYTES = 8 * units.MiB


def make_gdrive_protocol() -> UploadProtocol:
    """Cost parameters for Google Drive resumable uploads."""
    return UploadProtocol(
        name="gdrive",
        chunk_bytes=GDRIVE_CHUNK_BYTES,
        session_init_server_s=0.25,
        per_chunk_server_s=0.06,
        commit_server_s=0.35,
        request_overhead_bytes=900,
        init_request_name="POST /upload/drive/v3/files?uploadType=resumable",
        chunk_request_name="PUT {session_uri} (bytes {range})",
        commit_request_name="PUT {session_uri} (final chunk -> 200 + metadata)",
    )
