"""HTTPS request cost model: sessions, retries, fault injection.

Every provider API interaction is a small HTTPS exchange on a warm TLS
connection: one path RTT plus server processing.  :class:`HttpsSession`
centralizes that cost and adds the reliability behaviour real SDKs ship:
transient server errors (HTTP 429/500/503) are retried with exponential
backoff; persistent ones surface as :class:`~repro.errors.CloudApiError`.

:class:`FaultInjector` produces those transient errors deterministically
from a seeded RNG, so reliability tests and chaos benchmarks are
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CloudApiError
from repro.net.tcp import TcpModel, TcpPathParams
from repro.obs.metrics import MetricsRegistry
from repro.sim.kernel import Simulator

__all__ = ["RetryPolicy", "FaultInjector", "HttpsSession"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient API errors (SDK defaults)."""

    max_attempts: int = 4
    base_backoff_s: float = 0.5
    multiplier: float = 2.0
    retryable_statuses: Tuple[int, ...] = (429, 500, 502, 503)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise CloudApiError(500, "retry policy needs at least one attempt")
        if self.base_backoff_s < 0 or self.multiplier < 1:
            raise CloudApiError(500, "bad backoff parameters")

    def backoff_s(self, attempt: int) -> float:
        """Sleep before retry number *attempt* (1-based)."""
        return self.base_backoff_s * self.multiplier ** (attempt - 1)

    def is_retryable(self, status: int) -> bool:
        return status in self.retryable_statuses


class FaultInjector:
    """Deterministic transient-error source for one provider endpoint."""

    def __init__(
        self,
        rng: np.random.Generator,
        error_rate: float = 0.0,
        statuses: Sequence[int] = (503,),
    ):
        if not (0.0 <= error_rate < 1.0):
            raise CloudApiError(500, f"error rate must be in [0,1), got {error_rate}")
        if not statuses:
            raise CloudApiError(500, "need at least one fault status")
        self.rng = rng
        self.error_rate = error_rate
        self.statuses = tuple(statuses)
        self.injected = 0

    def roll(self) -> Optional[int]:
        """An HTTP error status for this request, or None for success."""
        if self.error_rate and float(self.rng.random()) < self.error_rate:
            self.injected += 1
            return int(self.statuses[int(self.rng.integers(len(self.statuses)))])
        return None


class HttpsSession:
    """A warm TLS connection to one endpoint, with retrying requests.

    Request bodies that matter for bandwidth (upload chunks) still flow
    through the network engine; this models the request/response control
    exchanges around them.
    """

    def __init__(
        self,
        sim: Simulator,
        tcp: TcpModel,
        params: TcpPathParams,
        fault: Optional[FaultInjector] = None,
        retry: RetryPolicy = RetryPolicy(),
        metrics: Optional[MetricsRegistry] = None,
        endpoint: str = "",
    ):
        self.sim = sim
        self.tcp = tcp
        self.params = params
        self.fault = fault
        self.retry = retry
        self.requests_sent = 0
        self.retries = 0
        self._connected = False
        self.endpoint = endpoint
        registry = metrics if metrics is not None else MetricsRegistry(enabled=False)
        self._m_requests = registry.counter(
            "repro_cloud_requests_total", "HTTPS control requests sent")
        self._m_retries = registry.counter(
            "repro_cloud_retries_total", "HTTPS requests retried after faults")

    def connect(self) -> Generator:
        """Coroutine: TCP + TLS handshakes (idempotent per session)."""
        if not self._connected:
            yield self.tcp.connect_time_s(self.params, tls=True)
            self._connected = True

    def request(self, server_time_s: float, label: str = "") -> Generator:
        """Coroutine: one control exchange, retried on transient errors.

        Returns the number of attempts used.  Raises
        :class:`CloudApiError` when retries are exhausted or the status
        is not retryable.
        """
        if not self._connected:
            yield from self.connect()
        for attempt in range(1, self.retry.max_attempts + 1):
            self.requests_sent += 1
            self._m_requests.inc(endpoint=self.endpoint)
            yield self.tcp.request_response_time_s(self.params, server_time_s)
            status = self.fault.roll() if self.fault is not None else None
            if status is None:
                return attempt
            if not self.retry.is_retryable(status):
                raise CloudApiError(status, f"{label or 'request'} failed (not retryable)")
            if attempt == self.retry.max_attempts:
                raise CloudApiError(
                    status, f"{label or 'request'} failed after {attempt} attempts"
                )
            self.retries += 1
            self._m_retries.inc(endpoint=self.endpoint)
            yield self.retry.backoff_s(attempt)
