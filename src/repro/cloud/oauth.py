"""OAuth2 authorization simulation.

All three providers in the case study use OAuth2 (paper Sec. II).  For
transfer timing the part that matters is the token round-trip on first
use — it makes a client's first run slower, which is one reason the
paper's methodology discards the first runs ("mean of the last five runs
among a total of seven").  We model the client-credentials/refresh flow:
a token endpoint that issues expiring bearer tokens, plus a client-side
cache.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import AuthError

__all__ = ["AccessToken", "OAuth2Server", "TokenCache"]


@dataclass(frozen=True)
class AccessToken:
    """A bearer token with an absolute expiry (simulated seconds)."""

    value: str
    client_id: str
    issued_at: float
    expires_at: float
    scope: str = "storage.readwrite"

    def valid_at(self, now: float) -> bool:
        return now < self.expires_at


class OAuth2Server:
    """Token endpoint for one provider."""

    def __init__(self, provider_name: str, token_lifetime_s: float = 3600.0):
        if token_lifetime_s <= 0:
            raise AuthError("token lifetime must be positive")
        self.provider_name = provider_name
        self.token_lifetime_s = token_lifetime_s
        self._clients: Dict[str, str] = {}
        self._serial = itertools.count(1)
        self._issued: Dict[str, AccessToken] = {}

    def register_client(self, client_id: str) -> str:
        """App registration; returns the client secret."""
        if client_id in self._clients:
            raise AuthError(f"client {client_id!r} already registered")
        secret = f"secret-{self.provider_name}-{client_id}"
        self._clients[client_id] = secret
        return secret

    def ensure_client(self, client_id: str) -> str:
        """Idempotent registration: returns the existing secret if any."""
        existing = self._clients.get(client_id)
        if existing is not None:
            return existing
        return self.register_client(client_id)

    def issue_token(self, client_id: str, client_secret: str, now: float) -> AccessToken:
        """Client-credentials grant -> access token."""
        expected = self._clients.get(client_id)
        if expected is None:
            raise AuthError(f"unknown client {client_id!r}")
        if client_secret != expected:
            raise AuthError(f"bad credentials for client {client_id!r}")
        token = AccessToken(
            value=f"{self.provider_name}-tok-{next(self._serial)}",
            client_id=client_id,
            issued_at=now,
            expires_at=now + self.token_lifetime_s,
        )
        self._issued[token.value] = token
        return token

    def validate(self, token_value: str, now: float) -> AccessToken:
        """Resource-server side check; raises :class:`AuthError` if bad."""
        token = self._issued.get(token_value)
        if token is None:
            raise AuthError("unknown access token")
        if not token.valid_at(now):
            raise AuthError("access token expired")
        return token

    def revoke(self, token_value: str) -> None:
        self._issued.pop(token_value, None)


class TokenCache:
    """Client-side cache of bearer tokens, keyed by (host, provider)."""

    def __init__(self) -> None:
        self._tokens: Dict[Tuple[str, str], AccessToken] = {}

    def get_valid(self, host: str, provider: str, now: float) -> Optional[AccessToken]:
        token = self._tokens.get((host, provider))
        if token is not None and token.valid_at(now):
            return token
        return None

    def store(self, host: str, provider: str, token: AccessToken) -> None:
        self._tokens[(host, provider)] = token

    def clear(self) -> None:
        self._tokens.clear()

    def __len__(self) -> int:
        return len(self._tokens)
