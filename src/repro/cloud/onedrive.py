"""Microsoft OneDrive API model: upload sessions with fragments.

OneDrive (Live SDK era, as used by the paper's modified open-source Java
client) uploads via ``createUploadSession`` followed by ranged PUTs of
*fragments* that must be multiples of 320 KiB; 10 MiB (32 x 320 KiB) is
the conventional fragment size.  The final fragment's response carries
the created item.
"""

from __future__ import annotations

from repro import units
from repro.cloud.provider import UploadProtocol

__all__ = ["make_onedrive_protocol", "ONEDRIVE_FRAGMENT_BYTES"]

#: 32 x 320 KiB — the documented fragment-size granularity.
ONEDRIVE_FRAGMENT_BYTES = 10 * units.MiB


def make_onedrive_protocol() -> UploadProtocol:
    """Cost parameters for OneDrive fragment uploads."""
    assert ONEDRIVE_FRAGMENT_BYTES % (320 * units.KiB) == 0
    return UploadProtocol(
        name="onedrive",
        chunk_bytes=ONEDRIVE_FRAGMENT_BYTES,
        session_init_server_s=0.30,
        per_chunk_server_s=0.08,
        commit_server_s=0.40,
        request_overhead_bytes=850,
        init_request_name="POST /drive/root:/{path}:/createUploadSession",
        chunk_request_name="PUT {uploadUrl} Content-Range: bytes {range}",
        commit_request_name="PUT {uploadUrl} (final fragment -> 201 item)",
    )
