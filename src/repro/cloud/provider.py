"""Cloud provider abstraction: POPs, API endpoints, upload protocols.

A :class:`CloudProvider` ties together the provider's presence in the
topology (one or more frontend host nodes — points of presence), its
OAuth2 token service, its object store, and the shape of its chunked
upload protocol.  Provider-specific factories live in
:mod:`repro.cloud.gdrive`, :mod:`repro.cloud.dropbox`,
:mod:`repro.cloud.onedrive`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import CloudApiError
from repro.cloud.oauth import OAuth2Server
from repro.cloud.storage import ObjectStore
from repro.net.dns import DnsResolver

__all__ = ["UploadProtocol", "CloudProvider"]


@dataclass(frozen=True)
class UploadProtocol:
    """Cost-relevant shape of a provider's chunked upload API.

    ``*_server_s`` are mean server-side processing times; the client
    model jitters them per request (lognormal, ``server_jitter_sigma``).
    ``request_overhead_bytes`` rides along with every chunk on the wire
    (HTTP headers, multipart framing).
    """

    name: str
    chunk_bytes: int
    session_init_server_s: float
    per_chunk_server_s: float
    commit_server_s: float
    request_overhead_bytes: int = 800
    auth_server_s: float = 0.25
    server_jitter_sigma: float = 0.10
    init_request_name: str = "POST /upload/session"
    chunk_request_name: str = "PUT /upload/session/{index}"
    commit_request_name: str = "POST /upload/commit"

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise CloudApiError(500, f"{self.name}: chunk size must be positive")
        for attr in ("session_init_server_s", "per_chunk_server_s", "commit_server_s",
                     "auth_server_s"):
            if getattr(self, attr) < 0:
                raise CloudApiError(500, f"{self.name}: {attr} must be non-negative")

    def chunk_sizes(self, total_bytes: float) -> List[float]:
        """Split an upload into protocol chunks (last one may be short)."""
        if total_bytes <= 0:
            raise CloudApiError(400, "upload size must be positive")
        n_full = int(total_bytes // self.chunk_bytes)
        sizes = [float(self.chunk_bytes)] * n_full
        tail = total_bytes - n_full * self.chunk_bytes
        if tail > 0:
            sizes.append(float(tail))
        return sizes


class CloudProvider:
    """One cloud-storage service in the simulated world."""

    def __init__(
        self,
        name: str,
        display_name: str,
        api_hostname: str,
        auth_hostname: str,
        frontend_nodes: Sequence[str],
        protocol: UploadProtocol,
        token_lifetime_s: float = 3600.0,
    ):
        if not frontend_nodes:
            raise CloudApiError(500, f"provider {name!r} needs at least one frontend")
        self.name = name
        self.display_name = display_name
        self.api_hostname = api_hostname
        self.auth_hostname = auth_hostname
        self.frontend_nodes = list(frontend_nodes)
        self.protocol = protocol
        self.oauth = OAuth2Server(name, token_lifetime_s)
        self.store = ObjectStore(name)
        # reliability behaviour (see repro.cloud.http); tests and chaos
        # benches install a FaultInjector here
        from repro.cloud.http import RetryPolicy

        self.fault_injector = None
        self.retry_policy = RetryPolicy()

    def register_in_dns(self, dns: DnsResolver) -> None:
        """Publish the API and auth hostnames (geo-balanced over POPs)."""
        dns.add_geo_record(self.api_hostname, self.frontend_nodes)
        dns.add_geo_record(self.auth_hostname, self.frontend_nodes)

    def frontend_for(self, dns: DnsResolver, client_node: str) -> str:
        """The POP a given client is steered to."""
        return dns.resolve(self.api_hostname, client_node=client_node)

    def __str__(self) -> str:
        return f"<CloudProvider {self.name} ({len(self.frontend_nodes)} POPs)>"
