"""Server-side object store backing each simulated provider."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import CloudApiError

__all__ = ["StoredObject", "ObjectStore"]


@dataclass(frozen=True)
class StoredObject:
    """Metadata for one stored file."""

    path: str
    size_bytes: int
    digest: str
    owner: str
    modified_at: float
    revision: int = 1


class ObjectStore:
    """A provider's storage namespace (flat paths, per-owner views)."""

    def __init__(self, provider_name: str):
        self.provider_name = provider_name
        self._objects: Dict[str, StoredObject] = {}

    def put(self, path: str, size_bytes: int, digest: str, owner: str, now: float) -> StoredObject:
        if size_bytes < 0:
            raise CloudApiError(400, f"negative size for {path!r}")
        prev = self._objects.get(path)
        obj = StoredObject(
            path=path,
            size_bytes=size_bytes,
            digest=digest,
            owner=owner,
            modified_at=now,
            revision=prev.revision + 1 if prev else 1,
        )
        self._objects[path] = obj
        return obj

    def get(self, path: str) -> StoredObject:
        obj = self._objects.get(path)
        if obj is None:
            raise CloudApiError(404, f"no such object {path!r}")
        return obj

    def exists(self, path: str) -> bool:
        return path in self._objects

    def delete(self, path: str) -> None:
        if path not in self._objects:
            raise CloudApiError(404, f"no such object {path!r}")
        del self._objects[path]

    def list(self, owner: Optional[str] = None) -> List[StoredObject]:
        objs = sorted(self._objects.values(), key=lambda o: o.path)
        if owner is not None:
            objs = [o for o in objs if o.owner == owner]
        return objs

    def total_bytes(self) -> int:
        return sum(o.size_bytes for o in self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)
