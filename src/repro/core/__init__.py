"""Routing detours: the paper's primary contribution.

Given a client, a cloud-storage provider, and a set of candidate
intermediate nodes (DTNs), this package plans and executes uploads over:

* the **direct route** (provider API straight from the client), or
* a **routing detour** (rsync to a DTN, provider API from the DTN) —
  store-and-forward as in the paper, or pipelined as our extension.

It also implements what the paper leaves as future work: automatic
detour-selection algorithms (:mod:`repro.core.selection`) and dynamic
bottleneck monitoring with mid-transfer rerouting
(:mod:`repro.core.monitor`).
"""

from repro.core.atomic import (
    atomic_write,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.core.executor import LegResult, PlanExecutor, PlanResult
from repro.core.monitor import BottleneckMonitor, MonitoredResult, MonitoredUpload, SegmentRecord
from repro.core.multipath import MultipathResult, MultipathUpload, PartResult
from repro.core.planner import DetourPlanner, PlannedUpload, RouteComparison, RouteMeasurement
from repro.core.routes import DetourRoute, DirectRoute, Route, TransferPlan
from repro.core.selection import (
    HistorySelector,
    OracleSelector,
    ProbeSelector,
    SelectionContext,
    Selector,
)
from repro.core.world import World

__all__ = [
    "BottleneckMonitor",
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "DetourPlanner",
    "DetourRoute",
    "DirectRoute",
    "HistorySelector",
    "LegResult",
    "MonitoredResult",
    "MonitoredUpload",
    "MultipathResult",
    "MultipathUpload",
    "OracleSelector",
    "PartResult",
    "PlanExecutor",
    "PlanResult",
    "PlannedUpload",
    "ProbeSelector",
    "Route",
    "RouteComparison",
    "RouteMeasurement",
    "SegmentRecord",
    "SelectionContext",
    "Selector",
    "TransferPlan",
    "World",
]
