"""The sanctioned atomic-write protocol: temp file + ``os.replace``.

Every durable artifact in the tree — campaign store records, shared
directory-tier documents, shard run files, compiled-route caches, the
lint cache — is written by *racing writers*: pool children, shard
workers, and the parent process all persist state concurrently, and any
of them can be killed mid-write.  POSIX ``rename(2)`` is atomic within a
filesystem, so the one safe shape is: write the full payload to a
process-unique temp file in the destination directory, then
``os.replace`` it over the final name.  A reader sees either the old
complete document or the new complete document, never a torn one.

This module is the *only* sanctioned implementation of that shape; the
``SL1002`` lint rule (:mod:`repro.lint.rules.conc`) flags hand-rolled
copies and non-atomic durable writes elsewhere, and ``repro lint --fix``
rewrites simple ones to call in here.

* :func:`atomic_write_text` / :func:`atomic_write_bytes` /
  :func:`atomic_write_json` — one-shot replacements for
  ``Path.write_text`` / ``Path.write_bytes`` / ``json.dump``.
* :func:`atomic_write` — a context manager yielding the temp path, for
  writers that need a real file on disk (``np.savez``, incremental
  serializers).  The replace happens on clean exit; on an exception the
  temp file is removed and nothing is published.

Temp names are ``<final name>.<pid>.tmp`` (plus a caller suffix when the
serializer is picky about extensions, e.g. ``.npz``), so concurrent
writers in different processes never collide and stale temp files from
killed writers are recognizable — ``*.tmp`` globs inside artifact
directories (see ``DirectoryFileTier.clean_tmp``) sweep them without
ever matching a published document.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

__all__ = [
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
]


def _tmp_path(path: Path, suffix: str) -> Path:
    return path.with_name(f"{path.name}.{os.getpid()}.tmp{suffix}")


@contextmanager
def atomic_write(path: Union[str, Path], suffix: str = "",
                 mkdir: bool = False) -> Iterator[Path]:
    """Yield a temp path; atomically publish it over *path* on success.

    *suffix* is appended to the temp name for serializers that insist on
    an extension (``np.savez`` appends ``.npz`` to anything else).  With
    ``mkdir=True`` the destination directory is created first.  On an
    exception inside the block the temp file is deleted and *path* is
    left untouched.
    """
    path = Path(path)
    if mkdir:
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_path(path, suffix)
    try:
        yield tmp
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: Union[str, Path], data: bytes,
                       mkdir: bool = False) -> Path:
    """Atomically write *data* to *path*; returns the final path."""
    path = Path(path)
    with atomic_write(path, mkdir=mkdir) as tmp:
        tmp.write_bytes(data)
    return path


def atomic_write_text(path: Union[str, Path], text: str,
                      encoding: str = "utf-8", mkdir: bool = False) -> Path:
    """Atomically write *text* to *path*; returns the final path."""
    return atomic_write_bytes(path, text.encode(encoding), mkdir=mkdir)


def atomic_write_json(path: Union[str, Path], payload: object, *,
                      sort_keys: bool = True, indent=None, separators=None,
                      trailing_newline: bool = True,
                      mkdir: bool = False) -> Path:
    """Atomically serialize *payload* as JSON to *path*.

    The keyword knobs mirror ``json.dumps`` so existing writers migrate
    byte-identically (the shard byte-identity suite pins exact bytes).
    """
    blob = json.dumps(payload, sort_keys=sort_keys, indent=indent,
                      separators=separators)
    if trailing_newline:
        blob += "\n"
    return atomic_write_text(path, blob, mkdir=mkdir)
