"""Plan execution: run direct and detoured uploads in a World.

Reproduces the paper's measurement procedure exactly:

* **direct** — provider API from the client,
* **detour (store-and-forward)** — the staged file is deleted from the
  DTN first (no rsync delta advantage), then ``rsync`` client -> DTN,
  then the provider API DTN -> cloud; total time is the sum of the legs,
* **detour (pipelined)** — extension: the two legs overlap chunk by
  chunk through the DTN's staging buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import units
from repro.cloud.provider import CloudProvider
from repro.core.routes import DetourRoute, DirectRoute, TransferPlan
from repro.core.world import World
from repro.errors import TransferError
from repro.net.tcp import TcpPathParams
from repro.transfer.api_client import CloudClient, UploadReport
from repro.transfer.dtn import RelayMode, pipelined_relay
from repro.transfer.files import FileSpec
from repro.transfer.rsync import RsyncSession

__all__ = ["LegResult", "PlanResult", "PlanExecutor"]


@dataclass(frozen=True)
class LegResult:
    """One leg of a plan (rsync hop or API upload)."""

    kind: str  # "rsync" | "api"
    src: str
    dst: str
    duration_s: float
    payload_bytes: float

    @property
    def throughput_bps(self) -> float:
        return units.throughput_bps(self.payload_bytes, self.duration_s)


@dataclass(frozen=True)
class PlanResult:
    """Outcome of executing one :class:`TransferPlan`."""

    plan: TransferPlan
    start_time: float
    end_time: float
    legs: Tuple[LegResult, ...]
    token_fetched: bool = False

    @property
    def total_s(self) -> float:
        return self.end_time - self.start_time

    @property
    def throughput_bps(self) -> float:
        return units.throughput_bps(self.plan.file.size_bytes, self.total_s)

    def describe(self) -> str:
        legs = ", ".join(
            f"{leg.kind} {leg.src}->{leg.dst}: {leg.duration_s:.2f}s" for leg in self.legs
        )
        return f"{self.plan.describe()}: {self.total_s:.2f}s ({legs})"


class PlanExecutor:
    """Executes transfer plans inside one :class:`World`."""

    def __init__(self, world: World):
        self.world = world
        self.cloud_client = CloudClient(
            sim=world.sim,
            engine=world.engine,
            router=world.router,
            dns=world.dns,
            tcp=world.tcp,
            token_cache=world.token_cache,
            rng=world.rng.stream("api.jitter"),
            metrics=world.metrics,
            spans=world.spans,
        )
        self.rsync = RsyncSession(world.engine, world.router, world.tcp)
        self.spans = world.spans
        self._m_plans = world.metrics.counter(
            "repro_executor_plans_total", "Transfer plans executed")
        self._m_plan_s = world.metrics.histogram(
            "repro_executor_plan_seconds", "End-to-end plan duration")
        self._m_leg_s = world.metrics.histogram(
            "repro_executor_leg_seconds", "Per-leg duration")

    def _record(self, plan: TransferPlan, result: "PlanResult") -> "PlanResult":
        self._m_plans.inc(route=plan.route.describe(), provider=plan.provider_name)
        self._m_plan_s.observe(result.total_s, route=plan.route.describe())
        for leg in result.legs:
            self._m_leg_s.observe(leg.duration_s, kind=leg.kind)
        return result

    # -- public API -----------------------------------------------------------

    def execute(self, plan: TransferPlan):
        """Kernel coroutine: run *plan*; returns a :class:`PlanResult`."""
        with self.spans.span(
            "core.executor", f"plan:{plan.route.describe()}",
            client=plan.client_site, provider=plan.provider_name,
            bytes=int(plan.file.size_bytes),
        ):
            if isinstance(plan.route, DirectRoute):
                result = yield from self._execute_direct(plan)
            elif plan.route.mode is RelayMode.STORE_AND_FORWARD:
                result = yield from self._execute_store_and_forward(plan)
            else:
                result = yield from self._execute_pipelined(plan)
        return self._record(plan, result)

    def run(self, plan: TransferPlan, horizon_s: float = 1e7) -> PlanResult:
        """Convenience wrapper: spawn, simulate to completion, return."""
        proc = self.world.sim.process(self.execute(plan), name=f"plan:{plan.describe()}")
        self.world.sim.run_until_triggered(proc.done, horizon=self.world.sim.now + horizon_s)
        if not proc.finished:
            raise TransferError(f"plan did not finish within {horizon_s}s: {plan.describe()}")
        return proc.result

    # -- downloads ---------------------------------------------------------

    def execute_download(self, plan: TransferPlan, remote_path: Optional[str] = None):
        """Kernel coroutine: fetch ``remote_path`` (default: the plan's
        file name) *to* the client, over the plan's route.

        Detoured downloads mirror detoured uploads: the DTN pulls from the
        provider API, then rsyncs to the client.  The paper benchmarks
        uploads; downloads exercise the same machinery in reverse and are
        reported as an extension.
        """
        world = self.world
        start = world.sim.now
        client_host = world.host_of(plan.client_site)
        provider = world.provider(plan.provider_name)
        path = remote_path or plan.file.name

        if isinstance(plan.route, DirectRoute):
            report = yield from self.cloud_client.download(client_host, provider, path)
            leg = LegResult("api", report.frontend, client_host,
                            report.duration_s, report.size_bytes)
            return PlanResult(plan, start, world.sim.now, (leg,))

        if plan.route.mode is not RelayMode.STORE_AND_FORWARD:
            raise TransferError("pipelined detoured downloads are not supported")
        dtn = world.dtn_of(plan.route.via_site)
        leg1_start = world.sim.now
        report = yield from self.cloud_client.download(dtn.host, provider, path)
        leg1 = LegResult("api", report.frontend, dtn.host,
                         world.sim.now - leg1_start, report.size_bytes)
        staged = FileSpec(path, report.size_bytes, seed=plan.file.seed)
        dtn.stage(staged, now=world.sim.now)
        leg2_start = world.sim.now
        yield from self.rsync.push(dtn.host, client_host, staged)
        leg2 = LegResult("rsync", dtn.host, client_host,
                         world.sim.now - leg2_start, report.size_bytes)
        return PlanResult(plan, start, world.sim.now, (leg1, leg2))

    # -- direct --------------------------------------------------------------

    def _execute_direct(self, plan: TransferPlan):
        world = self.world
        start = world.sim.now
        client_host = world.host_of(plan.client_site)
        provider = world.provider(plan.provider_name)
        with self.spans.span("core.executor", "leg:api",
                             src=client_host, provider=provider.name):
            report: UploadReport = yield from self.cloud_client.upload(
                client_host, provider, plan.file
            )
        leg = LegResult(
            "api", client_host, report.frontend, report.duration_s, plan.file.size_bytes
        )
        return PlanResult(plan, start, world.sim.now, (leg,), report.token_fetched)

    # -- store-and-forward detour ---------------------------------------------

    def _execute_store_and_forward(self, plan: TransferPlan):
        world = self.world
        start = world.sim.now
        client_host = world.host_of(plan.client_site)
        provider = world.provider(plan.provider_name)
        dtn = world.dtn_of(plan.route.via_site)

        # Honor the DTN's concurrent-session limit: the slot covers both
        # legs (the staged file occupies the DTN until it is uploaded).
        slot = None
        if dtn.sessions is not None:
            slot = yield from dtn.sessions.acquire()
        try:
            # Paper protocol: "files on the Intermediate Node(s) are always
            # deleted before benchmarking".
            dtn.delete(plan.file.name)

            leg1_start = world.sim.now
            with self.spans.span("core.executor", "leg:rsync",
                                 src=client_host, dst=dtn.host):
                yield from self.rsync.push(client_host, dtn.host, plan.file)
            dtn.stage(plan.file, now=world.sim.now)
            leg1 = LegResult(
                "rsync", client_host, dtn.host, world.sim.now - leg1_start,
                plan.file.size_bytes
            )

            leg2_start = world.sim.now
            with self.spans.span("core.executor", "leg:api",
                                 src=dtn.host, provider=provider.name):
                report: UploadReport = yield from self.cloud_client.upload(
                    dtn.host, provider, plan.file
                )
            leg2 = LegResult(
                "api", dtn.host, report.frontend, world.sim.now - leg2_start,
                plan.file.size_bytes
            )
        finally:
            if slot is not None:
                dtn.sessions.release(slot)
        return PlanResult(plan, start, world.sim.now, (leg1, leg2), report.token_fetched)

    # -- pipelined detour (extension) ------------------------------------------

    def _execute_pipelined(self, plan: TransferPlan):
        world = self.world
        sim = world.sim
        start = sim.now
        client_host = world.host_of(plan.client_site)
        provider = world.provider(plan.provider_name)
        proto = provider.protocol
        dtn = world.dtn_of(plan.route.via_site)
        dtn.delete(plan.file.name)

        # hop 1 path (rsync-style stream) and hop 2 path (API)
        in_path = world.router.resolve(client_host, dtn.host)
        in_params = TcpPathParams(rtt_s=in_path.rtt_s, loss=in_path.loss)
        in_dirs = world.router.path_directions(in_path)
        in_ceiling = min(world.tcp.rate_ceiling_bps(in_params), in_path.per_flow_cap_bps)

        frontend = provider.frontend_for(world.dns, dtn.host)
        out_path = world.router.resolve(dtn.host, frontend)
        out_params = TcpPathParams(rtt_s=out_path.rtt_s, loss=out_path.loss)
        out_dirs = world.router.path_directions(out_path)
        out_ceiling = min(world.tcp.rate_ceiling_bps(out_params), out_path.per_flow_cap_bps)

        jitter_rng = world.rng.stream("api.jitter")

        def jitter(mean: float) -> float:
            if mean <= 0 or proto.server_jitter_sigma <= 0:
                return mean
            return mean * float(np.exp(jitter_rng.normal(0.0, proto.server_jitter_sigma)))

        # setup: rsync handshakes on hop 1 + token/TLS/init on hop 2 (in series
        # from the relay's perspective, since the relay must be reachable first)
        yield world.tcp.connect_time_s(in_params)
        yield RsyncSession.SSH_HANDSHAKE_RTTS * in_params.rtt_s
        token, token_fetched = yield from self.cloud_client._ensure_token(
            dtn.host, provider, []
        )
        yield world.tcp.connect_time_s(out_params, tls=True)
        yield world.tcp.request_response_time_s(out_params, jitter(proto.session_init_server_s))

        def leg_in(chunk_bytes: float, index: int):
            transfer = world.engine.start_transfer(
                in_dirs, chunk_bytes,
                ceiling_bps=in_ceiling,
                label=f"relay-in:{plan.file.name}#{index}",
            )
            yield transfer.done

        def leg_out(chunk_bytes: float, index: int):
            transfer = world.engine.start_transfer(
                out_dirs, chunk_bytes + proto.request_overhead_bytes,
                ceiling_bps=out_ceiling,
                label=f"relay-out:{plan.file.name}#{index}",
            )
            yield transfer.done
            yield out_params.rtt_s + jitter(proto.per_chunk_server_s)

        relay_start = sim.now
        with self.spans.span("core.executor", "leg:relay",
                             src=client_host, dst=frontend):
            yield from pipelined_relay(
                sim,
                total_bytes=float(plan.file.size_bytes),
                leg_in=leg_in,
                leg_out=leg_out,
                chunk_bytes=float(proto.chunk_bytes),
            )

        # commit (refreshing the bearer token if the relay outlived it)
        token = yield from self.cloud_client._refresh_if_expired(
            dtn.host, provider, token, []
        )
        yield world.tcp.request_response_time_s(out_params, jitter(proto.commit_server_s))
        # The commit round trip itself takes time: a token valid when the
        # request went out can be expired by the time the server checks it.
        token = yield from self.cloud_client._refresh_if_expired(
            dtn.host, provider, token, []
        )
        provider.oauth.validate(token.value, sim.now)
        provider.store.put(
            plan.file.name, plan.file.size_bytes, plan.file.content_digest(),
            owner=dtn.host, now=sim.now,
        )
        dtn.stage(plan.file, now=sim.now)
        leg = LegResult(
            "relay", client_host, frontend, sim.now - relay_start, plan.file.size_bytes
        )
        return PlanResult(plan, start, sim.now, (leg,), token_fetched)
