"""Dynamic bottleneck monitoring and mid-transfer rerouting.

The paper's stated future work: "to monitor and bypass dynamic
bottlenecks on the WAN".  Two pieces:

* :class:`BottleneckMonitor` — periodically probes every candidate route
  with small transfers and keeps EWMA throughput estimates,
* :class:`MonitoredUpload` — splits a large upload into segments and
  re-selects the best route before each segment, switching when another
  route looks at least ``switch_threshold`` times faster (hysteresis
  against probe noise and switch costs).

Each segment is an independent upload session (after a switch, a new
session starts from the new source), which matches how one would resume
with these providers' session-URI upload APIs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.core.executor import PlanExecutor
from repro.core.routes import DetourRoute, DirectRoute, Route, TransferPlan
from repro.core.world import World
from repro.errors import SelectionError
from repro.transfer.files import FileSpec

__all__ = ["BottleneckMonitor", "MonitoredUpload", "SegmentRecord", "MonitoredResult"]


class BottleneckMonitor:
    """EWMA route-throughput estimates refreshed by small probe transfers."""

    def __init__(
        self,
        world: World,
        client_site: str,
        provider_name: str,
        candidate_vias: Sequence[str],
        probe_bytes: int = units.MB,
        alpha: float = 0.4,
    ):
        if probe_bytes <= 0:
            raise SelectionError("probe size must be positive")
        if not (0 < alpha <= 1):
            raise SelectionError("alpha must be in (0, 1]")
        self.world = world
        self.client_site = client_site
        self.provider_name = provider_name
        self.candidate_vias = tuple(candidate_vias)
        self.probe_bytes = probe_bytes
        self.alpha = alpha
        self.executor = PlanExecutor(world)
        self._estimate_bps: Dict[str, float] = {}
        self._probe_serial = 0
        #: callbacks fired (with the route's describe() string) whenever a
        #: route is found or declared dead — the broker's route directory
        #: subscribes here to invalidate its cached recommendations.
        self._dead_listeners: List[Callable[[str], None]] = []
        self._m_probes = world.metrics.counter(
            "repro_monitor_probes_total", "Route probes issued")
        self._m_probe_failures = world.metrics.counter(
            "repro_monitor_probe_failures_total", "Probes that found a dead route")
        self._m_estimate = world.metrics.gauge(
            "repro_monitor_route_estimate_bps", "EWMA throughput estimate per route")

    def routes(self) -> List[Route]:
        routes: List[Route] = [DirectRoute()]
        routes.extend(DetourRoute(via) for via in self.candidate_vias)
        return routes

    def estimate_bps(self, route: Route) -> Optional[float]:
        return self._estimate_bps.get(route.describe())

    def on_dead(self, callback: Callable[[str], None]) -> None:
        """Subscribe to dead-route events (probe failures and mark_dead)."""
        self._dead_listeners.append(callback)

    def _notify_dead(self, route_descr: str) -> None:
        for callback in self._dead_listeners:
            callback(route_descr)

    def probe(self, route: Route):
        """Coroutine: run one probe over *route*; updates its estimate.

        A route that no longer resolves (link failure, withdrawn prefix)
        is recorded at zero throughput instead of raising — a dead route
        is exactly what the monitor exists to notice.
        """
        from repro.errors import RoutingError

        self._probe_serial += 1
        spec = FileSpec(f"monitor-probe-{self._probe_serial}.bin", self.probe_bytes)
        plan = TransferPlan(self.client_site, self.provider_name, spec, route)
        key = route.describe()
        world = self.world
        self._m_probes.inc(route=key)
        with world.spans.span("core.monitor", f"probe:{key}",
                              bytes=self.probe_bytes) as probe_span:
            try:
                result = yield from self.executor.execute(plan)
            except RoutingError:
                self._estimate_bps[key] = 0.0
                self._m_probe_failures.inc(route=key)
                self._m_estimate.set(0.0, route=key)
                probe_span.annotate(dead=True)
                world.tracer.emit(world.sim.now, "core.monitor", "probe_failed",
                                  route=key)
                self._notify_dead(key)
                return 0.0
        observed = units.throughput_bps(self.probe_bytes, result.total_s)
        old = self._estimate_bps.get(key)
        self._estimate_bps[key] = (
            observed if old is None else (1 - self.alpha) * old + self.alpha * observed
        )
        self._m_estimate.set(self._estimate_bps[key], route=key)
        world.tracer.emit(world.sim.now, "core.monitor", "probe_done",
                          route=key, observed_bps=round(observed, 3),
                          estimate_bps=round(self._estimate_bps[key], 3))
        return observed

    def mark_dead(self, route: Route) -> None:
        """Externally declare a route dead (e.g. a timed-out segment)."""
        key = route.describe()
        self._estimate_bps[key] = 0.0
        self._m_estimate.set(0.0, route=key)
        self.world.tracer.emit(self.world.sim.now, "core.monitor", "route_dead",
                               route=key)
        self._notify_dead(key)

    def probe_all(self):
        """Coroutine: probe every route once (serially)."""
        for route in self.routes():
            yield from self.probe(route)
        return dict(self._estimate_bps)

    def best_route(self) -> Route:
        """Best-estimated route; unseen routes rank last."""
        routes = self.routes()
        seen = [r for r in routes if self.estimate_bps(r) is not None]
        if not seen:
            raise SelectionError("no probe data yet; run probe_all first")
        best = max(seen, key=lambda r: self.estimate_bps(r))
        if self.estimate_bps(best) <= 0:
            raise SelectionError("every candidate route is currently dead")
        return best


@dataclass(frozen=True)
class SegmentRecord:
    """One segment (attempt) of a monitored upload."""

    index: int
    route_descr: str
    size_bytes: int
    duration_s: float
    switched: bool
    completed: bool = True


@dataclass(frozen=True)
class MonitoredResult:
    """Outcome of a monitored, dynamically-rerouted upload."""

    file_name: str
    total_s: float
    segments: Tuple[SegmentRecord, ...]

    @property
    def switch_count(self) -> int:
        return sum(1 for s in self.segments if s.switched)

    @property
    def routes_used(self) -> List[str]:
        out: List[str] = []
        for seg in self.segments:
            if not out or out[-1] != seg.route_descr:
                out.append(seg.route_descr)
        return out


class MonitoredUpload:
    """Segment-by-segment upload with dynamic route re-selection."""

    def __init__(
        self,
        monitor: BottleneckMonitor,
        segment_bytes: int = 10 * units.MB,
        switch_threshold: float = 1.3,
        reprobe_every: int = 1,
        segment_timeout_s: Optional[float] = None,
        max_retries_per_segment: int = 3,
    ):
        if segment_bytes <= 0:
            raise SelectionError("segment size must be positive")
        if switch_threshold < 1.0:
            raise SelectionError("switch threshold must be >= 1 (hysteresis)")
        if reprobe_every < 1:
            raise SelectionError("reprobe interval must be >= 1 segment")
        if segment_timeout_s is not None and segment_timeout_s <= 0:
            raise SelectionError("segment timeout must be positive")
        if max_retries_per_segment < 1:
            raise SelectionError("need at least one attempt per segment")
        self.monitor = monitor
        self.segment_bytes = segment_bytes
        self.switch_threshold = switch_threshold
        self.reprobe_every = reprobe_every
        #: abort a segment that exceeds this and reroute (None = wait forever)
        self.segment_timeout_s = segment_timeout_s
        self.max_retries_per_segment = max_retries_per_segment
        metrics = monitor.world.metrics
        self._m_segments = metrics.counter(
            "repro_monitor_segments_total", "Monitored-upload segments run")
        self._m_retries = metrics.counter(
            "repro_monitor_segment_retries_total", "Segment attempts retried")
        self._m_switches = metrics.counter(
            "repro_monitor_route_switches_total", "Mid-transfer route switches")

    def run(self, spec: FileSpec):
        """Coroutine: upload *spec*; returns a :class:`MonitoredResult`."""
        world = self.monitor.world
        start = world.sim.now
        with world.spans.span("core.monitor", f"monitored_upload:{spec.name}",
                              bytes=int(spec.size_bytes)):
            yield from self.monitor.probe_all()
            current = self.monitor.best_route()

            remaining = spec.size_bytes
            segments: List[SegmentRecord] = []
            index = 0
            attempt = 0
            retries = 0
            while remaining > 0:
                if index > 0 and index % self.reprobe_every == 0:
                    yield from self.monitor.probe_all()
                    best = self.monitor.best_route()
                    cur_est = self.monitor.estimate_bps(current) or 0.0
                    best_est = self.monitor.estimate_bps(best) or 0.0
                    switched = (
                        best.describe() != current.describe()
                        and best_est > self.switch_threshold * cur_est
                    )
                    if switched:
                        self._m_switches.inc()
                        world.tracer.emit(
                            world.sim.now, "core.monitor", "route_switch",
                            segment=index, old=current.describe(),
                            new=best.describe(),
                        )
                        current = best
                else:
                    switched = False
                size = int(min(self.segment_bytes, remaining))
                seg_spec = FileSpec(f"{spec.name}.seg{index}a{attempt}", size,
                                    spec.entropy, spec.seed + index)
                plan = TransferPlan(
                    self.monitor.client_site, self.monitor.provider_name, seg_spec,
                    current
                )
                seg_start = world.sim.now
                self._m_segments.inc(route=current.describe())
                with world.spans.span("core.monitor", f"segment#{index}",
                                      route=current.describe(),
                                      bytes=size) as seg_span:
                    completed = yield from self._run_segment(plan, seg_spec)
                    if not completed:
                        seg_span.annotate(failed=True)
                segments.append(
                    SegmentRecord(index, current.describe(), size,
                                  world.sim.now - seg_start, switched, completed)
                )
                if completed:
                    remaining -= size
                    index += 1
                    attempt = 0
                    retries = 0
                else:
                    # the route died under us: declare it dead, reroute, retry
                    retries += 1
                    attempt += 1
                    self._m_retries.inc()
                    if retries > self.max_retries_per_segment:
                        raise SelectionError(
                            f"segment {index} failed on every route "
                            f"({retries} attempts)"
                        )
                    self.monitor.mark_dead(current)
                    yield from self.monitor.probe_all()
                    current = self.monitor.best_route()
        return MonitoredResult(spec.name, world.sim.now - start, tuple(segments))

    def _run_segment(self, plan: TransferPlan, seg_spec: FileSpec):
        """Coroutine: one segment attempt; returns True if it completed.

        With a timeout configured, a stalled segment (dead route under a
        live TCP connection) is aborted: the executor process is
        interrupted and its leftover flows cancelled.
        """
        from repro.errors import RoutingError
        from repro.sim.kernel import Timeout

        world = self.monitor.world
        if self.segment_timeout_s is None:
            try:
                yield from self.monitor.executor.execute(plan)
            except RoutingError:
                return False
            return True
        proc = world.sim.process(self.monitor.executor.execute(plan))
        try:
            done, _ = yield Timeout(proc.done, self.segment_timeout_s)
        except RoutingError:
            return False
        if done:
            return proc.error is None
        proc.interrupt("segment timeout")
        for transfer in world.engine.active_transfers():
            if seg_spec.name in transfer.label:
                world.engine.cancel(transfer)
        return False
