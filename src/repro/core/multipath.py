"""Multipath uploads: direct + detour used *simultaneously*.

The paper deliberately stops short of this: "Routing detours pick a
single path ... Future use of multiple paths would require changes to
the provider's API."  We build the extension anyway, modeling the API
change as a split-object upload (each part is an independent upload
session; the provider would reassemble server-side, as compose/concat
endpoints already allow).

Each route is probed at two sizes and fitted with an affine cost model
``t(b) = a + s*b`` (the intercept captures handshakes/session overhead,
which would badly skew a naive throughput-proportional split).  The
split then *equalizes predicted finish times*: find T with
``sum_i max(0, (T - a_i)/s_i) = B`` and give route i the corresponding
bytes.  The aggregate rate approaches the sum of the route rates —
bounded, of course, by shared bottlenecks (splitting helps UBC->Drive,
where the routes diverge at CANARIE, but cannot help UCLA, where both
routes share the last mile).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import units
from repro.core.executor import PlanExecutor, PlanResult
from repro.core.routes import DetourRoute, DirectRoute, Route, TransferPlan
from repro.core.world import World
from repro.errors import SelectionError
from repro.sim.kernel import AllOf
from repro.transfer.files import FileSpec

__all__ = ["PartResult", "MultipathResult", "MultipathUpload"]

#: Don't bother splitting when one route would carry less than this.
MIN_PART_BYTES = units.MB


@dataclass(frozen=True)
class PartResult:
    """One part of a multipath upload."""

    route_descr: str
    part_bytes: int
    duration_s: float

    @property
    def throughput_bps(self) -> float:
        return units.throughput_bps(self.part_bytes, self.duration_s)


@dataclass(frozen=True)
class MultipathResult:
    """Outcome of a multipath upload."""

    file_name: str
    total_bytes: int
    total_s: float
    parts: Tuple[PartResult, ...]

    @property
    def aggregate_throughput_bps(self) -> float:
        return units.throughput_bps(self.total_bytes, self.total_s)

    @property
    def split_fractions(self) -> Tuple[float, ...]:
        return tuple(p.part_bytes / self.total_bytes for p in self.parts)

    def describe(self) -> str:
        parts = ", ".join(
            f"{p.route_descr}: {units.bytes_to_mb(p.part_bytes):.0f} MB "
            f"in {p.duration_s:.1f}s"
            for p in self.parts
        )
        return (f"{self.file_name}: {units.bytes_to_mb(self.total_bytes):.0f} MB in "
                f"{self.total_s:.1f}s ({parts})")


class MultipathUpload:
    """Probe the routes, fit affine costs, split to equalize finish."""

    def __init__(self, world: World, probe_sizes: Tuple[int, ...] = (units.MB, 4 * units.MB)):
        if len(probe_sizes) < 2 or any(s <= 0 for s in probe_sizes):
            raise SelectionError("need two positive probe sizes for the affine fit")
        self.world = world
        self.executor = PlanExecutor(world)
        self.probe_sizes = tuple(sorted(probe_sizes))
        self._probe_serial = 0

    def _fit_route(self, client_site: str, provider_name: str, route: Route):
        """Coroutine: probe at two sizes, return (intercept_s, s_per_byte)."""
        times = []
        for size in self.probe_sizes:
            self._probe_serial += 1
            spec = FileSpec(f"mp-probe-{self._probe_serial}.bin", size)
            plan = TransferPlan(client_site, provider_name, spec, route)
            result: PlanResult = yield from self.executor.execute(plan)
            times.append(result.total_s)
        b0, b1 = self.probe_sizes[0], self.probe_sizes[-1]
        t0, t1 = times[0], times[-1]
        slope = max((t1 - t0) / (b1 - b0), 1e-12)
        intercept = max(t0 - slope * b0, 0.0)
        return intercept, slope

    @staticmethod
    def _equal_finish_split(
        fits: List[Tuple[float, float]], total_bytes: float
    ) -> List[float]:
        """Bytes per route so all parts finish together (water-filling)."""

        def served(T: float) -> float:
            return sum(max(0.0, (T - a) / s) for a, s in fits)

        lo = 0.0
        hi = max(a + s * total_bytes for a, s in fits)
        for _ in range(80):
            mid = (lo + hi) / 2
            if served(mid) < total_bytes:
                lo = mid
            else:
                hi = mid
        return [max(0.0, (hi - a) / s) for a, s in fits]

    def run(
        self,
        client_site: str,
        provider_name: str,
        spec: FileSpec,
        routes: Optional[Sequence[Route]] = None,
    ):
        """Coroutine: upload *spec* over several routes at once.

        ``routes`` defaults to [direct, detour via every registered DTN].
        Returns a :class:`MultipathResult`.
        """
        world = self.world
        if routes is None:
            routes = [DirectRoute()] + [
                DetourRoute(via) for via in sorted(world.dtns) if via != client_site
            ]
        routes = list(routes)
        if len(routes) < 2:
            raise SelectionError("multipath needs at least two routes")

        # 1. probe and fit every route's affine cost model
        fits: List[Tuple[float, float]] = []
        for route in routes:
            fit = yield from self._fit_route(client_site, provider_name, route)
            fits.append(fit)

        # 2. equal-finish split; drop routes that would carry a sliver
        #    (their session overheads cost more than they contribute)
        raw = self._equal_finish_split(fits, float(spec.size_bytes))
        keep = [i for i, b in enumerate(raw) if b >= MIN_PART_BYTES]
        if not keep:
            keep = [min(range(len(routes)), key=lambda i: fits[i][0] + fits[i][1] * spec.size_bytes)]
        routes = [routes[i] for i in keep]
        fits = [fits[i] for i in keep]
        raw = self._equal_finish_split(fits, float(spec.size_bytes))
        split = [int(b) for b in raw]
        split[-1] = spec.size_bytes - sum(split[:-1])  # exact total

        # 3. launch all parts concurrently, wait for the slowest
        start = world.sim.now
        procs = []
        for i, (route, part_bytes) in enumerate(zip(routes, split)):
            part_spec = FileSpec(f"{spec.name}.part{i}", part_bytes,
                                 spec.entropy, spec.seed + i)
            plan = TransferPlan(client_site, provider_name, part_spec, route)
            procs.append(world.sim.process(
                self.executor.execute(plan), name=f"mp-part{i}"))
        results: List[PlanResult] = yield AllOf(procs)

        parts = tuple(
            PartResult(route.describe(), part_bytes, res.total_s)
            for route, part_bytes, res in zip(routes, split, results)
        )
        return MultipathResult(
            file_name=spec.name,
            total_bytes=spec.size_bytes,
            total_s=world.sim.now - start,
            parts=parts,
        )
