"""High-level API: compare routes, pick the best, upload.

:class:`DetourPlanner` is the front door a downstream user would adopt:
point it at a :class:`~repro.core.world.World`, ask for an upload, and it
measures the candidate routes (direct + one-hop detours through every
registered DTN), reports the comparison, and executes the winner — the
paper's whole workflow as three lines of code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.core.executor import PlanExecutor, PlanResult
from repro.core.routes import DetourRoute, DirectRoute, Route, TransferPlan
from repro.core.world import World
from repro.errors import MeasurementError, SelectionError
from repro.measure.stats import Summary, error_bars_overlap, relative_gain_pct, summarize
from repro.transfer.files import FileSpec

__all__ = ["RouteMeasurement", "RouteComparison", "DetourPlanner"]


@dataclass(frozen=True)
class RouteMeasurement:
    """Measured performance of one route."""

    route: Route
    summary: Summary
    results: Tuple[PlanResult, ...]

    def describe(self) -> str:
        return f"{self.route.describe()}: {self.summary}"


@dataclass(frozen=True)
class RouteComparison:
    """All candidate routes measured for one (client, provider, size)."""

    client_site: str
    provider_name: str
    size_bytes: int
    measurements: Tuple[RouteMeasurement, ...]

    @property
    def best(self) -> RouteMeasurement:
        return min(self.measurements, key=lambda m: m.summary.mean)

    @property
    def direct(self) -> RouteMeasurement:
        for m in self.measurements:
            if m.route.is_direct:
                return m
        raise MeasurementError("comparison has no direct route")

    def gain_over_direct_pct(self) -> float:
        """Relative gain of the best route vs direct (negative = faster)."""
        return relative_gain_pct(self.direct.summary.mean, self.best.summary.mean)

    def best_is_significant(self) -> bool:
        """False when the winner's ±1σ bar overlaps the direct route's.

        Implements the paper's Table IV caution: with overlapping error
        bars "we may not choose to rely on any detours".
        """
        best = self.best
        if best.route.is_direct:
            return True
        return not error_bars_overlap(best.summary, self.direct.summary)

    def render(self) -> str:
        lines = [
            f"{self.client_site} -> {self.provider_name}, "
            f"{units.bytes_to_mb(self.size_bytes):g} MB "
            f"({self.measurements[0].summary.n} runs kept):"
        ]
        best_descr = self.best.route.describe()
        for m in sorted(self.measurements, key=lambda m: m.summary.mean):
            marker = " <== fastest" if m.route.describe() == best_descr else ""
            gain = relative_gain_pct(self.direct.summary.mean, m.summary.mean)
            lines.append(f"  {m.route.describe():<24} {m.summary}  [{gain:+.1f}%]{marker}")
        if not self.best_is_significant():
            lines.append("  (warning: winner's ±1σ overlaps the direct route — not significant)")
        return "\n".join(lines)


@dataclass(frozen=True)
class PlannedUpload:
    """The planner's full answer: the comparison plus the executed upload."""

    comparison: RouteComparison
    final: PlanResult

    @property
    def best(self) -> RouteMeasurement:
        return self.comparison.best


class DetourPlanner:
    """Measure-then-transfer planner over one world."""

    def __init__(self, world: World, runs_per_route: int = 3, discard_runs: int = 1,
                 inter_run_gap_s: float = 2.0):
        if runs_per_route < 1 or not (0 <= discard_runs < runs_per_route):
            raise MeasurementError("bad measurement protocol for planner")
        self.world = world
        self.executor = PlanExecutor(world)
        self.runs_per_route = runs_per_route
        self.discard_runs = discard_runs
        self.inter_run_gap_s = inter_run_gap_s

    # -- route enumeration -----------------------------------------------------

    def candidate_routes(self, client_site: str,
                         vias: Optional[Sequence[str]] = None) -> List[Route]:
        """Direct plus a detour through every DTN (except the client's own)."""
        if vias is None:
            vias = [v for v in sorted(self.world.dtns) if v != client_site]
        else:
            for v in vias:
                self.world.dtn_of(v)  # validate
        routes: List[Route] = [DirectRoute()]
        routes.extend(DetourRoute(v) for v in vias)
        return routes

    # -- measurement ----------------------------------------------------------

    def compare(
        self,
        client_site: str,
        provider_name: str,
        size_bytes: int,
        vias: Optional[Sequence[str]] = None,
    ) -> RouteComparison:
        """Measure every candidate route sequentially in this world."""
        if size_bytes <= 0:
            raise MeasurementError("size must be positive")
        routes = self.candidate_routes(client_site, vias)
        spec = FileSpec("planner-compare.bin", size_bytes)
        measurements: List[RouteMeasurement] = []

        def driver():
            out = []
            for route in routes:
                plan = TransferPlan(client_site, provider_name, spec, route)
                durations: List[float] = []
                results: List[PlanResult] = []
                for _ in range(self.runs_per_route):
                    result = yield from self.executor.execute(plan)
                    durations.append(result.total_s)
                    results.append(result)
                    yield self.inter_run_gap_s
                kept = durations[self.discard_runs:]
                out.append(RouteMeasurement(
                    route, summarize(kept), tuple(results[self.discard_runs:])
                ))
            return out

        proc = self.world.sim.process(driver(), name="planner-compare")
        self.world.sim.run_until_triggered(proc.done, horizon=self.world.sim.now + 1e7)
        if not proc.finished:
            raise MeasurementError("route comparison did not converge")
        measurements = proc.result
        return RouteComparison(client_site, provider_name, size_bytes, tuple(measurements))

    # -- the front door --------------------------------------------------------

    def upload(
        self,
        client_site: str,
        provider_name: str,
        size_bytes: int,
        vias: Optional[Sequence[str]] = None,
        file_name: str = "payload.bin",
    ) -> PlannedUpload:
        """Compare routes, then upload the real file over the winner."""
        comparison = self.compare(client_site, provider_name, size_bytes, vias)
        spec = FileSpec(file_name, size_bytes)
        plan = TransferPlan(client_site, provider_name, spec, comparison.best.route)
        final = self.executor.run(plan)
        return PlannedUpload(comparison, final)
