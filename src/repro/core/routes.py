"""Route specifications and transfer plans.

A :class:`Route` says *how* data reaches the provider: directly via the
API, or through an intermediate DTN (the paper's routing detour).  A
:class:`TransferPlan` binds a route to a client, a provider, and a file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.errors import SelectionError
from repro.transfer.dtn import RelayMode
from repro.transfer.files import FileSpec

__all__ = ["Route", "DirectRoute", "DetourRoute", "TransferPlan"]


@dataclass(frozen=True)
class DirectRoute:
    """Client -> provider API, no intermediary (the paper's baseline)."""

    @property
    def is_direct(self) -> bool:
        return True

    @property
    def via(self) -> Optional[str]:
        return None

    def describe(self) -> str:
        return "direct"

    def __str__(self) -> str:
        return "direct"


@dataclass(frozen=True)
class DetourRoute:
    """Client -> DTN (rsync) -> provider API (the paper's mitigation).

    ``mode`` selects store-and-forward (paper: total = t1 + t2) or the
    pipelined cut-through extension.
    """

    via_site: str
    mode: RelayMode = RelayMode.STORE_AND_FORWARD

    @property
    def is_direct(self) -> bool:
        return False

    @property
    def via(self) -> Optional[str]:
        return self.via_site

    def describe(self) -> str:
        suffix = "" if self.mode is RelayMode.STORE_AND_FORWARD else f" ({self.mode.value})"
        return f"via {self.via_site}{suffix}"

    def __str__(self) -> str:
        return self.describe()


Route = Union[DirectRoute, DetourRoute]


@dataclass(frozen=True)
class TransferPlan:
    """One planned upload: who, what, where, and by which route."""

    client_site: str
    provider_name: str
    file: FileSpec
    route: Route = field(default_factory=DirectRoute)

    def __post_init__(self) -> None:
        if isinstance(self.route, DetourRoute) and self.route.via_site == self.client_site:
            raise SelectionError(
                f"detour via the client itself ({self.client_site}) is not a detour"
            )

    def describe(self) -> str:
        return (
            f"{self.client_site} -> {self.provider_name} "
            f"[{self.route.describe()}] {self.file.name}"
        )
