"""Automatic detour selection — the paper's future work, implemented.

"At this time, our case study only identifies the best detour, but we
have not implemented an automatic detour selection algorithm."  (Paper,
Sec. III-B.)  Three selectors are provided:

* :class:`OracleSelector` — measures every candidate route with the full
  experimental protocol in fresh worlds and picks the winner: the
  "experimental best" of the paper's Tables I/V, as an upper bound.
* :class:`ProbeSelector` — sends two small probe transfers per leg inside
  the live world, fits an affine cost model ``t = a + b * size`` per
  route, and picks the route with the lowest *predicted* time for the
  actual file size (captures the paper's observation that the best route
  depends on file size).
* :class:`HistorySelector` — epsilon-greedy over EWMA estimates learned
  from past transfers; cheap, adapts to drift, needs traffic to learn.

Selectors are kernel coroutines: drive with ``yield from`` inside a
simulation process (probing takes simulated time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import units
from repro.core.routes import DetourRoute, DirectRoute, Route, TransferPlan
from repro.core.world import World
from repro.errors import SelectionError
from repro.transfer.files import FileSpec

__all__ = [
    "SelectionContext",
    "Selector",
    "OracleSelector",
    "ProbeSelector",
    "HistorySelector",
]


@dataclass(frozen=True)
class SelectionContext:
    """One selection question: best route for this upload?"""

    world: World
    client_site: str
    provider_name: str
    size_bytes: int
    candidate_vias: Tuple[str, ...]

    def routes(self) -> List[Route]:
        routes: List[Route] = [DirectRoute()]
        routes.extend(DetourRoute(via) for via in self.candidate_vias)
        return routes


class Selector:
    """Interface: ``choose`` is a kernel coroutine returning a Route."""

    name = "abstract"

    def choose(self, ctx: SelectionContext):
        raise NotImplementedError


class OracleSelector(Selector):
    """Full offline measurement of every route (fresh worlds; no sim time).

    This is the paper's own procedure: benchmark each route with the
    7-run protocol and read off the fastest.  Expensive but optimal in
    expectation; used as the regret baseline in the ablation benches.
    """

    name = "oracle"

    def __init__(self, world_factory: Callable[[int], World], runs: int = 3,
                 discard: int = 1, master_seed: int = 0):
        from repro.measure.harness import ExperimentProtocol, ExperimentRunner

        self._runner = ExperimentRunner(
            world_factory,
            ExperimentProtocol(total_runs=runs, discard_runs=discard, inter_run_gap_s=5.0),
            master_seed=master_seed,
        )

    def choose(self, ctx: SelectionContext):
        from repro.core.executor import PlanExecutor

        spec = FileSpec("oracle-probe.bin", ctx.size_bytes)
        best_route: Optional[Route] = None
        best_mean = float("inf")
        for route in ctx.routes():
            label = f"oracle:{ctx.client_site}:{ctx.provider_name}:{route.describe()}:{ctx.size_bytes}"

            def run_factory(world: World, run_index: int, route=route):
                plan = TransferPlan(ctx.client_site, ctx.provider_name, spec, route)
                result = yield from PlanExecutor(world).execute(plan)
                return result

            m = self._runner.measure(label, run_factory)
            if m.mean_s < best_mean:
                best_mean, best_route = m.mean_s, route
        if best_route is None:
            raise SelectionError("no candidate routes")
        return best_route
        yield  # pragma: no cover — makes this a kernel coroutine


class ProbeSelector(Selector):
    """Affine cost model fitted from two in-world probe transfers per leg.

    For each route, probe with ``probe_sizes`` and fit ``t = a + b*size``;
    the detour prediction is the sum of its two legs' fits (store-and-
    forward).  Probe cost is tiny next to a 100 MB upload, and the fitted
    intercept captures per-request/API overheads, which is what makes the
    prediction size-aware.
    """

    name = "probe"

    def __init__(self, probe_sizes: Sequence[int] = (units.MB, 4 * units.MB)):
        if len(probe_sizes) < 2:
            raise SelectionError("need at least two probe sizes for an affine fit")
        if any(s <= 0 for s in probe_sizes):
            raise SelectionError("probe sizes must be positive")
        self.probe_sizes = tuple(sorted(probe_sizes))
        #: filled by the last ``choose`` call: route description -> predicted s
        self.last_predictions: Dict[str, float] = {}

    # -- leg probing -----------------------------------------------------------

    def _probe_api(self, ctx: SelectionContext, src_host: str, size: int, tag: str):
        from repro.transfer.api_client import CloudClient

        world = ctx.world
        client = CloudClient(
            world.sim, world.engine, world.router, world.dns, world.tcp,
            world.token_cache, rng=world.rng.stream("probe.jitter"),
            app_name="repro-probe",
        )
        spec = FileSpec(f"probe-{tag}-{size}.bin", size)
        report = yield from client.upload(src_host, ctx.world.provider(ctx.provider_name), spec)
        return report.duration_s

    def _probe_rsync(self, ctx: SelectionContext, src_host: str, dst_host: str, size: int):
        from repro.transfer.rsync import RsyncSession

        world = ctx.world
        session = RsyncSession(world.engine, world.router, world.tcp)
        spec = FileSpec(f"probe-{src_host}-{dst_host}-{size}.bin", size)
        start = world.sim.now
        yield from session.push(src_host, dst_host, spec)
        return world.sim.now - start

    @staticmethod
    def _fit(sizes: Sequence[int], times: Sequence[float]) -> Tuple[float, float]:
        """Least-squares affine fit; returns (intercept_s, seconds_per_byte)."""
        x = np.asarray(sizes, dtype=float)
        y = np.asarray(times, dtype=float)
        slope, intercept = np.polyfit(x, y, 1)
        return float(max(intercept, 0.0)), float(max(slope, 0.0))

    # -- selection --------------------------------------------------------------

    def choose(self, ctx: SelectionContext):
        from repro.errors import RoutingError

        world = ctx.world
        client_host = world.host_of(ctx.client_site)
        predictions: Dict[str, float] = {}
        inf = float("inf")

        # direct: probe the API path from the client (unroutable -> inf)
        try:
            times = []
            for size in self.probe_sizes:
                t = yield from self._probe_api(ctx, client_host, size, tag="direct")
                times.append(t)
            a, b = self._fit(self.probe_sizes, times)
            direct_pred = a + b * ctx.size_bytes
        except RoutingError:
            direct_pred = inf
        predictions["direct"] = direct_pred

        best_route: Route = DirectRoute()
        best_pred = direct_pred
        for via in ctx.candidate_vias:
            dtn_host = world.dtn_of(via).host
            try:
                t_in: List[float] = []
                t_out: List[float] = []
                for size in self.probe_sizes:
                    t1 = yield from self._probe_rsync(ctx, client_host, dtn_host, size)
                    t_in.append(t1)
                    t2 = yield from self._probe_api(ctx, dtn_host, size, tag=f"via-{via}")
                    t_out.append(t2)
                a1, b1 = self._fit(self.probe_sizes, t_in)
                a2, b2 = self._fit(self.probe_sizes, t_out)
                pred = (a1 + a2) + (b1 + b2) * ctx.size_bytes
            except RoutingError:
                pred = inf
            route = DetourRoute(via)
            predictions[route.describe()] = pred
            if pred < best_pred:
                best_pred, best_route = pred, route

        self.last_predictions = predictions
        if best_pred == inf:
            raise SelectionError(
                f"no candidate route from {ctx.client_site} to "
                f"{ctx.provider_name} is currently routable"
            )
        return best_route


class HistorySelector(Selector):
    """EWMA throughput history with epsilon-greedy exploration.

    ``update`` feeds each completed transfer back; ``choose`` exploits the
    best per-byte estimate (or explores with probability ``epsilon``).
    Estimates are kept per (client, provider, route); unseen routes are
    always tried first.

    With ``half_life_s`` set, estimates additionally *age*: every entry
    carries the sim time of its last update (read from the injected
    ``clock``), and :meth:`freshness` decays from 1.0 toward 0.0 with the
    given half-life.  A route whose freshness has fallen below
    ``min_freshness`` is treated as unseen by ``choose`` (explore again),
    which is what lets a long-running consumer — the detour broker —
    distinguish fresh estimates from fossils without ever deleting the
    EWMA state itself.
    """

    name = "history"

    def __init__(self, alpha: float = 0.3, epsilon: float = 0.1,
                 rng: Optional[np.random.Generator] = None,
                 half_life_s: Optional[float] = None,
                 clock: Optional[Callable[[], float]] = None,
                 min_freshness: float = 0.25):
        if not (0 < alpha <= 1):
            raise SelectionError("alpha must be in (0, 1]")
        if not (0 <= epsilon < 1):
            raise SelectionError("epsilon must be in [0, 1)")
        if rng is None:
            raise SelectionError(
                "HistorySelector needs an explicit rng (an RngRegistry "
                "stream or injected np.random.Generator) for its "
                "epsilon-greedy exploration draws"
            )
        if half_life_s is not None:
            if half_life_s <= 0:
                raise SelectionError("half-life must be positive (sim seconds)")
            if clock is None:
                raise SelectionError(
                    "staleness decay needs an injected clock (e.g. "
                    "lambda: world.sim.now) so freshness is a function of "
                    "sim time, never wall time"
                )
        if not (0 < min_freshness <= 1):
            raise SelectionError("min_freshness must be in (0, 1]")
        self.alpha = alpha
        self.epsilon = epsilon
        self.rng = rng
        self.half_life_s = half_life_s
        self.clock = clock
        self.min_freshness = min_freshness
        # (client, provider, route descr) -> EWMA seconds per byte
        self._rate: Dict[Tuple[str, str, str], float] = {}
        # (client, provider, route descr) -> sim time of the last update
        self._updated_at: Dict[Tuple[str, str, str], float] = {}

    def _key(self, ctx: SelectionContext, route: Route) -> Tuple[str, str, str]:
        return (ctx.client_site, ctx.provider_name, route.describe())

    def update(self, ctx: SelectionContext, route: Route, size_bytes: int,
               duration_s: float) -> None:
        """Record an observed transfer outcome."""
        if size_bytes <= 0 or duration_s <= 0:
            raise SelectionError("update needs positive size and duration")
        key = self._key(ctx, route)
        sec_per_byte = duration_s / size_bytes
        old = self._rate.get(key)
        self._rate[key] = (
            sec_per_byte if old is None else (1 - self.alpha) * old + self.alpha * sec_per_byte
        )
        if self.clock is not None:
            self._updated_at[key] = float(self.clock())

    def estimate_s(self, ctx: SelectionContext, route: Route) -> Optional[float]:
        """Predicted duration for the context's size, or None if unseen."""
        spb = self._rate.get(self._key(ctx, route))
        return None if spb is None else spb * ctx.size_bytes

    def last_update_s(self, ctx: SelectionContext, route: Route) -> Optional[float]:
        """Sim time this route's estimate last changed (None if unseen or
        no clock was injected)."""
        return self._updated_at.get(self._key(ctx, route))

    def freshness(self, ctx: SelectionContext, route: Route) -> float:
        """Exponential-decay confidence in this route's estimate.

        1.0 immediately after an update, 0.5 one half-life later, 0.0 for
        a route never observed.  Without ``half_life_s`` every seen route
        stays at 1.0 (the pre-decay behaviour).
        """
        key = self._key(ctx, route)
        if key not in self._rate:
            return 0.0
        if self.half_life_s is None:
            return 1.0
        age_s = float(self.clock()) - self._updated_at.get(key, 0.0)
        if age_s <= 0:
            return 1.0
        return 0.5 ** (age_s / self.half_life_s)

    def choose(self, ctx: SelectionContext):
        routes = ctx.routes()
        unseen = [r for r in routes
                  if self.freshness(ctx, r) < self.min_freshness]
        if unseen:
            return unseen[0]
        if float(self.rng.random()) < self.epsilon:
            return routes[int(self.rng.integers(len(routes)))]
        return min(routes, key=lambda r: self.estimate_s(ctx, r))
        yield  # pragma: no cover — makes this a kernel coroutine
