"""The ``World``: one fully-wired simulated universe.

A World bundles everything a transfer needs — kernel, topology, routing,
DNS, flow engine, providers, DTNs, RNG registry — so the executor, the
measurement harness, and the benchmarks share one handle.  Worlds are
built by :mod:`repro.testbed.build` (the calibrated case study) or by
tests (synthetic miniatures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cloud.oauth import TokenCache
from repro.cloud.provider import CloudProvider
from repro.errors import TopologyError
from repro.net.asn import ASGraph
from repro.net.dns import DnsResolver
from repro.net.engine import NetworkEngine
from repro.net.policy import PolicyTable
from repro.net.routing import Router
from repro.net.tcp import TcpModel
from repro.net.topology import Topology
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import KernelProfiler
from repro.obs.spans import SpanTracer
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer
from repro.transfer.dtn import DataTransferNode

__all__ = ["World"]


@dataclass
class World:
    """One simulated universe, ready to execute transfer plans."""

    sim: Simulator
    topology: Topology
    as_graph: ASGraph
    policy: PolicyTable
    router: Router
    dns: DnsResolver
    engine: NetworkEngine
    tcp: TcpModel
    rng: RngRegistry
    tracer: Tracer
    providers: Dict[str, CloudProvider] = field(default_factory=dict)
    dtns: Dict[str, DataTransferNode] = field(default_factory=dict)
    #: site key ("ubc", "ualberta", ...) -> host node name in the topology
    hosts: Dict[str, str] = field(default_factory=dict)
    #: shared across runs inside this world (token warm-up effect)
    token_cache: TokenCache = field(default_factory=TokenCache)
    seed: int = 0
    #: observability (disabled by default; see repro.obs)
    metrics: MetricsRegistry = field(
        default_factory=lambda: MetricsRegistry(enabled=False))
    spans: Optional[SpanTracer] = None
    profiler: Optional[KernelProfiler] = None

    def __post_init__(self) -> None:
        if self.spans is None:
            self.spans = SpanTracer(self.sim, self.tracer)

    # -- lookups --------------------------------------------------------------

    def provider(self, name: str) -> CloudProvider:
        try:
            return self.providers[name]
        except KeyError:
            known = ", ".join(sorted(self.providers))
            raise TopologyError(f"unknown provider {name!r}; have: {known}") from None

    def host_of(self, site_key: str) -> str:
        try:
            return self.hosts[site_key]
        except KeyError:
            known = ", ".join(sorted(self.hosts))
            raise TopologyError(f"no host for site {site_key!r}; have: {known}") from None

    def dtn_of(self, site_key: str) -> DataTransferNode:
        try:
            return self.dtns[site_key]
        except KeyError:
            known = ", ".join(sorted(self.dtns))
            raise TopologyError(f"no DTN at site {site_key!r}; have: {known}") from None

    def add_provider(self, provider: CloudProvider) -> CloudProvider:
        if provider.name in self.providers:
            raise TopologyError(f"provider {provider.name!r} already registered")
        self.providers[provider.name] = provider
        provider.register_in_dns(self.dns)
        return provider

    def add_dtn(self, site_key: str, host_node: str,
                capacity_bytes: Optional[float] = None,
                max_sessions: Optional[int] = None) -> DataTransferNode:
        self.topology.node(host_node)  # validate
        dtn = DataTransferNode(host_node, capacity_bytes, max_sessions)
        dtn.attach_session_limit(self.sim)
        self.dtns[site_key] = dtn
        return dtn

    def client_sites(self) -> List[str]:
        return sorted(set(self.hosts) - set(self.dtns))

    # -- dynamic events ------------------------------------------------------

    def fail_link(self, link_name: str) -> None:
        """Take a link down: new paths avoid it, flows on it starve.

        The RON failure scenario: probing notices the collapse and the
        overlay (or the bottleneck monitor) routes around it.
        """
        link = self.topology.link(link_name)
        if link.failed:
            return
        link.failed = True
        self.router.invalidate()
        self.engine.on_link_state_change(link_name)
        self.tracer.emit(self.sim.now, "net.topology", "link_down", link=link_name)

    def restore_link(self, link_name: str) -> None:
        """Bring a failed link back up."""
        link = self.topology.link(link_name)
        if not link.failed:
            return
        link.failed = False
        self.router.invalidate()
        self.engine.on_link_state_change(link_name)
        self.tracer.emit(self.sim.now, "net.topology", "link_up", link=link_name)
