"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch the whole family; each layer has its own subclass so tests can assert
on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Misuse of the discrete-event kernel (e.g. scheduling in the past)."""


class TopologyError(ReproError):
    """Malformed network topology (unknown node, duplicate link, ...)."""


class RoutingError(ReproError):
    """No route could be computed between two endpoints."""


class AddressError(ReproError):
    """Invalid IPv4 address/prefix or exhausted allocator."""


class TransferError(ReproError):
    """A file transfer failed (endpoint unknown, protocol violation, ...)."""


class CloudApiError(TransferError):
    """A simulated cloud-storage API call failed."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class AuthError(CloudApiError):
    """OAuth2 authentication/authorization failure."""

    def __init__(self, message: str):
        super().__init__(401, message)


class SelectionError(ReproError):
    """Detour selection could not produce a route."""


class MeasurementError(ReproError):
    """Experiment harness misconfiguration."""


class CampaignError(ReproError):
    """Campaign engine misuse (bad spec, corrupt store, unknown route)."""


class TopoError(ReproError):
    """Topology generation/ingestion/compilation failure (bad spec,
    malformed ITDK file, route-cache version mismatch, ...)."""


class ObservabilityError(ReproError):
    """Misuse of the observability layer (bad metric name, bad buckets)."""


class BrokerError(ReproError):
    """Detour-broker misconfiguration or protocol misuse."""


class CalibrationError(ReproError):
    """Testbed calibration targets are inconsistent or unachievable."""


class ShardError(ReproError):
    """Sharded fleet execution misuse (bad plan, missing shard artifacts)."""
