"""Geography substrate: coordinates, sites, and IP geolocation.

Supports the paper's geographic analysis (Fig. 3, Table V): site locations,
great-circle distances, fiber propagation delays, and the "IP Location
Finder" style prefix->location registry used to place traceroute hops on
the map.
"""

from repro.geo.coords import GeoPoint, bearing_deg, haversine_km, path_length_km
from repro.geo.ipgeo import GeoRegistry
from repro.geo.sites import (
    CLOUD_DATACENTERS,
    CLIENT_SITES,
    INTERMEDIATE_SITES,
    SITES,
    Site,
    SiteKind,
    site,
)

__all__ = [
    "GeoPoint",
    "GeoRegistry",
    "Site",
    "SiteKind",
    "SITES",
    "CLIENT_SITES",
    "INTERMEDIATE_SITES",
    "CLOUD_DATACENTERS",
    "bearing_deg",
    "haversine_km",
    "path_length_km",
    "site",
]
