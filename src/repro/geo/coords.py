"""Geographic coordinates and great-circle math.

Used to derive per-link propagation delays from site locations and to
quantify the "geographical detour" of Fig. 3 (UBC -> UAlberta -> Mountain
View backtracks ~1000 km yet is faster than the direct route).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro import units

__all__ = ["GeoPoint", "haversine_km", "bearing_deg", "path_length_km", "detour_stretch"]

EARTH_RADIUS_KM = 6371.0088  # mean Earth radius


@dataclass(frozen=True)
class GeoPoint:
    """A (latitude, longitude) pair in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not (-90.0 <= self.lat <= 90.0):
            raise ValueError(f"latitude out of range: {self.lat}")
        if not (-180.0 <= self.lon <= 180.0):
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        return haversine_km(self, other)

    def propagation_delay_s(self, other: "GeoPoint", stretch: float = units.DEFAULT_PATH_STRETCH) -> float:
        """One-way fiber propagation delay to *other*."""
        return units.propagation_delay_s(self.distance_km(other), stretch)

    def __str__(self) -> str:
        ns = "N" if self.lat >= 0 else "S"
        ew = "E" if self.lon >= 0 else "W"
        return f"{abs(self.lat):.4f}{ns},{abs(self.lon):.4f}{ew}"


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, km."""
    phi1, phi2 = math.radians(a.lat), math.radians(b.lat)
    dphi = math.radians(b.lat - a.lat)
    dlam = math.radians(b.lon - a.lon)
    h = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial great-circle bearing from *a* to *b*, degrees in [0, 360)."""
    phi1, phi2 = math.radians(a.lat), math.radians(b.lat)
    dlam = math.radians(b.lon - a.lon)
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlam)
    return (math.degrees(math.atan2(y, x)) + 360.0) % 360.0


def path_length_km(points: Sequence[GeoPoint] | Iterable[GeoPoint]) -> float:
    """Total great-circle length of a polyline of points, km."""
    pts = list(points)
    if len(pts) < 2:
        return 0.0
    return sum(haversine_km(u, v) for u, v in zip(pts, pts[1:]))


def detour_stretch(src: GeoPoint, via: GeoPoint, dst: GeoPoint) -> float:
    """Geographic stretch of a one-hop detour vs the direct great circle.

    Returns (d(src,via) + d(via,dst)) / d(src,dst).  A stretch of 2.0 means
    the detour path is twice as long on the map; the paper's point is that
    such detours can nevertheless be *faster*.
    """
    direct = haversine_km(src, dst)
    if direct == 0:
        return math.inf
    return (haversine_km(src, via) + haversine_km(via, dst)) / direct
