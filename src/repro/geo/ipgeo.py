"""Prefix -> location registry, standing in for "IP Location Finder" [7].

The paper geolocates traceroute hops with a public IP-geolocation service.
We reproduce that with a longest-prefix-match registry populated by the
testbed builder: every simulated prefix is registered with the site that
owns it, so traceroute output can be placed on the map exactly as in
Fig. 3 / Table V.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, List, Optional, Tuple

from repro.errors import AddressError
from repro.geo.coords import GeoPoint
from repro.geo.sites import Site

__all__ = ["GeoRegistry"]


class GeoRegistry:
    """Longest-prefix-match IP geolocation database."""

    def __init__(self) -> None:
        # networks stored per prefix length for simple LPM
        self._by_len: Dict[int, Dict[ipaddress.IPv4Network, Tuple[Site, GeoPoint]]] = {}

    def register(self, prefix: str, site: Site, location: Optional[GeoPoint] = None) -> None:
        """Associate *prefix* (e.g. ``"142.103.0.0/16"``) with *site*."""
        try:
            net = ipaddress.IPv4Network(prefix)
        except ValueError as exc:
            raise AddressError(f"bad prefix {prefix!r}: {exc}") from exc
        loc = location if location is not None else site.location
        self._by_len.setdefault(net.prefixlen, {})[net] = (site, loc)

    def lookup(self, address: str) -> Optional[Tuple[Site, GeoPoint]]:
        """Longest-prefix match for *address*; None if unregistered."""
        try:
            addr = ipaddress.IPv4Address(address)
        except ValueError as exc:
            raise AddressError(f"bad address {address!r}: {exc}") from exc
        for plen in sorted(self._by_len, reverse=True):
            for net, value in self._by_len[plen].items():
                if addr in net:
                    return value
        return None

    def locate(self, address: str) -> Optional[GeoPoint]:
        """Location for *address*, or None."""
        hit = self.lookup(address)
        return hit[1] if hit else None

    def site_of(self, address: str) -> Optional[Site]:
        """Owning site for *address*, or None."""
        hit = self.lookup(address)
        return hit[0] if hit else None

    def prefixes(self) -> List[str]:
        """All registered prefixes (unordered)."""
        return [str(net) for nets in self._by_len.values() for net in nets]

    def __len__(self) -> int:
        return sum(len(nets) for nets in self._by_len.values())
