"""The case study's sites: clients, intermediate nodes, and cloud DCs.

Locations follow Sec. II of the paper: clients at UBC (Vancouver), Purdue
(West Lafayette), UCLA (Los Angeles); intermediate nodes at UAlberta
(Edmonton) and UMich (Ann Arbor); provider datacenters at Ashburn VA
(Dropbox), Mountain View CA (Google Drive), and Seattle WA (OneDrive).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List

from repro.geo.coords import GeoPoint

__all__ = [
    "Site",
    "SiteKind",
    "SITES",
    "CLIENT_SITES",
    "INTERMEDIATE_SITES",
    "CLOUD_DATACENTERS",
    "register_site",
    "site",
]


class SiteKind(Enum):
    """Role of a site in the case study."""

    CLIENT = "client"
    INTERMEDIATE = "intermediate"
    CLOUD_DC = "cloud_dc"
    EXCHANGE = "exchange"  # IXPs / research-network routers


@dataclass(frozen=True)
class Site:
    """A named location participating in the experiments."""

    name: str
    kind: SiteKind
    location: GeoPoint
    city: str
    description: str = ""
    planetlab: bool = False

    def __str__(self) -> str:
        return f"{self.name} ({self.city})"


_SITE_LIST: List[Site] = [
    # -- clients (vantage points) ------------------------------------------
    Site("ubc", SiteKind.CLIENT, GeoPoint(49.2606, -123.2460), "Vancouver, BC",
         "PlanetLab node, University of British Columbia", planetlab=True),
    Site("purdue", SiteKind.CLIENT, GeoPoint(40.4237, -86.9212), "West Lafayette, IN",
         "PlanetLab node, Purdue University", planetlab=True),
    Site("ucla", SiteKind.CLIENT, GeoPoint(34.0689, -118.4452), "Los Angeles, CA",
         "PlanetLab node, UCLA (limited last-mile bandwidth)", planetlab=True),
    # -- intermediate / DTN candidates ---------------------------------------
    Site("ualberta", SiteKind.INTERMEDIATE, GeoPoint(53.5232, -113.5263), "Edmonton, AB",
         "Non-PlanetLab cluster, University of Alberta"),
    Site("umich", SiteKind.INTERMEDIATE, GeoPoint(42.2780, -83.7382), "Ann Arbor, MI",
         "PlanetLab node, University of Michigan", planetlab=True),
    # -- cloud-storage datacenters --------------------------------------------
    Site("gdrive-dc", SiteKind.CLOUD_DC, GeoPoint(37.3861, -122.0839), "Mountain View, CA",
         "Google Drive storage frontend"),
    Site("dropbox-dc", SiteKind.CLOUD_DC, GeoPoint(39.0438, -77.4874), "Ashburn, VA",
         "Dropbox storage frontend"),
    Site("onedrive-dc", SiteKind.CLOUD_DC, GeoPoint(47.6062, -122.3321), "Seattle, WA",
         "Microsoft OneDrive storage frontend"),
    # -- network infrastructure (research-network routers & exchanges) ------
    Site("canarie-vancouver", SiteKind.EXCHANGE, GeoPoint(49.2827, -123.1207), "Vancouver, BC",
         "CANARIE router vncv1rtr2.canarie.ca"),
    Site("canarie-edmonton", SiteKind.EXCHANGE, GeoPoint(53.5461, -113.4938), "Edmonton, AB",
         "CANARIE router edmn1rtr2.canarie.ca"),
    Site("pacificwave-seattle", SiteKind.EXCHANGE, GeoPoint(47.6150, -122.3400), "Seattle, WA",
         "Pacific Wave exchange (rate-limited egress in the case study)"),
    Site("internet2-chicago", SiteKind.EXCHANGE, GeoPoint(41.8781, -87.6298), "Chicago, IL",
         "Internet2/commodity exchange point"),
    Site("commodity-east", SiteKind.EXCHANGE, GeoPoint(38.9072, -77.0369), "Washington, DC",
         "Commodity transit hub, east"),
    Site("commodity-west", SiteKind.EXCHANGE, GeoPoint(37.7749, -122.4194), "San Francisco, CA",
         "Commodity transit hub, west"),
]

#: All sites by name.
SITES: Dict[str, Site] = {s.name: s for s in _SITE_LIST}

CLIENT_SITES: List[Site] = [s for s in _SITE_LIST if s.kind is SiteKind.CLIENT]
INTERMEDIATE_SITES: List[Site] = [s for s in _SITE_LIST if s.kind is SiteKind.INTERMEDIATE]
CLOUD_DATACENTERS: List[Site] = [s for s in _SITE_LIST if s.kind is SiteKind.CLOUD_DC]


def site(name: str) -> Site:
    """Look up a site by name, with a helpful error."""
    try:
        return SITES[name]
    except KeyError:
        known = ", ".join(sorted(SITES))
        raise KeyError(f"unknown site {name!r}; known sites: {known}") from None


def register_site(new_site: Site) -> Site:
    """Add a custom site to the registry (for user-defined scenarios).

    Registration is idempotent for identical definitions and rejects
    redefinition with different coordinates — geo-DNS and the map
    figures rely on site keys being stable.
    """
    existing = SITES.get(new_site.name)
    if existing is not None:
        if existing == new_site:
            return existing
        raise ValueError(
            f"site {new_site.name!r} already registered with a different definition"
        )
    SITES[new_site.name] = new_site  # simlint: ignore[SL1001] -- idempotent registry: guarded above, same content in every process
    return new_site
