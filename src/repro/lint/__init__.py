"""Static analysis of the simulation's invariants (``repro lint``).

The reproduction's claims rest on three mechanical invariants that
docstrings alone cannot enforce:

* **determinism** (SL1xx) — all randomness flows from one master seed
  through :class:`repro.sim.rng.RngRegistry` named streams; no wall-clock
  reads, no stdlib ``random``, no ad-hoc ``np.random.default_rng(...)``
  fallbacks, no iteration over hash-ordered sets in model code;
* **units** (SL2xx) — seconds / bytes / bits-per-second everywhere, via
  the named constants of :mod:`repro.units` rather than magic numbers;
* **kernel-safety** (SL3xx) — no mutable default arguments, no bare
  ``except:``, no float ``==`` against simulation-time expressions.

On top of the per-file families, ``repro lint --graph`` runs the
whole-program analyses of :mod:`repro.lint.graph`:

* **transitive determinism** (SL6xx) — taint from wall-clock / OS-entropy
  / hash-order sinks anywhere in the tree back to model-code callers,
  through the project call graph;
* **unit dataflow** (SL7xx) — second/byte/bps unit tags propagated across
  call boundaries; mixed-unit arithmetic and suffix-contradicting
  argument bindings;
* **hot-path performance** (SL8xx) — per-event allocation, repeated
  attribute-chain resolution, exception-driven control flow, and O(n)
  membership tests inside loops reachable from the configured
  ``hot_entrypoints`` (the simulator kernel and network-engine paths);
* **architecture layering** (SL9xx) — upward imports against the
  declared layer DAG, cross-package private-module imports, import
  cycles, and dead ``__init__`` exports.

``repro lint --fix`` (see :mod:`repro.lint.fix`) auto-repairs the
fixable rules with token-preserving rewrites, or inserts inline
suppressions with ``--fix-mode=suppress``; ``--dry-run`` previews diffs.

The analyzer is stdlib-``ast`` based (no third-party dependencies) and is
wired into the CLI (``python -m repro.cli lint``) and the test suite
(``python -m pytest -m lint``).  See ``docs/invariants.md`` for the rule
catalogue, suppression comments (``# simlint: ignore[RULE]``) and the
baseline workflow (``lint_baseline.json``).
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.config import (
    DEFAULT_CONFIG,
    DEFAULT_HOT_ENTRYPOINTS,
    DEFAULT_LAYERS,
    LintConfig,
)
from repro.lint.engine import (
    GRAPH_RULES,
    GraphRule,
    LintEngine,
    LintReport,
    Rule,
    RULES,
    all_graph_rules,
    all_rules,
)
from repro.lint.findings import Finding, Severity
from repro.lint.fix import FIXABLE_RULES, FixResult, fix_findings
from repro.lint.runner import run_graph_export, run_lint
from repro.lint.sarif import render_sarif, to_sarif

# Importing the rule modules registers every shipped rule.
from repro.lint import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_CONFIG",
    "DEFAULT_HOT_ENTRYPOINTS",
    "DEFAULT_LAYERS",
    "FIXABLE_RULES",
    "Finding",
    "FixResult",
    "GRAPH_RULES",
    "GraphRule",
    "LintConfig",
    "LintEngine",
    "LintReport",
    "RULES",
    "Rule",
    "Severity",
    "all_graph_rules",
    "all_rules",
    "fix_findings",
    "render_sarif",
    "run_graph_export",
    "run_lint",
    "to_sarif",
]
