"""Static analysis of the simulation's invariants (``repro lint``).

The reproduction's claims rest on three mechanical invariants that
docstrings alone cannot enforce:

* **determinism** (SL1xx) — all randomness flows from one master seed
  through :class:`repro.sim.rng.RngRegistry` named streams; no wall-clock
  reads, no stdlib ``random``, no ad-hoc ``np.random.default_rng(...)``
  fallbacks, no iteration over hash-ordered sets in model code;
* **units** (SL2xx) — seconds / bytes / bits-per-second everywhere, via
  the named constants of :mod:`repro.units` rather than magic numbers;
* **kernel-safety** (SL3xx) — no mutable default arguments, no bare
  ``except:``, no float ``==`` against simulation-time expressions.

The analyzer is stdlib-``ast`` based (no third-party dependencies) and is
wired into the CLI (``python -m repro.cli lint``) and the test suite
(``python -m pytest -m lint``).  See ``docs/invariants.md`` for the rule
catalogue, suppression comments (``# simlint: ignore[RULE]``) and the
baseline workflow (``lint_baseline.json``).
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import LintEngine, LintReport, Rule, RULES, all_rules
from repro.lint.findings import Finding, Severity
from repro.lint.runner import run_lint

# Importing the rule modules registers every shipped rule.
from repro.lint import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintEngine",
    "LintReport",
    "RULES",
    "Rule",
    "Severity",
    "all_rules",
    "run_lint",
]
