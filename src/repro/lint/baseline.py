"""Grandfathered findings: the ``lint_baseline.json`` mechanism.

A baseline entry forgives up to ``count`` findings of one rule in one
file, with a human justification.  New violations past the grandfathered
count still fail the gate, so the baseline can only shrink debt, never
hide growth.  ``repro lint --update-baseline`` regenerates the file from
the current findings, preserving existing justifications.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Collection, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.atomic import atomic_write_json
from repro.lint.findings import Finding

__all__ = ["Baseline", "BaselineEntry", "BASELINE_VERSION"]

BASELINE_VERSION = 1

_TODO_JUSTIFICATION = "TODO: justify or fix"


@dataclass(frozen=True)
class BaselineEntry:
    file: str
    rule: str
    count: int = 1
    justification: str = _TODO_JUSTIFICATION

    def key(self) -> Tuple[str, str]:
        return (self.file, self.rule)


@dataclass
class Baseline:
    """The set of grandfathered (file, rule) -> count entries."""

    entries: List[BaselineEntry] = field(default_factory=list)

    # -- persistence -----------------------------------------------------

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        entries = [
            BaselineEntry(
                file=e["file"],
                rule=e["rule"],
                count=int(e.get("count", 1)),
                justification=e.get("justification", _TODO_JUSTIFICATION),
            )
            for e in data.get("entries", [])
        ]
        return cls(entries=entries)

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                {
                    "file": e.file,
                    "rule": e.rule,
                    "count": e.count,
                    "justification": e.justification,
                }
                for e in sorted(self.entries, key=BaselineEntry.key)
            ],
        }
        atomic_write_json(path, payload, sort_keys=False, indent=2)

    # -- filtering -------------------------------------------------------

    def filter(self, findings: Sequence[Finding],
               active_rules: Optional[Collection[str]] = None,
               ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split findings into (kept, baselined); also return stale entries.

        For each (file, rule) the first ``count`` findings are forgiven;
        any excess is kept.  Entries that matched nothing are *stale* —
        the debt they recorded has been paid and they should be removed.

        When ``active_rules`` is given, entries for rules outside it are
        neither spent nor reported stale: a per-file-only run must not
        declare a grandfathered whole-program finding "fixed" just
        because the rule that produces it did not execute.
        """
        budget: Dict[Tuple[str, str], int] = {}
        for e in self.entries:
            if active_rules is not None and e.rule not in active_rules:
                continue
            budget[e.key()] = budget.get(e.key(), 0) + e.count
        used: Dict[Tuple[str, str], int] = {}
        kept: List[Finding] = []
        baselined: List[Finding] = []
        for f in findings:
            key = (f.file, f.rule)
            if used.get(key, 0) < budget.get(key, 0):
                used[key] = used.get(key, 0) + 1
                baselined.append(f)
            else:
                kept.append(f)
        stale = [e for e in self.entries
                 if (active_rules is None or e.rule in active_rules)
                 and used.get(e.key(), 0) == 0]
        return kept, baselined, stale

    @classmethod
    def from_findings(cls, findings: Sequence[Finding],
                      previous: "Baseline" = None) -> "Baseline":
        """Baseline covering exactly the given findings.

        Justifications from ``previous`` are carried over where the
        (file, rule) pair survives; new pairs get a TODO marker.
        """
        old = {e.key(): e.justification for e in previous.entries} if previous else {}
        counts: Dict[Tuple[str, str], int] = {}
        for f in findings:
            counts[(f.file, f.rule)] = counts.get((f.file, f.rule), 0) + 1
        entries = [
            BaselineEntry(file=file, rule=rule, count=n,
                          justification=old.get((file, rule), _TODO_JUSTIFICATION))
            for (file, rule), n in sorted(counts.items())
        ]
        return cls(entries=entries)
