"""Linter configuration: which packages are "model code", whitelists."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, List, Mapping, Optional, Tuple

from repro.lint.findings import Severity

__all__ = ["LintConfig", "DEFAULT_CONFIG", "DEFAULT_LAYERS",
           "DEFAULT_HOT_ENTRYPOINTS", "DEFAULT_WORKER_ENTRYPOINTS"]

#: The architecture layer DAG, lowest layer first.  Packages in the same
#: inner tuple may import each other; a package may import any package
#: in a *lower* layer, never a higher one (SL901).  Packages absent from
#: the DAG are unconstrained.
DEFAULT_LAYERS: Tuple[Tuple[str, ...], ...] = (
    ("units", "errors", "_version"),
    ("sim", "geo"),
    ("obs", "measure"),
    ("net",),
    ("cloud",),
    ("transfer",),
    ("workloads", "core"),
    ("topo",),
    ("overlay", "testbed"),
    ("campaign",),
    ("broker",),
    ("shard",),
    ("analysis",),
    ("lint",),
    ("cli",),
)

#: Kernel-hot analysis roots for the SL8xx performance rules: everything
#: reachable from these through the call graph is "hot".  Entries are
#: dotted paths relative to the scanned root package
#: (``sim.kernel.Simulator.run`` matches ``repro.sim.kernel.Simulator.run``).
DEFAULT_HOT_ENTRYPOINTS: Tuple[str, ...] = (
    "sim.kernel.Simulator.run",
    "sim.kernel.Simulator.step",
    "sim.kernel.Simulator.run_until_triggered",
    "sim.kernel.Signal.trigger",
    "net.engine.NetworkEngine._reallocate",
    "net.tcp.TcpModel.request_response_time_s",
    "net.tcp.mathis_ceiling_bps",
    "net.tcp.slow_start_penalty_s",
    "net.policer.TokenBucket.consume",
    "net.policer.TokenBucket.peek_delay",
)

#: Cross-process worker entrypoints for the SL10xx concurrency-safety
#: rules: everything reachable from these runs inside a pool child or a
#: shard worker, where mutated module/class state silently diverges from
#: the serial run.  Same dotted-path-relative-to-root format as
#: ``DEFAULT_HOT_ENTRYPOINTS``.
DEFAULT_WORKER_ENTRYPOINTS: Tuple[str, ...] = (
    "campaign.worker.child_main",
    "campaign.worker.run_cell_payload",
    "shard.plan.ShardCell.run_measurement",
)


@dataclass(frozen=True)
class LintConfig:
    """Knobs for a lint run.

    ``model_packages`` are the top-level sub-packages of ``repro`` whose
    code participates in simulation results — the determinism and unit
    rules apply there.  Kernel-safety rules (SL3xx) apply everywhere.

    ``rng_entrypoints`` are the few files allowed to call
    ``np.random.default_rng``: the seed→generator conversion points.
    Everywhere else a generator must be parameter-injected or come from
    ``RngRegistry.stream(...)``.
    """

    model_packages: FrozenSet[str] = frozenset(
        {"sim", "net", "core", "transfer", "overlay", "cloud", "broker",
         "topo", "shard"}
    )
    #: Files (relative to the scanned root) that may construct generators
    #: directly: the RngRegistry itself derives streams there.
    rng_entrypoints: FrozenSet[str] = frozenset({"sim/rng.py"})
    #: Files exempt from the magic-constant rules — the module that
    #: *defines* the unit constants obviously spells them out.
    units_definition_files: FrozenSet[str] = frozenset({"units.py"})
    #: The one file allowed to emit raw ``span_begin``/``span_end`` trace
    #: events: the SpanTracer implementation itself.  Everywhere else the
    #: paired-emission guarantee comes from the context manager.
    span_emitter_files: FrozenSet[str] = frozenset({"obs/spans.py"})
    #: The one observability file allowed to read a wall clock (SL403):
    #: the kernel profiler.  Every other obs module must stay sim-time
    #: pure so that instrumented runs remain deterministic.
    profiler_files: FrozenSet[str] = frozenset({"obs/profile.py"})
    #: The packages allowed to import ``multiprocessing`` /
    #: ``concurrent.futures`` (SL501): the campaign worker-pool engine.
    parallelism_packages: FrozenSet[str] = frozenset({"campaign"})
    #: Rule ids disabled for this run (e.g. frozenset({"SL203"})).
    disabled_rules: FrozenSet[str] = frozenset()
    #: Per-rule severity overrides, e.g. {"SL203": Severity.ERROR}.
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    #: Architecture layer DAG for SL901 (lowest layer first); empty
    #: disables the layering rules entirely.
    layers: Tuple[Tuple[str, ...], ...] = DEFAULT_LAYERS
    #: package -> the only packages allowed to import it (besides itself
    #: and tests, which are never scanned).  Enforced by SL901.
    restricted_imports: Mapping[str, FrozenSet[str]] = field(
        default_factory=lambda: {"lint": frozenset({"cli"})})
    #: Call-graph roots of the kernel-hot set for SL8xx.
    hot_entrypoints: Tuple[str, ...] = DEFAULT_HOT_ENTRYPOINTS
    #: Call-graph roots of the cross-process worker set for SL10xx.
    worker_entrypoints: Tuple[str, ...] = DEFAULT_WORKER_ENTRYPOINTS
    #: Files (relative to the scanned root) implementing the sanctioned
    #: atomic-rename write protocol — the only places SL1002 permits raw
    #: durable writes and hand-rolled ``os.replace`` publishing.
    atomic_write_files: FrozenSet[str] = frozenset({"core/atomic.py"})

    def with_disabled(self, *rule_ids: str) -> "LintConfig":
        return replace(self, disabled_rules=self.disabled_rules | frozenset(rule_ids))

    def layer_index(self) -> Mapping[str, int]:
        """package -> layer number (0 = lowest), from ``layers``."""
        index = {}
        for i, layer in enumerate(self.layers):
            for pkg in layer:
                index[pkg] = i
        return index

    def validate(self) -> List[str]:
        """Structural configuration errors (reported as SL001, exit 2).

        The checks are tree-independent: they validate the declaration's
        internal consistency, not its fit to any particular scan root.
        """
        errors: List[str] = []
        seen: set = set()
        for layer in self.layers:
            for pkg in layer:
                if pkg in seen:
                    errors.append(
                        f"layer DAG declares package {pkg!r} in more than "
                        f"one layer")
                seen.add(pkg)
        if self.layers:
            for target in sorted(self.restricted_imports):
                if target not in seen:
                    errors.append(
                        f"restricted_imports names unknown package "
                        f"{target!r} (not in the layer DAG)")
                for importer in sorted(self.restricted_imports[target]):
                    if importer not in seen:
                        errors.append(
                            f"restricted_imports allows unknown package "
                            f"{importer!r} to import {target!r} (not in "
                            f"the layer DAG)")
        for label, entries in (("hot", self.hot_entrypoints),
                               ("worker", self.worker_entrypoints)):
            for entry in entries:
                parts = entry.split(".")
                if len(parts) < 2 or not all(parts):
                    errors.append(
                        f"{label} entrypoint {entry!r} must be a dotted path "
                        f"(package.module.function)")
                elif self.layers and parts[0] not in seen:
                    errors.append(
                        f"{label} entrypoint {entry!r} names unknown package "
                        f"{parts[0]!r} (not in the layer DAG)")
        for rel in sorted(self.atomic_write_files):
            if not rel.endswith(".py") or rel.startswith("/") or "\\" in rel:
                errors.append(
                    f"atomic_write_files entry {rel!r} must be a relative "
                    f"posix path to a python file (e.g. 'core/atomic.py')")
        return errors


DEFAULT_CONFIG = LintConfig()
