"""Linter configuration: which packages are "model code", whitelists."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Mapping, Optional, Tuple

from repro.lint.findings import Severity

__all__ = ["LintConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class LintConfig:
    """Knobs for a lint run.

    ``model_packages`` are the top-level sub-packages of ``repro`` whose
    code participates in simulation results — the determinism and unit
    rules apply there.  Kernel-safety rules (SL3xx) apply everywhere.

    ``rng_entrypoints`` are the few files allowed to call
    ``np.random.default_rng``: the seed→generator conversion points.
    Everywhere else a generator must be parameter-injected or come from
    ``RngRegistry.stream(...)``.
    """

    model_packages: FrozenSet[str] = frozenset(
        {"sim", "net", "core", "transfer", "overlay", "cloud", "broker"}
    )
    #: Files (relative to the scanned root) that may construct generators
    #: directly: the RngRegistry itself derives streams there.
    rng_entrypoints: FrozenSet[str] = frozenset({"sim/rng.py"})
    #: Files exempt from the magic-constant rules — the module that
    #: *defines* the unit constants obviously spells them out.
    units_definition_files: FrozenSet[str] = frozenset({"units.py"})
    #: The one file allowed to emit raw ``span_begin``/``span_end`` trace
    #: events: the SpanTracer implementation itself.  Everywhere else the
    #: paired-emission guarantee comes from the context manager.
    span_emitter_files: FrozenSet[str] = frozenset({"obs/spans.py"})
    #: The packages allowed to import ``multiprocessing`` /
    #: ``concurrent.futures`` (SL501): the campaign worker-pool engine.
    parallelism_packages: FrozenSet[str] = frozenset({"campaign"})
    #: Rule ids disabled for this run (e.g. frozenset({"SL203"})).
    disabled_rules: FrozenSet[str] = frozenset()
    #: Per-rule severity overrides, e.g. {"SL203": Severity.ERROR}.
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)

    def with_disabled(self, *rule_ids: str) -> "LintConfig":
        return replace(self, disabled_rules=self.disabled_rules | frozenset(rule_ids))


DEFAULT_CONFIG = LintConfig()
