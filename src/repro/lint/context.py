"""Per-file analysis context and shared AST helpers."""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, Optional

from repro.lint.config import LintConfig

__all__ = [
    "FileContext",
    "dotted_name",
    "identifiers_in",
    "is_setish",
    "parse_suppressions",
    "terminal_name",
]

#: ``# simlint: ignore[SL103]`` or ``# simlint: ignore[SL101, SL104] -- why``.
_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*ignore\[([^\]]+)\]")


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rule ids suppressed on that line (``*`` = all)."""
    out: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            rules = frozenset(r.strip() for r in m.group(1).split(",") if r.strip())
            if rules:
                out[lineno] = rules
    return out


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """The identifier a load/store ultimately refers to: ``x`` or ``obj.x``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def is_setish(node: ast.AST) -> bool:
    """Expressions whose iteration order depends on hashing."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if dotted_name(node.func) in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        return is_setish(node.left) or is_setish(node.right)
    return False


def identifiers_in(node: ast.AST) -> Iterator[str]:
    """Every identifier mentioned anywhere in a subtree."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr
        elif isinstance(sub, ast.arg):
            yield sub.arg
        elif isinstance(sub, ast.keyword) and sub.arg:
            yield sub.arg


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed file."""

    rel: str  # posix path relative to the scanned root
    source: str
    tree: ast.Module
    config: LintConfig
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, rel: str, config: LintConfig) -> "FileContext":
        return cls(
            rel=rel,
            source=source,
            tree=ast.parse(source, filename=rel),
            config=config,
            suppressions=parse_suppressions(source),
        )

    @property
    def package(self) -> str:
        """First path component: ``net/packetsim.py`` -> ``net``."""
        head = self.rel.split("/", 1)[0]
        return head[:-3] if head.endswith(".py") else head

    @property
    def in_model_code(self) -> bool:
        return self.package in self.config.model_packages

    @property
    def is_rng_entrypoint(self) -> bool:
        return self.rel in self.config.rng_entrypoints

    @property
    def defines_units(self) -> bool:
        return self.rel in self.config.units_definition_files

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        rules = self.suppressions.get(line)
        return bool(rules) and (rule_id in rules or "*" in rules)
