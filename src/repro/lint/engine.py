"""Rule registry and the analysis engine.

A rule is a function ``check(ctx) -> iterable of (lineno, message)``
registered under a stable id (``SL101``...).  The engine parses each
file once, runs every applicable rule, attaches severities, and filters
``# simlint: ignore[RULE]`` suppressions.  Baseline filtering happens a
layer up (:mod:`repro.lint.baseline`) so reports can show both views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity

__all__ = [
    "Rule", "RULES", "rule", "all_rules",
    "GraphRule", "GRAPH_RULES", "graph_rule", "all_graph_rules",
    "LintEngine", "LintReport",
]

CheckFn = Callable[[FileContext], Iterable[Tuple[int, str]]]

#: Whole-program checks yield (rel path, lineno, message) triples.
GraphCheckFn = Callable[[object], Iterable[Tuple[str, int, str]]]

#: Scope of a rule: ``model`` rules only run on files inside the
#: configured model packages; ``tree`` rules run on every file.
MODEL = "model"
TREE = "tree"

#: Reserved id for files the engine cannot parse at all.
PARSE_ERROR_RULE = "SL001"


@dataclass(frozen=True)
class Rule:
    """A registered check with its catalogue metadata."""

    rule_id: str
    summary: str
    severity: Severity
    scope: str
    check: CheckFn

    def applies_to(self, ctx: FileContext) -> bool:
        if self.scope == MODEL and not ctx.in_model_code:
            return False
        return True


RULES: Dict[str, Rule] = {}


def rule(rule_id: str, summary: str, *, severity: Severity = Severity.ERROR,
         scope: str = TREE) -> Callable[[CheckFn], CheckFn]:
    """Class/function decorator registering a check under ``rule_id``."""
    if scope not in (MODEL, TREE):
        raise ValueError(f"unknown rule scope {scope!r}")

    def deco(fn: CheckFn) -> CheckFn:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(rule_id, summary, severity, scope, fn)
        return fn

    return deco


def all_rules() -> List[Rule]:
    """The shipped catalogue, sorted by id (import side effects included)."""
    import repro.lint.rules  # noqa: F401  -- ensure registration ran

    return sorted(RULES.values(), key=lambda r: r.rule_id)


@dataclass(frozen=True)
class GraphRule:
    """A whole-program check running over the project call graph.

    Unlike per-file :class:`Rule` checks, a graph rule sees every file at
    once (a :class:`repro.lint.graph.ProjectGraph`) and yields findings
    as ``(rel, lineno, message)`` triples — the analysis driver attaches
    severities and applies suppressions.
    """

    rule_id: str
    summary: str
    severity: Severity
    check: GraphCheckFn


GRAPH_RULES: Dict[str, GraphRule] = {}


def graph_rule(rule_id: str, summary: str, *,
               severity: Severity = Severity.ERROR
               ) -> Callable[[GraphCheckFn], GraphCheckFn]:
    """Decorator registering a whole-program check under ``rule_id``."""

    def deco(fn: GraphCheckFn) -> GraphCheckFn:
        if rule_id in RULES or rule_id in GRAPH_RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        GRAPH_RULES[rule_id] = GraphRule(rule_id, summary, severity, fn)
        return fn

    return deco


def all_graph_rules() -> List[GraphRule]:
    """The shipped whole-program catalogue, sorted by id."""
    import repro.lint.rules  # noqa: F401  -- ensure registration ran

    return sorted(GRAPH_RULES.values(), key=lambda r: r.rule_id)


@dataclass
class LintReport:
    """Outcome of one engine run (before baseline filtering)."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]


class LintEngine:
    """Runs the registered rules over sources, files, or trees."""

    def __init__(self, config: Optional[LintConfig] = None,
                 rules: Optional[Sequence[Rule]] = None):
        self.config = config or DEFAULT_CONFIG
        self._rules = list(rules) if rules is not None else all_rules()

    def active_rules(self) -> List[Rule]:
        return [r for r in self._rules if r.rule_id not in self.config.disabled_rules]

    def _severity(self, r: Rule) -> Severity:
        return self.config.severity_overrides.get(r.rule_id, r.severity)

    # -- single-source entry points -------------------------------------

    def lint_source(self, source: str, rel: str = "snippet.py",
                    report: Optional[LintReport] = None) -> List[Finding]:
        """Lint one blob of source text as if it lived at ``rel``.

        Returns the unsuppressed findings (and records suppressed ones on
        ``report`` when given).  Unparseable source yields a single
        ``SL001`` finding instead of raising.
        """
        report = report if report is not None else LintReport()
        try:
            ctx = FileContext.from_source(source, rel, self.config)
        except SyntaxError as exc:
            finding = Finding(rel, exc.lineno or 1, PARSE_ERROR_RULE,
                              Severity.ERROR, f"cannot parse: {exc.msg}")
            report.findings.append(finding)
            return [finding]
        return self.lint_context(ctx, report)

    def lint_context(self, ctx: FileContext,
                     report: Optional[LintReport] = None) -> List[Finding]:
        """Run the per-file rules over an already-parsed context."""
        report = report if report is not None else LintReport()
        rel = ctx.rel
        out: List[Finding] = []
        seen = set()
        for r in self.active_rules():
            if not r.applies_to(ctx):
                continue
            severity = self._severity(r)
            for lineno, message in r.check(ctx):
                key = (rel, lineno, r.rule_id, message)
                if key in seen:
                    continue
                seen.add(key)
                finding = Finding(rel, lineno, r.rule_id, severity, message)
                if ctx.is_suppressed(lineno, r.rule_id):
                    report.suppressed.append(finding)
                else:
                    out.append(finding)
        out.sort(key=Finding.sort_key)
        report.findings.extend(out)
        return out

    # -- filesystem entry points ----------------------------------------

    def lint_file(self, path: Union[str, Path], root: Union[str, Path, None] = None,
                  report: Optional[LintReport] = None) -> List[Finding]:
        path = Path(path)
        root = Path(root) if root is not None else path.parent
        rel = path.relative_to(root).as_posix()
        source = path.read_text(encoding="utf-8")
        findings = self.lint_source(source, rel, report=report)
        if report is not None:
            report.files_scanned += 1
        return findings

    def lint_tree(self, root: Union[str, Path]) -> LintReport:
        """Lint every ``*.py`` under ``root`` (or a single file)."""
        root = Path(root)
        report = LintReport()
        if root.is_file():
            self.lint_file(root, root.parent, report=report)
        else:
            for path in sorted(root.rglob("*.py")):
                self.lint_file(path, root, report=report)
        report.findings.sort(key=Finding.sort_key)
        return report

    def lint_paths(self, paths: Sequence[Union[str, Path]]) -> LintReport:
        """Lint several roots, merging the reports."""
        merged = LintReport()
        for p in paths:
            sub = self.lint_tree(p)
            merged.findings.extend(sub.findings)
            merged.suppressed.extend(sub.suppressed)
            merged.files_scanned += sub.files_scanned
        merged.findings.sort(key=Finding.sort_key)
        return merged
