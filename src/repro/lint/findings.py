"""The linter's output vocabulary: findings and severities."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Union

__all__ = ["Finding", "Severity"]


class Severity(str, enum.Enum):
    """How hard a finding fails the gate.

    ``ERROR`` findings make ``repro lint`` exit non-zero; ``WARNING``
    findings are reported but do not fail the gate (heuristic rules whose
    false-positive rate is inherently higher run at this level).
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``file`` is the path relative to the scanned root (posix separators),
    which keeps findings stable across machines and is the key used by
    the baseline file.
    """

    file: str
    line: int
    rule: str
    severity: Severity
    message: str

    def sort_key(self):
        return (self.file, self.line, self.rule)

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule} {self.severity.value}: {self.message}"

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """The stable JSON schema: file, line, rule, severity, message."""
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
