"""``repro lint --fix`` — the autofix engine.

Two modes, both driven by ordinary lint findings:

* ``--fix-mode=rewrite`` (default) repairs the auto-fixable rules
  (:data:`~repro.lint.fix.rewriters.FIXABLE_RULES`: SL104 set-iteration
  ordering, SL201 magic unit literals, SL802 hot-loop attribute-chain
  hoists) with token-preserving span edits;
* ``--fix-mode=suppress`` inserts inline ``# simlint: ignore[...]``
  markers instead, for any rule.

``--dry-run`` previews the unified diffs without writing.  See
:mod:`repro.lint.fix.engine` for the safety contract (idempotent,
atomic per file, deterministic output).
"""

from repro.lint.fix.engine import (
    MODE_REWRITE,
    MODE_SUPPRESS,
    FileFix,
    FixResult,
    fix_findings,
)
from repro.lint.fix.rewriters import FIXABLE_RULES, apply_edits, plan_edits

__all__ = [
    "FIXABLE_RULES",
    "FileFix",
    "FixResult",
    "MODE_REWRITE",
    "MODE_SUPPRESS",
    "apply_edits",
    "fix_findings",
    "plan_edits",
]
