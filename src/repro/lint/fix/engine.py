"""The autofix driver behind ``repro lint --fix``.

Given the findings of a lint run and the files they live in, the engine
plans span edits per file (``--fix-mode=rewrite``, via the per-rule
rewriters) or inline suppression markers (``--fix-mode=suppress``),
applies them back-to-front, and verifies the result still parses before
anything touches disk.  ``--dry-run`` renders the same unified diffs
without writing.

Safety properties the tests pin down:

* **Idempotence** — fixing twice equals fixing once: a rewrite removes
  the trigger pattern, a suppression marker silences the rule, so the
  second pass plans zero edits.
* **Atomic per file** — overlapping edits or a post-edit parse failure
  skip the *whole file*; a file is either fixed and reparseable or
  untouched.
* **Determinism** — files are processed in sorted order and edits in
  plan order, so the diff output is byte-stable run to run.
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.findings import Finding
from repro.lint.fix.rewriters import (
    FIXABLE_RULES,
    Edit,
    apply_edits,
    plan_edits,
    suppression_edits,
)

__all__ = ["FileFix", "FixResult", "fix_findings"]

MODE_REWRITE = "rewrite"
MODE_SUPPRESS = "suppress"


@dataclass
class FileFix:
    """Outcome of fixing one file."""

    rel: str
    path: Path
    before: str
    after: str
    fixed: List[Finding] = field(default_factory=list)
    skipped: List[Finding] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return self.after != self.before

    def diff(self) -> str:
        lines = difflib.unified_diff(
            self.before.splitlines(keepends=True),
            self.after.splitlines(keepends=True),
            fromfile=f"a/{self.rel}", tofile=f"b/{self.rel}")
        return "".join(lines)


@dataclass
class FixResult:
    """Everything one ``--fix`` pass decided, before/after any writes."""

    files: List[FileFix] = field(default_factory=list)
    #: Findings whose file could not be mapped back to a scanned path.
    unmapped: List[Finding] = field(default_factory=list)

    @property
    def fixed(self) -> List[Finding]:
        return [f for ff in self.files for f in ff.fixed]

    @property
    def skipped(self) -> List[Finding]:
        return [f for ff in self.files for f in ff.skipped]

    def changed_files(self) -> List[FileFix]:
        return [ff for ff in self.files if ff.changed]

    def write(self) -> int:
        """Persist every changed file; returns the number written."""
        written = 0
        for ff in self.changed_files():
            ff.path.write_text(ff.after, encoding="utf-8")
            written += 1
        return written


def _rewrite_file(rel: str, path: Path, source: str,
                  findings: List[Finding]) -> FileFix:
    fix = FileFix(rel=rel, path=path, before=source, after=source)
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError:
        fix.skipped.extend(findings)
        return fix
    edits: List[Edit] = []
    seen_edits: Dict[Edit, bool] = {}
    for finding in findings:
        planned = plan_edits(tree, source, finding)
        if not planned:
            fix.skipped.append(finding)
            continue
        fresh = [e for e in planned if e not in seen_edits]
        for e in fresh:
            seen_edits[e] = True
        edits.extend(fresh)
        fix.fixed.append(finding)
    if not edits:
        return fix
    patched = apply_edits(source, edits)
    if patched is not None:
        try:
            ast.parse(patched, filename=rel)
        except SyntaxError:
            patched = None
    if patched is None:  # overlap or broken rewrite: leave the file alone
        fix.skipped.extend(fix.fixed)
        fix.fixed = []
        return fix
    fix.after = patched
    return fix


def _suppress_file(rel: str, path: Path, source: str,
                   findings: List[Finding]) -> FileFix:
    fix = FileFix(rel=rel, path=path, before=source, after=source)
    by_line: Dict[int, List[Finding]] = {}
    for finding in findings:
        by_line.setdefault(finding.line, []).append(finding)
    edits: List[Edit] = []
    for line in sorted(by_line):
        group = by_line[line]
        rule_ids = sorted({f.rule for f in group})
        planned = suppression_edits(source, line, rule_ids)
        if not planned:
            fix.skipped.extend(group)
            continue
        edits.extend(planned)
        fix.fixed.extend(group)
    if edits:
        patched = apply_edits(source, edits)
        if patched is None:
            fix.skipped.extend(fix.fixed)
            fix.fixed = []
        else:
            fix.after = patched
    return fix


def fix_findings(findings: List[Finding], rel_paths: Dict[str, Path],
                 mode: str = MODE_REWRITE) -> FixResult:
    """Plan fixes for *findings* against the files in *rel_paths*.

    Rewrite mode considers only :data:`FIXABLE_RULES`; suppress mode
    accepts any rule (an inline marker silences anything).  Nothing is
    written — the caller inspects/prints the result and calls
    :meth:`FixResult.write`.
    """
    if mode not in (MODE_REWRITE, MODE_SUPPRESS):
        raise ValueError(f"unknown fix mode {mode!r}")
    result = FixResult()
    grouped: Dict[str, List[Finding]] = {}
    for finding in sorted(findings, key=Finding.sort_key):
        if mode == MODE_REWRITE and finding.rule not in FIXABLE_RULES:
            continue
        if finding.file not in rel_paths:
            result.unmapped.append(finding)
            continue
        grouped.setdefault(finding.file, []).append(finding)
    for rel in sorted(grouped):
        path = rel_paths[rel]
        try:
            source = path.read_bytes().decode("utf-8")
        except OSError:
            result.unmapped.extend(grouped[rel])
            continue
        if mode == MODE_REWRITE:
            result.files.append(_rewrite_file(rel, path, source, grouped[rel]))
        else:
            result.files.append(_suppress_file(rel, path, source, grouped[rel]))
    return result
