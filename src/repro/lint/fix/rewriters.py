"""Token-preserving rewriters — one per auto-fixable rule.

Each rewriter maps a finding onto *span edits* against the original
source: ``(line, col, end_line, end_col, replacement)`` with 1-based
lines and the ``ast`` byte column offsets.  Nothing is re-rendered
through an unparser — untouched tokens, comments, and formatting survive
byte-for-byte, which is what keeps a fixed tree diff-minimal and the fix
engine idempotent (once the trigger pattern is gone, the rule no longer
fires and the rewriter is never consulted again).

The fixable per-rule semantics:

* **SL104** — wrap the hash-ordered iterable in ``sorted(...)``.
* **SL201** — replace the magic literal (``10**6``, ``1048576``) with
  the named ``repro.units`` constant the finding suggests, importing
  ``units`` if the module does not bind it yet.
* **SL802** — hoist a repeatedly resolved attribute chain into a local
  bound immediately before the hot loop, then rewrite every load of the
  chain inside the loop to use the local.
* **SL1002** — rewrite a non-atomic ``path.write_text(...)`` /
  ``path.write_bytes(...)`` into the sanctioned
  ``atomic_write_text(path, ...)`` / ``atomic_write_bytes(path, ...)``
  from :mod:`repro.core.atomic`, importing the helper if needed.
  Hand-rolled tmp+rename protocols are *not* rewritten — removing the
  surrounding ``os.replace`` scaffolding safely needs a human.

A rewriter returns ``None`` when it cannot prove the edit is safe (the
node moved, the hoist name would collide); the engine then reports the
finding as skipped rather than guessing.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Tuple

from repro.lint.context import dotted_name, is_setish
from repro.lint.findings import Finding
from repro.lint.rules.units import _POW_NAMES

__all__ = ["FIXABLE_RULES", "Edit", "apply_edits", "plan_edits",
           "suppression_edits"]

#: Rules ``--fix-mode=rewrite`` knows how to repair.
FIXABLE_RULES = ("SL104", "SL201", "SL802", "SL1002")

#: (line, col, end_line, end_col, replacement) — a zero-width span
#: (line == end_line, col == end_col) is a pure insertion.
Edit = Tuple[int, int, int, int, str]

#: ``units.MB`` -> 10**6, inverted from the rule's suggestion table.
_NAME_TO_VALUE = {name: value for value, name in sorted(_POW_NAMES.items())}

_USE_RE = re.compile(r"; use (units\.[A-Za-z_]+)")
_HOIST_RE = re.compile(
    r"^`(?P<chain>[A-Za-z_][\w.]*)` is resolved \d+x per iteration of the "
    r"loop at line (?P<loop>\d+)")


# -- edit application -------------------------------------------------------


def apply_edits(source: str, edits: List[Edit]) -> Optional[str]:
    """*source* with all *edits* applied, or None if any spans overlap.

    Offsets are resolved against the UTF-8 encoding (matching ``ast``
    column semantics) and applied back-to-front so earlier spans stay
    valid.  Coincident zero-width insertions are kept in plan order.
    """
    data = source.encode("utf-8")
    starts = [0]
    for raw_line in data.splitlines(keepends=True):
        starts.append(starts[-1] + len(raw_line))

    def pos(line: int, col: int) -> int:
        return starts[line - 1] + col

    spans = []
    for order, (line, col, end_line, end_col, text) in enumerate(edits):
        spans.append((pos(line, col), pos(end_line, end_col), order, text))
    spans.sort(key=lambda s: (s[0], s[1], s[2]))
    for (_, prev_end, _, _), (nxt_start, _, _, _) in zip(spans, spans[1:]):
        if nxt_start < prev_end:
            return None  # overlapping rewrites: refuse the whole file
    for start, end, _order, text in reversed(spans):
        data = data[:start] + text.encode("utf-8") + data[end:]
    return data.decode("utf-8")


def _span(node: ast.AST) -> Tuple[int, int, int, int]:
    return (node.lineno, node.col_offset, node.end_lineno, node.end_col_offset)


def _replace(node: ast.AST, text: str) -> Edit:
    line, col, end_line, end_col = _span(node)
    return (line, col, end_line, end_col, text)


def _insert(line: int, col: int, text: str) -> Edit:
    return (line, col, line, col, text)


# -- SL104: set iteration -> sorted(...) ------------------------------------


def _fix_set_iteration(tree: ast.Module, source: str,
                       finding: Finding) -> Optional[List[Edit]]:
    edits: List[Edit] = []
    for node in ast.walk(tree):
        iters: List[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters = [node.iter]
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            iters = [gen.iter for gen in node.generators]
        for it in iters:
            if it.lineno == finding.line and is_setish(it):
                edits.append(_insert(it.lineno, it.col_offset, "sorted("))
                edits.append(_insert(it.end_lineno, it.end_col_offset, ")"))
    return edits or None


# -- SL201: magic literal -> named units constant ---------------------------


def _units_bound(tree: ast.Module) -> bool:
    """True when module scope already binds the name ``units``."""
    for st in tree.body:
        if isinstance(st, ast.Import):
            for alias in st.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                if bound == "units":
                    return True
        elif isinstance(st, ast.ImportFrom):
            for alias in st.names:
                if (alias.asname or alias.name) == "units":
                    return True
    return False


def _import_insertion_line(tree: ast.Module) -> int:
    """Line *after* which ``from repro import units`` should be added."""
    line = 0
    body = tree.body
    if body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        line = body[0].end_lineno  # module docstring
    for st in body:
        if isinstance(st, (ast.Import, ast.ImportFrom)):
            line = max(line, st.end_lineno)
    return line


def _literal_value(node: ast.expr) -> Optional[object]:
    """The numeric value of a literal or a literal ``x ** y``.

    ``ast.literal_eval`` rejects ``BinOp`` power expressions, so the one
    shape SL201 reports (``10 ** 6``) is folded by hand.
    """
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
        base = _literal_value(node.left)
        exp = _literal_value(node.right)
        if isinstance(base, int) and isinstance(exp, int) and 0 <= exp < 64:
            return base ** exp
        return None
    try:
        value = ast.literal_eval(node)
    except (ValueError, TypeError, SyntaxError, MemoryError):
        return None
    return value if isinstance(value, (int, float)) else None


def _fix_magic_literal(tree: ast.Module, source: str,
                       finding: Finding) -> Optional[List[Edit]]:
    match = _USE_RE.search(finding.message)
    if match is None:
        return None
    suggestion = match.group(1)
    value = _NAME_TO_VALUE.get(suggestion)
    if value is None:
        return None
    target: Optional[ast.expr] = None
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Constant, ast.BinOp)):
            continue
        if getattr(node, "lineno", None) != finding.line:
            continue
        if isinstance(node, ast.BinOp) and not isinstance(node.op, ast.Pow):
            continue
        if _literal_value(node) == value:
            # Prefer the widest matching node (the whole ``10 ** 6``,
            # not its ``10`` operand): BinOps are walked before leaves.
            target = node
            break
    if target is None:
        return None
    edits = [_replace(target, suggestion)]
    if not _units_bound(tree):
        after = _import_insertion_line(tree)
        edits.append(_insert(after + 1, 0, "from repro import units\n"))
    return edits


# -- SL802: hoist an attribute chain out of a hot loop ----------------------


def _parent_map(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _scope_bound_names(func: ast.AST) -> frozenset:
    """Names bound anywhere in a function scope (stores, params, defs)."""
    bound = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, ast.arg):
            bound.add(node.arg)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            bound.add(node.name)
    return frozenset(bound)


def _hoist_name(chain: str, taken: frozenset) -> Optional[str]:
    name = chain.replace(".", "_")
    if name.startswith("self_"):
        name = name[len("self_"):]
    if name not in taken:
        return name
    fallback = f"{name}_hoisted"
    return fallback if fallback not in taken else None


def _fix_hoist_chain(tree: ast.Module, source: str,
                     finding: Finding) -> Optional[List[Edit]]:
    match = _HOIST_RE.match(finding.message)
    if match is None:
        return None
    chain = match.group("chain")
    loop_line = int(match.group("loop"))
    parents = _parent_map(tree)
    loop: Optional[ast.stmt] = None
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)) \
                and node.lineno == loop_line:
            loop = node
            break
    if loop is None:
        return None
    scope: ast.AST = loop
    while scope in parents and not isinstance(
            scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        scope = parents[scope]
    name = _hoist_name(chain, _scope_bound_names(scope))
    if name is None:
        return None
    loads = [node for node in ast.walk(loop)
             if isinstance(node, ast.Attribute)
             and isinstance(node.ctx, ast.Load)
             and dotted_name(node) == chain]
    if not loads:
        return None
    indent = " " * loop.col_offset
    edits = [_insert(loop.lineno, 0, f"{indent}{name} = {chain}\n")]
    edits.extend(_replace(node, name) for node in loads)
    return edits


# -- SL1002: non-atomic write_text/write_bytes -> repro.core.atomic ---------


def _name_bound(tree: ast.Module, name: str) -> bool:
    """True when module scope already imports the given *name*."""
    for st in tree.body:
        if isinstance(st, ast.Import):
            for alias in st.names:
                if (alias.asname or alias.name.split(".", 1)[0]) == name:
                    return True
        elif isinstance(st, ast.ImportFrom):
            for alias in st.names:
                if (alias.asname or alias.name) == name:
                    return True
    return False


def _fix_atomic_write(tree: ast.Module, source: str,
                      finding: Finding) -> Optional[List[Edit]]:
    if "hand-rolls" in finding.message:
        # The tmp+os.replace scaffolding around the write would be left
        # behind (double-rename); migrating those needs a human.
        return None
    target: Optional[ast.Call] = None
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and node.lineno == finding.line \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("write_text", "write_bytes"):
            target = node
            break
    if target is None or not target.args:
        return None
    receiver = ast.get_source_segment(source, target.func.value)
    if receiver is None:
        return None
    helper = ("atomic_write_text" if target.func.attr == "write_text"
              else "atomic_write_bytes")
    first = target.args[0]
    edits = [_replace(target.func, helper),
             _insert(first.lineno, first.col_offset, f"{receiver}, ")]
    if not _name_bound(tree, helper):
        after = _import_insertion_line(tree)
        edits.append(_insert(
            after + 1, 0, f"from repro.core.atomic import {helper}\n"))
    return edits


# -- suppress mode ----------------------------------------------------------

_MARKER_RE = re.compile(r"#\s*simlint:\s*ignore\[([^\]]+)\]")


def suppression_edits(source: str, line: int,
                      rule_ids: List[str]) -> Optional[List[Edit]]:
    """Edits adding ``# simlint: ignore[...]`` markers to one line."""
    lines = source.splitlines()
    if not 1 <= line <= len(lines):
        return None
    text = lines[line - 1]
    match = _MARKER_RE.search(text)
    if match is not None:
        present = [r.strip() for r in match.group(1).split(",")]
        merged = present + [r for r in sorted(rule_ids) if r not in present]
        if merged == present:
            return None  # already suppressed
        # Columns are byte offsets; the marker region is ASCII, so the
        # str offsets of the match are safe to reuse directly.
        return [(line, match.start(1), line, match.end(1),
                 ",".join(merged))]
    ids = ",".join(sorted(rule_ids))
    col = len(text.encode("utf-8"))
    marker = f"  # simlint: ignore[{ids}] -- accepted via repro lint --fix"
    return [(line, col, line, col, marker)]


# -- dispatch ---------------------------------------------------------------

_REWRITERS = {
    "SL104": _fix_set_iteration,
    "SL201": _fix_magic_literal,
    "SL802": _fix_hoist_chain,
    "SL1002": _fix_atomic_write,
}


def plan_edits(tree: ast.Module, source: str,
               finding: Finding) -> Optional[List[Edit]]:
    """Span edits repairing *finding*, or None when no safe fix exists."""
    rewriter = _REWRITERS.get(finding.rule)
    if rewriter is None:
        return None
    return rewriter(tree, source, finding)
