"""Whole-program analysis layer: summaries, call graph, cache, driver.

This subpackage powers ``repro lint --graph``:

* :mod:`repro.lint.graph.summary` — per-file, JSON-serializable
  analysis summaries (the unit of incrementality);
* :mod:`repro.lint.graph.graphbuild` — the project symbol table and
  import/call graph, built from summaries alone;
* :mod:`repro.lint.graph.cache` — the ``.lint_cache/`` incremental
  store keyed by content hash + rule-set fingerprint;
* :mod:`repro.lint.graph.analyzer` — the driver combining the per-file
  engine, the cache, and the registered graph rules
  (SL6xx / SL7xx / SL8xx / SL9xx);
* :mod:`repro.lint.graph.dot` — deterministic DOT export for call-graph
  inspection (``repro lint graph --dot``).
"""

from repro.lint.graph.analyzer import (
    AnalysisResult,
    ProjectAnalyzer,
    collect_reference_tokens,
)
from repro.lint.graph.cache import (
    CACHE_VERSION,
    DEFAULT_CACHE_DIR,
    CacheEntry,
    CacheStats,
    SummaryCache,
    ruleset_fingerprint,
)
from repro.lint.graph.dot import to_dot
from repro.lint.graph.graphbuild import Edge, ProjectGraph, build_graph
from repro.lint.graph.summary import (
    MODULE_BODY,
    SUMMARY_VERSION,
    CallSite,
    FileSummary,
    FunctionSummary,
    summarize_source,
    summarize_tree,
    unit_of_name,
)

__all__ = [
    "AnalysisResult",
    "CACHE_VERSION",
    "CacheEntry",
    "CacheStats",
    "CallSite",
    "DEFAULT_CACHE_DIR",
    "Edge",
    "FileSummary",
    "FunctionSummary",
    "MODULE_BODY",
    "ProjectAnalyzer",
    "ProjectGraph",
    "SUMMARY_VERSION",
    "SummaryCache",
    "build_graph",
    "collect_reference_tokens",
    "ruleset_fingerprint",
    "summarize_source",
    "summarize_tree",
    "to_dot",
    "unit_of_name",
]
