"""The whole-program analysis driver behind ``repro lint --graph``.

One :class:`ProjectAnalyzer` run:

1. walks the scan roots, content-hashing every ``*.py`` file;
2. reuses the cached per-file findings + summary for unchanged files,
   re-parsing and re-analyzing only what changed (see
   :mod:`repro.lint.graph.cache`);
3. rebuilds the project call graph from the (cached + fresh) summaries;
4. runs the registered whole-program rules (SL6xx taint, SL7xx unit
   dataflow) over the graph, applying inline suppressions and severity
   overrides exactly like the per-file engine.

The resulting :class:`~repro.lint.engine.LintReport` is byte-identical
whether the cache was cold, warm, stale, or corrupt — the cache is an
accelerator, not an input.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.context import FileContext
from repro.lint.engine import (
    PARSE_ERROR_RULE,
    GraphRule,
    LintEngine,
    LintReport,
    all_graph_rules,
)
from repro.lint.findings import Finding, Severity
from repro.lint.graph.cache import (
    CacheEntry,
    CacheStats,
    SummaryCache,
    ruleset_fingerprint,
)
from repro.lint.graph.graphbuild import ProjectGraph, build_graph
from repro.lint.graph.summary import FileSummary, summarize_tree

__all__ = ["AnalysisResult", "ProjectAnalyzer", "collect_reference_tokens"]

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: File kinds scanned for identifier references (SL904 dead exports).
_REFERENCE_GLOBS = ("*.py", "*.md", "*.rst", "*.txt", "*.ipynb")


def collect_reference_tokens(roots: Sequence[Union[str, Path]]) -> frozenset:
    """Identifier-shaped tokens in docs/tests/examples trees.

    The SL904 dead-export rule treats any exported name that appears in
    this corpus (or in the scanned tree itself) as referenced.  Missing
    roots are skipped silently so callers can pass conventional paths
    without probing.
    """
    tokens = set()
    for root in [Path(r) for r in roots]:
        if root.is_file():
            files = [root]
        elif root.is_dir():
            files = []
            for pattern in _REFERENCE_GLOBS:
                files.extend(sorted(root.rglob(pattern)))
        else:
            continue
        for path in files:
            try:
                text = path.read_text(encoding="utf-8", errors="replace")
            except OSError:
                continue
            tokens.update(_IDENT_RE.findall(text))
    return frozenset(tokens)


@dataclass
class AnalysisResult:
    """Everything one whole-program run produced."""

    report: LintReport
    graph: ProjectGraph
    cache_stats: CacheStats
    summaries: Dict[str, FileSummary]


def _iter_files(root: Path):
    """(path, rel, rootdir) for every python file under *root*."""
    if root.is_file():
        yield root, root.name, root.parent
        return
    for path in sorted(root.rglob("*.py")):
        yield path, path.relative_to(root).as_posix(), root


def _module_name(rootpkg: str, rel: str) -> str:
    """``net/engine.py`` under root ``repro`` -> ``repro.net.engine``."""
    parts = rel[:-3].split("/")  # strip ".py"
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([rootpkg] + parts) if parts else rootpkg


class ProjectAnalyzer:
    """Whole-program lint: per-file rules + call-graph rules + cache."""

    def __init__(self, config: Optional[LintConfig] = None,
                 cache_dir: Optional[Union[str, Path]] = None,
                 engine: Optional[LintEngine] = None,
                 graph_rules: Optional[Sequence[GraphRule]] = None,
                 reference_roots: Optional[Sequence[Union[str, Path]]] = None):
        self.config = config or DEFAULT_CONFIG
        self.engine = engine or LintEngine(config=self.config)
        rules = list(graph_rules) if graph_rules is not None else all_graph_rules()
        self.graph_rules = [r for r in rules
                            if r.rule_id not in self.config.disabled_rules]
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        #: docs/tests/examples trees whose identifiers count as uses of
        #: exported names (SL904); empty means in-tree references only.
        self.reference_roots = list(reference_roots or [])

    def _severity(self, rule: GraphRule) -> Severity:
        return self.config.severity_overrides.get(rule.rule_id, rule.severity)

    def _open_cache(self) -> Optional[SummaryCache]:
        if self.cache_dir is None:
            return None
        fingerprint = ruleset_fingerprint(
            self.config, self.engine.active_rules(), self.graph_rules)
        return SummaryCache(self.cache_dir, fingerprint)

    # -- per-file pass ------------------------------------------------------

    def _analyze_file(self, path: Path, rel: str, module: str) -> CacheEntry:
        """Parse once; run the per-file rules and build the summary."""
        source = path.read_bytes().decode("utf-8")
        scratch = LintReport()
        try:
            ctx = FileContext.from_source(source, rel, self.config)
        except SyntaxError as exc:
            finding = Finding(rel, exc.lineno or 1, PARSE_ERROR_RULE,
                              Severity.ERROR, f"cannot parse: {exc.msg}")
            summary = FileSummary(rel=rel, module=module,
                                  parse_error=(exc.lineno or 1, str(exc.msg)))
            return CacheEntry(sha256="", summary=summary, findings=[finding])
        findings = self.engine.lint_context(ctx, scratch)
        summary = summarize_tree(ctx.tree, rel, module, ctx.suppressions)
        return CacheEntry(sha256="", summary=summary, findings=findings,
                          suppressed=list(scratch.suppressed))

    # -- the run ------------------------------------------------------------

    def run(self, roots: Sequence[Union[str, Path]]) -> AnalysisResult:
        cache = self._open_cache()
        stats = cache.stats if cache is not None else CacheStats()
        report = LintReport()
        summaries: Dict[str, FileSummary] = {}

        for root in [Path(r) for r in roots]:
            rootpkg = (root.name if root.is_dir() else root.parent.name)
            for path, rel, _rootdir in _iter_files(root):
                digest = hashlib.sha256(path.read_bytes()).hexdigest()
                entry = cache.lookup(rel, digest) if cache is not None else None
                if entry is None:
                    if cache is None:
                        stats.misses += 1
                    entry = self._analyze_file(path, rel,
                                               _module_name(rootpkg, rel))
                    entry.sha256 = digest
                if cache is not None:
                    cache.store(rel, entry)
                report.files_scanned += 1
                report.findings.extend(entry.findings)
                report.suppressed.extend(entry.suppressed)
                summaries[rel] = entry.summary

        extra_refs = collect_reference_tokens(self.reference_roots)
        graph = build_graph(summaries, self.config, extra_refs=extra_refs)
        kept, suppressed = self._graph_findings(graph)
        report.findings.extend(kept)
        report.suppressed.extend(suppressed)
        report.findings.sort(key=Finding.sort_key)
        report.suppressed.sort(key=Finding.sort_key)

        if cache is not None:
            cache.save()
        return AnalysisResult(report=report, graph=graph,
                              cache_stats=stats, summaries=summaries)

    def _graph_findings(self, graph: ProjectGraph):
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        seen = {}
        for rule in self.graph_rules:
            severity = self._severity(rule)
            for rel, line, message in rule.check(graph):
                key = (rel, line, rule.rule_id, message)
                if key in seen:
                    continue
                seen[key] = True
                finding = Finding(rel, line, rule.rule_id, severity, message)
                summary = graph.summaries.get(rel)
                if summary is not None and summary.is_suppressed(line, rule.rule_id):
                    suppressed.append(finding)
                else:
                    kept.append(finding)
        kept.sort(key=Finding.sort_key)
        suppressed.sort(key=Finding.sort_key)
        return kept, suppressed
