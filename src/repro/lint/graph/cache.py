"""The incremental analysis cache (``.lint_cache/``).

One JSON document per (rule-set fingerprint), mapping each scanned file
to its content hash, its per-file findings, and its whole-program
summary.  On a warm run an unchanged file costs one ``sha256`` — no
parse, no rule execution — and the call graph is rebuilt from cached
summaries alone.  The fingerprint covers the summary schema version, the
active rule catalogue (ids and severities), and the lint configuration,
so any change to the analyzer invalidates the whole cache rather than
serving stale results.

The cache is an *accelerator*, never a source of truth: a corrupt or
stale entry (hash mismatch, bad JSON, wrong version) is dropped and the
file transparently re-analyzed — reports are byte-identical either way.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.atomic import atomic_write_text
from repro.lint.findings import Finding, Severity
from repro.lint.graph.summary import SUMMARY_VERSION, FileSummary

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "CacheEntry",
    "CacheStats",
    "SummaryCache",
    "ruleset_fingerprint",
]

CACHE_VERSION = 1

#: Conventional location, relative to the invoking working directory.
DEFAULT_CACHE_DIR = ".lint_cache"


def ruleset_fingerprint(config, rules, graph_rules) -> str:
    """Stable hex key for (schema, rule catalogue, configuration).

    Any difference — a rule added or re-severitied, a config knob
    flipped, a summary-schema bump — yields a different fingerprint and
    therefore a disjoint cache file.
    """
    payload = {
        "cache_version": CACHE_VERSION,
        "summary_version": SUMMARY_VERSION,
        "rules": [[r.rule_id, r.severity.value, r.scope] for r in rules],
        "graph_rules": [[r.rule_id, r.severity.value] for r in graph_rules],
        "config": {
            "model_packages": sorted(config.model_packages),
            "rng_entrypoints": sorted(config.rng_entrypoints),
            "units_definition_files": sorted(config.units_definition_files),
            "span_emitter_files": sorted(config.span_emitter_files),
            "parallelism_packages": sorted(config.parallelism_packages),
            "disabled_rules": sorted(config.disabled_rules),
            "layers": [list(layer) for layer in config.layers],
            "restricted_imports": {
                k: sorted(v) for k, v in sorted(config.restricted_imports.items())
            },
            "hot_entrypoints": list(config.hot_entrypoints),
            "worker_entrypoints": list(config.worker_entrypoints),
            "atomic_write_files": sorted(config.atomic_write_files),
            "severity_overrides": {
                k: v.value for k, v in sorted(config.severity_overrides.items())
            },
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass
class CacheStats:
    """Counters the incremental-cache tests assert against."""

    hits: int = 0
    misses: int = 0
    #: Entries present but unusable (content hash changed, bad schema).
    invalidated: int = 0
    #: The cache file existed but could not be read at all.
    corrupt: bool = False

    def describe(self) -> str:
        return (f"{self.hits} hit(s), {self.misses} miss(es), "
                f"{self.invalidated} invalidated"
                + (", corrupt cache dropped" if self.corrupt else ""))


@dataclass
class CacheEntry:
    """Everything cached for one file at one content hash."""

    sha256: str
    summary: FileSummary
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "sha256": self.sha256,
            "summary": self.summary.to_json(),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }

    @classmethod
    def from_json(cls, data: dict) -> "CacheEntry":
        def revive(d) -> Finding:
            return Finding(file=d["file"], line=int(d["line"]), rule=d["rule"],
                           severity=Severity(d["severity"]), message=d["message"])

        return cls(
            sha256=data["sha256"],
            summary=FileSummary.from_json(data["summary"]),
            findings=[revive(f) for f in data["findings"]],
            suppressed=[revive(f) for f in data["suppressed"]],
        )


class SummaryCache:
    """Load/store per-file analysis results under one fingerprint."""

    def __init__(self, directory: Union[str, Path], fingerprint: str):
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.path = self.directory / f"lint-cache-{fingerprint}.json"
        self.stats = CacheStats()
        self._entries: Dict[str, CacheEntry] = {}
        self._loaded_raw: Dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.is_file():
            return
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
            if data.get("version") != CACHE_VERSION \
                    or data.get("fingerprint") != self.fingerprint:
                raise ValueError("cache schema mismatch")
            files = data["files"]
            if not isinstance(files, dict):
                raise ValueError("bad cache payload")
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            self.stats.corrupt = True
            return
        self._loaded_raw = files

    def lookup(self, rel: str, sha256: str) -> Optional[CacheEntry]:
        """The cached entry for *rel* iff its content hash still matches."""
        raw = self._loaded_raw.get(rel)
        if raw is None:
            self.stats.misses += 1
            return None
        try:
            if raw.get("sha256") != sha256:
                raise ValueError("content changed")
            entry = CacheEntry.from_json(raw)
        except (ValueError, KeyError, TypeError):
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    def store(self, rel: str, entry: CacheEntry) -> None:
        self._entries[rel] = entry

    def save(self) -> None:
        """Atomically persist exactly the entries stored this run."""
        payload = {
            "version": CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "files": {rel: self._entries[rel].to_json()
                      for rel in sorted(self._entries)},
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        atomic_write_text(self.path, blob, mkdir=True)
