"""Graphviz DOT export of the project call graph (``repro lint graph --dot``).

Nodes are project functions, clustered per module; model-package
entrypoints are drawn as blue boxes, external sink callees (wall clock,
OS entropy) red, and unresolved dynamic calls as dashed edges to gray
ellipses — the explicit ``unknown`` edges the resolver refuses to drop.
Output is fully deterministic (sorted nodes and edges) so diffs of two
exports are meaningful.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lint.graph.graphbuild import ProjectGraph
from repro.lint.rules.taint import (
    ARGLESS_ENTROPY_SINKS,
    ENTROPY_SINKS,
    WALL_CLOCK_SINKS,
)

__all__ = ["to_dot"]

_SINK_FQS = WALL_CLOCK_SINKS | ENTROPY_SINKS | ARGLESS_ENTROPY_SINKS


def _quote(name: str) -> str:
    return '"' + name.replace('"', '\\"') + '"'


def to_dot(graph: ProjectGraph, focus: Optional[str] = None) -> str:
    """Render the call graph as DOT; *focus* keeps edges touching a
    dotted-name prefix (e.g. ``repro.broker``)."""

    def in_focus(fq: Optional[str]) -> bool:
        return bool(fq) and (focus is None or fq.startswith(focus))

    lines: List[str] = [
        "digraph repro_lint_callgraph {",
        "  rankdir=LR;",
        '  node [fontsize=9, shape=box, style=filled, fillcolor=white];',
        "  edge [fontsize=8];",
    ]

    edges = [e for e in graph.edges
             if in_focus(e.caller) or in_focus(e.target)]
    nodes = set()
    for e in edges:
        nodes.add(e.caller)
        if e.kind in ("project", "defines") and e.target:
            nodes.add(e.target)

    for fq in sorted(nodes):
        attrs = []
        if fq in graph.functions and graph.is_model(fq):
            attrs.append('fillcolor="#cfe2f3"')
        label = fq.replace('"', '\\"')
        attrs.append(f'label="{label}"')
        lines.append(f"  {_quote(fq)} [{', '.join(attrs)}];")

    extern_nodes = set()
    for e in edges:
        if e.kind == "external" and e.target in _SINK_FQS:
            extern_nodes.add(e.target)
        elif e.kind == "unknown":
            extern_nodes.add(e.raw or "<dynamic>")
    for name in sorted(extern_nodes):
        color = '"#f4cccc"' if name in _SINK_FQS else '"#eeeeee"'
        lines.append(f"  {_quote(name)} [shape=ellipse, fillcolor={color}];")

    for e in sorted(edges, key=lambda e: (e.caller, e.line,
                                          e.target or e.raw or "")):
        if e.kind in ("project", "defines") and e.target:
            style = ' [style=dotted, label="defines"]' \
                if e.kind == "defines" else ""
            lines.append(f"  {_quote(e.caller)} -> {_quote(e.target)}{style};")
        elif e.kind == "external" and e.target in _SINK_FQS:
            lines.append(f"  {_quote(e.caller)} -> {_quote(e.target)}"
                         f" [color=red];")
        elif e.kind == "unknown":
            lines.append(f"  {_quote(e.caller)} -> "
                         f"{_quote(e.raw or '<dynamic>')}"
                         f" [style=dashed, color=gray];")

    lines.append("}")
    return "\n".join(lines) + "\n"
