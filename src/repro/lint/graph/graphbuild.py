"""Project symbol table and import/call graph over file summaries.

The graph is built *only* from :class:`~repro.lint.graph.summary.FileSummary`
objects — never from ASTs — so a warm (cached) run reconstructs it without
parsing a single file.  Resolution handles module-level names, ``import``
and ``from``-import aliases (including relative imports and package
``__init__`` re-exports), ``self``/``cls`` method dispatch with a basic
MRO walk, class instantiation (edge to ``__init__``), and nested
functions.  Anything it cannot resolve — dynamic dispatch through local
variables, subscripted callables, ``super()`` — becomes an explicit
``unknown`` edge: recorded, counted, and visible in the DOT export,
never silently dropped.
"""

from __future__ import annotations

import builtins
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.graph.summary import (
    MODULE_BODY,
    CallSite,
    FileSummary,
    FunctionSummary,
)

__all__ = ["Edge", "ProjectGraph", "build_graph"]

_BUILTIN_NAMES = frozenset(dir(builtins))

#: Resolution-chase depth limit (re-export chains, MRO walks).
_MAX_DEPTH = 12


@dataclass
class Edge:
    """One call (or nested-function definition) edge in the graph."""

    caller: str  # fq of the calling function
    line: int
    raw: Optional[str]  # callee as written; None for dynamic call syntax
    #: "project" (resolved to a project function), "external" (fully
    #: qualified non-project callable), "class" (project class with no
    #: ``__init__``), "defines" (nested function), or "unknown".
    kind: str
    target: Optional[str] = None  # fq function / external dotted name
    #: Positional-argument offset when binding call args to the target's
    #: parameter list (1 when ``self``/``cls`` is bound implicitly).
    offset: int = 0
    site: Optional[CallSite] = None

    def describe(self) -> str:
        label = self.target if self.target else (self.raw or "<dynamic>")
        return f"{self.caller} -> {label} [{self.kind}] @{self.line}"


# Internal symbol-location results.
_Loc = Tuple[str, ...]  # ("func", fq, offset) | ("class", module, name) | ...


class ProjectGraph:
    """Symbol table + call graph for one analyzed tree."""

    def __init__(self, summaries: Dict[str, FileSummary],
                 config: Optional[LintConfig] = None,
                 extra_refs: Optional[FrozenSet[str]] = None):
        self.config = config or DEFAULT_CONFIG
        #: Identifier tokens from outside the scanned tree (docs, tests,
        #: examples) — the external half of SL904's reference corpus.
        self.extra_refs: FrozenSet[str] = extra_refs or frozenset()
        #: rel -> summary, in sorted-rel order.
        self.summaries: Dict[str, FileSummary] = dict(
            sorted(summaries.items(), key=lambda kv: kv[0]))
        self.modules: Dict[str, FileSummary] = {
            s.module: s for s in self.summaries.values()}
        #: Top components of project module names ("repro", ...).
        self.roots = frozenset(m.split(".", 1)[0] for m in self.modules)
        self._roots = self.roots
        #: fq -> (file summary, function summary)
        self.functions: Dict[str, Tuple[FileSummary, FunctionSummary]] = {}
        for fsum in self.summaries.values():
            for fn in fsum.functions:
                self.functions[f"{fsum.module}.{fn.qname}"] = (fsum, fn)
        self.edges: List[Edge] = []
        self.out_edges: Dict[str, List[Edge]] = {}
        self.in_edges: Dict[str, List[Edge]] = {}
        self._build_edges()
        #: Per-rule analysis scratch (memoized results), not serialized.
        self.scratch: Dict[str, object] = {}

    # -- public queries -----------------------------------------------------

    def package_of(self, fq: str) -> str:
        return self.functions[fq][0].package

    def is_model(self, fq: str) -> bool:
        return self.package_of(fq) in self.config.model_packages

    def entrypoints(self) -> List[str]:
        """Kernel-facing analysis roots: every model-package function."""
        return [fq for fq in sorted(self.functions) if self.is_model(fq)]

    @property
    def unknown_edges(self) -> List[Edge]:
        return [e for e in self.edges if e.kind == "unknown"]

    def resolve_raw(self, caller_fq: str, raw: Optional[str]) -> Optional[Edge]:
        """The resolved edge for *raw* as called from *caller_fq*."""
        for edge in self.out_edges.get(caller_fq, []):
            if edge.raw == raw and edge.kind != "defines":
                return edge
        return None

    def reachable_from(self, entrypoints, scratch_key: str) -> Dict[str, str]:
        """fq -> the configured entrypoint that reaches it.

        Deterministic forward BFS over resolved project call edges and
        nested-function definitions; entrypoints are dotted paths
        relative to the root package (``sim.kernel.Simulator.run``
        matches ``repro.sim.kernel.Simulator.run``) and the
        lexicographically first entrypoint wins ties.  Memoized on the
        graph under *scratch_key*, so the rules of one family share a
        single reachability pass (SL8xx hot set, SL10xx worker set).
        """
        cached = self.scratch.get(scratch_key)
        if cached is not None:
            return cached
        reached: Dict[str, str] = {}
        frontier: List[str] = []
        for entry in sorted(entrypoints):
            suffix = f".{entry}"
            for fq in sorted(self.functions):
                if (fq == entry or fq.endswith(suffix)) and fq not in reached:
                    reached[fq] = entry
                    frontier.append(fq)
        while frontier:
            new_frontier: List[str] = []
            for fq in frontier:
                for edge in sorted(self.out_edges.get(fq, []),
                                   key=lambda e: (e.target or "", e.line)):
                    if edge.kind not in ("project", "defines"):
                        continue
                    target = edge.target
                    if target is None or target in reached \
                            or target not in self.functions:
                        continue
                    reached[target] = reached[fq]
                    new_frontier.append(target)
            frontier = sorted(new_frontier)
        self.scratch[scratch_key] = reached
        return reached

    # -- construction -------------------------------------------------------

    def _build_edges(self) -> None:
        for fsum in self.summaries.values():
            for fn in fsum.functions:
                caller_fq = f"{fsum.module}.{fn.qname}"
                for name in sorted(fn.nested):
                    self._add(Edge(caller_fq, fn.line, name, "defines",
                                   target=f"{fsum.module}.{fn.nested[name]}"))
                for site in fn.calls:
                    self._add(self._resolve_site(caller_fq, fsum, fn, site))

    def _add(self, edge: Edge) -> None:
        self.edges.append(edge)
        self.out_edges.setdefault(edge.caller, []).append(edge)
        if edge.kind in ("project", "defines") and edge.target:
            self.in_edges.setdefault(edge.target, []).append(edge)

    def _resolve_site(self, caller_fq: str, fsum: FileSummary,
                      fn: FunctionSummary, site: CallSite) -> Edge:
        raw = site.raw
        unknown = Edge(caller_fq, site.line, raw, "unknown", site=site)
        if raw is None:
            return unknown

        # ``Ctor().method()``: resolve the constructor to a class, then
        # dispatch the method through the MRO.
        if "()." in raw:
            ctor_raw, _, method = raw.partition("().")
            if "." in method or site.local_head:
                return unknown
            ref = self._ctor_class(fsum, fn, ctor_raw)
            if ref is None:
                return unknown
            loc = self._method_in(ref[0], ref[1], method)
            if loc is None:
                return unknown
            mod2, qname = loc
            callee = self.functions[f"{mod2}.{qname}"][1]
            offset = 1 if callee.implicit_first_param else 0
            return Edge(caller_fq, site.line, raw, "project",
                        target=f"{mod2}.{qname}", offset=offset, site=site)

        parts = raw.split(".")
        head = parts[0]

        # self.method() / cls.method() inside a class body.
        if head in ("self", "cls") and fn.cls is not None:
            if len(parts) != 2:
                return unknown  # attribute-of-attribute: dynamic
            loc = self._method_in(fsum.module, fn.cls, parts[1])
            if loc is not None:
                mod, qname = loc
                target = f"{mod}.{qname}"
                callee = self.functions[target][1]
                offset = 1 if callee.implicit_first_param else 0
                return Edge(caller_fq, site.line, raw, "project",
                            target=target, offset=offset, site=site)
            return unknown

        # A nested function defined in this very function.
        if head in fn.nested and len(parts) == 1:
            return Edge(caller_fq, site.line, raw, "project",
                        target=f"{fsum.module}.{fn.nested[head]}", site=site)

        if site.local_head:
            return unknown  # dynamic dispatch through a local binding

        if head in fsum.defs:
            return self._edge_from_loc(
                self._locate_symbol(fsum.module, parts, 0), caller_fq, site)

        if head in fsum.imports:
            fq = ".".join([fsum.imports[head]] + parts[1:])
            return self._edge_from_loc(self._locate(fq), caller_fq, site)

        for star_mod in fsum.star_imports:
            loc = self._locate(f"{star_mod}.{raw}")
            if loc[0] in ("func", "class"):
                return self._edge_from_loc(loc, caller_fq, site)

        if head in _BUILTIN_NAMES:
            return Edge(caller_fq, site.line, raw, "external",
                        target=f"builtins.{raw}", site=site)
        return unknown

    def _edge_from_loc(self, loc: _Loc, caller_fq: str, site: CallSite) -> Edge:
        kind = loc[0]
        if kind == "func":
            _, fq, offset = loc
            return Edge(caller_fq, site.line, site.raw, "project",
                        target=fq, offset=offset, site=site)
        if kind == "class":
            _, mod, name = loc
            return Edge(caller_fq, site.line, site.raw, "class",
                        target=f"{mod}.{name}", site=site)
        if kind == "external":
            return Edge(caller_fq, site.line, site.raw, "external",
                        target=loc[1], site=site)
        return Edge(caller_fq, site.line, site.raw, "unknown", site=site)

    # -- symbol location ----------------------------------------------------

    def _locate(self, fq: str, depth: int = 0) -> _Loc:
        """Locate a fully qualified dotted name in the project."""
        if depth > _MAX_DEPTH:
            return ("unknown", fq)
        parts = fq.split(".")
        for i in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:i])
            if mod in self.modules:
                return self._locate_symbol(mod, parts[i:], depth)
        if parts[0] in self._roots:
            return ("unknown", fq)  # project-shaped but not found
        return ("external", fq)

    def _locate_symbol(self, mod: str, rest: List[str], depth: int) -> _Loc:
        """Locate the symbol path *rest* inside module *mod*."""
        fsum = self.modules[mod]
        if not rest:
            return ("unknown", mod)
        sym = rest[0]
        if sym in fsum.defs:
            if fsum.defs[sym] == "func":
                if len(rest) == 1:
                    return ("func", f"{mod}.{sym}", 0)
                return ("unknown", f"{mod}.{'.'.join(rest)}")
            # A class: instantiation or Class.method reference.
            if len(rest) == 1:
                loc = self._method_in(mod, sym, "__init__")
                if loc is not None:
                    m2, qname = loc
                    return ("func", f"{m2}.{qname}", 1)
                return ("class", mod, sym)
            if len(rest) == 2:
                loc = self._method_in(mod, sym, rest[1])
                if loc is not None:
                    m2, qname = loc
                    callee = self.functions[f"{m2}.{qname}"][1]
                    offset = 1 if "classmethod" in callee.decorators else 0
                    return ("func", f"{m2}.{qname}", offset)
            return ("unknown", f"{mod}.{'.'.join(rest)}")
        if sym in fsum.imports:
            fq = ".".join([fsum.imports[sym]] + rest[1:])
            return self._locate(fq, depth + 1)
        for star_mod in fsum.star_imports:
            if star_mod in self.modules:
                loc = self._locate_symbol(star_mod, rest, depth + 1)
                if loc[0] in ("func", "class"):
                    return loc
        return ("unknown", f"{mod}.{'.'.join(rest)}")

    def _method_in(self, mod: str, clsname: str, method: str,
                   depth: int = 0) -> Optional[Tuple[str, str]]:
        """(module, qname) of *method* on class *clsname*, walking bases."""
        if depth > _MAX_DEPTH or mod not in self.modules:
            return None
        fsum = self.modules[mod]
        cinfo = fsum.classes.get(clsname)
        if cinfo is None:
            return None
        if method in cinfo["methods"]:
            return (mod, f"{clsname}.{method}")
        for base_raw in cinfo["bases"]:
            base = self._class_ref(mod, base_raw, depth + 1)
            if base is not None:
                found = self._method_in(base[0], base[1], method, depth + 1)
                if found is not None:
                    return found
        return None

    def _ctor_class(self, fsum: FileSummary, fn: FunctionSummary,
                    ctor_raw: str) -> Optional[Tuple[str, str]]:
        """Resolve the ``Ctor`` of a ``Ctor().method()`` call to a class."""
        parts = ctor_raw.split(".")
        head = parts[0]
        if head in ("self", "cls") or head in fn.nested:
            return None
        loc: Optional[_Loc] = None
        if head in fsum.defs:
            loc = self._locate_symbol(fsum.module, parts, 0)
        elif head in fsum.imports:
            loc = self._locate(".".join([fsum.imports[head]] + parts[1:]))
        else:
            for star_mod in fsum.star_imports:
                cand = self._locate(f"{star_mod}.{ctor_raw}")
                if cand[0] in ("func", "class"):
                    loc = cand
                    break
        if loc is None:
            return None
        if loc[0] == "class":
            return (loc[1], loc[2])
        if loc[0] == "func" and loc[1].endswith(".__init__") and loc[2] == 1:
            fq_init = loc[1]
            return (fq_init.rsplit(".", 2)[0], fq_init.split(".")[-2])
        return None

    def _class_ref(self, mod: str, raw: str,
                   depth: int) -> Optional[Tuple[str, str]]:
        """Resolve a raw base-class spelling to (module, class name)."""
        fsum = self.modules[mod]
        parts = raw.split(".")
        head = parts[0]
        if head in fsum.defs and fsum.defs[head] == "class" and len(parts) == 1:
            return (mod, head)
        if head in fsum.imports:
            fq = ".".join([fsum.imports[head]] + parts[1:])
            loc = self._locate(fq, depth)
            if loc[0] == "class":
                return (loc[1], loc[2])
            if loc[0] == "func" and loc[2] == 1:
                # Resolved through to __init__; recover the class.
                fq_init = loc[1]
                mod2 = fq_init.rsplit(".", 2)[0]
                clsname = fq_init.split(".")[-2]
                return (mod2, clsname)
        return None

    # -- stats --------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Deterministic size/shape counters for reports and the CLI."""
        kinds: Dict[str, int] = {}
        for e in self.edges:
            kinds[e.kind] = kinds.get(e.kind, 0) + 1
        return {
            "files": len(self.summaries),
            "modules": len(self.modules),
            "functions": len(self.functions),
            "call_edges": len(self.edges),
            "project_edges": kinds.get("project", 0),
            "external_edges": kinds.get("external", 0),
            "unknown_edges": kinds.get("unknown", 0),
            "entrypoints": len(self.entrypoints()),
        }


def build_graph(summaries: Dict[str, FileSummary],
                config: Optional[LintConfig] = None,
                extra_refs: Optional[FrozenSet[str]] = None) -> ProjectGraph:
    """Construct the project call graph from per-file summaries."""
    return ProjectGraph(summaries, config, extra_refs=extra_refs)
