"""Per-file analysis summaries — the unit of whole-program analysis.

A :class:`FileSummary` is everything the cross-file passes need to know
about one module: its import table, the functions it defines (with the
calls they make, the unit tags of their parameters and returns, and any
locally detected nondeterminism sinks), its classes, and its suppression
comments.  Summaries are plain-JSON serializable, which is what makes
the incremental cache (:mod:`repro.lint.graph.cache`) possible: a warm
run never re-parses an unchanged file — the whole-program graph is
rebuilt from cached summaries alone.

Unit terms
----------

The unit-dataflow pass (SL7xx) reasons over *unit terms*, a tiny lattice
serialized as JSON lists:

* ``None`` — unknown / dimensionless;
* ``["u", "s"]`` — a concrete unit tag inferred from a name suffix
  (``_s``, ``_bytes``, ``_bps``, ``_mb``, ...);
* ``["c", "pkg.helper"]`` — the unit of whatever the named callee
  returns (resolved later against the call graph).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.lint.context import (
    dotted_name,
    identifiers_in,
    is_setish,
    parse_suppressions,
)

__all__ = [
    "SUMMARY_VERSION",
    "CallSite",
    "FunctionSummary",
    "FileSummary",
    "MODULE_BODY",
    "rng_like_name",
    "unit_of_name",
    "unit_family",
    "summarize_source",
    "summarize_tree",
]

#: Bump whenever the summary schema or extraction logic changes: the
#: incremental cache keys on it, so stale summaries are never reused.
#: v2: hot-path perf sites, import sites, exports and reference tables
#: for the SL8xx/SL9xx families.
#: v3: shared-state mutation sites, durable-write sites, RNG-escape
#: sites and module-scope bindings for the SL10xx concurrency family.
SUMMARY_VERSION = 3

#: Pseudo-function name for statements executed at import time.
MODULE_BODY = "<module>"

# -- unit vocabulary --------------------------------------------------------

#: Name-suffix -> unit tag, longest suffix first so ``_mbps`` is not
#: mistaken for ``_bps`` and ``_bytes`` not for ``_s``.
_UNIT_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_bytes", "bytes"),
    ("_kbps", "kbps"), ("_mbps", "mbps"), ("_gbps", "gbps"), ("_bps", "bps"),
    ("_kib", "kib"), ("_mib", "mib"), ("_gib", "gib"),
    ("_kb", "kb"), ("_mb", "mb"), ("_gb", "gb"),
    ("_ms", "ms"), ("_us", "us"), ("_s", "s"),
)

#: Conventional bare names that carry a unit without a suffix.
_EXACT_UNIT_NAMES = {"nbytes": "bytes", "seconds": "s"}

_FAMILIES = {
    "s": "time", "ms": "time", "us": "time",
    "bytes": "size", "kb": "size", "mb": "size", "gb": "size",
    "kib": "size", "mib": "size", "gib": "size",
    "bps": "rate", "kbps": "rate", "mbps": "rate", "gbps": "rate",
}


def unit_of_name(name: Optional[str]) -> Optional[str]:
    """The unit tag a name's suffix declares, if any."""
    if not name:
        return None
    lowered = name.lower()
    if lowered in _EXACT_UNIT_NAMES:
        return _EXACT_UNIT_NAMES[lowered]
    for suffix, unit in _UNIT_SUFFIXES:
        if lowered.endswith(suffix):
            return unit
    return None


def unit_family(unit: str) -> str:
    """``s``/``ms`` -> ``time``, ``bytes``/``mb`` -> ``size``, ..."""
    return _FAMILIES[unit]


# A unit term: None | ["u", unit] | ["c", raw_callee]
Term = Optional[List[str]]


def _unit_term(unit: Optional[str]) -> Term:
    return ["u", unit] if unit else None


# -- summary dataclasses ----------------------------------------------------


@dataclass
class CallSite:
    """One call expression inside a function body."""

    line: int
    #: Dotted callee spelling (``np.random.default_rng``); None when the
    #: callee is not a Name/Attribute chain (``handlers[k]()``).
    raw: Optional[str]
    nargs: int = 0
    nkw: int = 0
    #: ``*args`` / ``**kwargs`` present — argument binding is not mapped.
    star: bool = False
    #: The head identifier is a local variable — dynamic dispatch.
    local_head: bool = False
    #: Argument unit terms: (positional index | keyword name, term).
    args: List[Tuple[Any, Term]] = field(default_factory=list)

    def to_json(self) -> list:
        return [self.line, self.raw, self.nargs, self.nkw,
                int(self.star), int(self.local_head), list(self.args)]

    @classmethod
    def from_json(cls, data: list) -> "CallSite":
        line, raw, nargs, nkw, star, local_head, args = data
        return cls(line=line, raw=raw, nargs=nargs, nkw=nkw, star=bool(star),
                   local_head=bool(local_head),
                   args=[(k, t) for k, t in args])


@dataclass
class FunctionSummary:
    """One function/method (or the module body) as the graph sees it."""

    qname: str  # "func", "Class.method", "outer.inner", or "<module>"
    line: int
    cls: Optional[str] = None
    #: Positional-capable parameter names, in order (incl. self/cls).
    posparams: List[str] = field(default_factory=list)
    kwonly: List[str] = field(default_factory=list)
    vararg: bool = False
    kwarg: bool = False
    #: Parameter name -> unit tag (suffix-inferred), only tagged ones.
    param_units: Dict[str, str] = field(default_factory=dict)
    calls: List[CallSite] = field(default_factory=list)
    #: Locally detected sinks: (line, kind); kinds: "set-iter".
    sinks: List[Tuple[int, str]] = field(default_factory=list)
    #: Unit terms of ``return`` expressions.
    returns: List[Term] = field(default_factory=list)
    #: Mixed-unit arithmetic candidates: (line, op, left term, right term).
    binop_checks: List[Tuple[int, str, Term, Term]] = field(default_factory=list)
    #: Suffix-vs-call-return candidates: (line, target, target unit, term).
    assign_checks: List[Tuple[int, str, str, Term]] = field(default_factory=list)
    #: Locally defined nested functions: bare name -> qname.
    nested: Dict[str, str] = field(default_factory=dict)
    has_value_return: bool = False
    #: Binding-relevant decorators only: "staticmethod" / "classmethod".
    decorators: List[str] = field(default_factory=list)
    #: Hot-path performance sites, ``[loop_line, kind, payload]``; kinds:
    #: "loop-attr" ``[chain, count, first_line]`` (a dotted callee chain
    #: resolved >= 2x per iteration), "loop-container" ``[line, name,
    #: ctor]`` (fresh empty container bound every iteration), "loop-try"
    #: ``[line, exception names]`` (control-flow exceptions per event),
    #: "loop-list-in" ``[line, name]`` (O(n) list membership per event).
    perf: List[list] = field(default_factory=list)
    #: Shared-state mutation sites, ``[line, kind, head, detail]``;
    #: kinds: "global" (assignment to a ``global``-declared name),
    #: "store" (``X[...] = v`` / ``X.attr = v`` where ``X`` is not a
    #: local), "cls-store" (store through ``cls``), "mutcall"
    #: (``X.append/update/...`` where ``X`` is not a local).  The SL1001
    #: pass resolves heads against module/class bindings.
    mutations: List[list] = field(default_factory=list)
    #: Durable-write sites, ``[line, kind, detail]``; kinds: "open-w"
    #: (``open(..., "w"/"wb"/"x")``), "write-text" / "write-bytes"
    #: (``path.write_text/write_bytes`` calls).  ``json.dump`` /
    #: ``pickle.dump`` / ``np.savez`` sinks are resolved from call edges
    #: at graph time instead (import-alias aware).
    writes: List[list] = field(default_factory=list)
    #: Cross-process RNG hazard sites, ``[line, kind, name]``; kinds:
    #: "loop-stream" (an ``RngRegistry`` built before a loop is streamed
    #: inside it — per-cell state reuse), "spawn-arg" (an RNG-carrying
    #: object pickled into a ``Process(...)`` spawn).
    rng_sites: List[list] = field(default_factory=list)

    @property
    def implicit_first_param(self) -> bool:
        """True when calls through an instance bind ``self``/``cls``."""
        return self.cls is not None and "staticmethod" not in self.decorators

    def to_json(self) -> dict:
        return {
            "q": self.qname, "ln": self.line, "cls": self.cls,
            "pp": self.posparams, "kw": self.kwonly,
            "va": int(self.vararg), "ka": int(self.kwarg),
            "pu": self.param_units,
            "calls": [c.to_json() for c in self.calls],
            "sinks": [list(s) for s in self.sinks],
            "rets": self.returns,
            "bin": [list(b) for b in self.binop_checks],
            "asg": [list(a) for a in self.assign_checks],
            "nested": self.nested,
            "hvr": int(self.has_value_return),
            "dec": self.decorators,
            "perf": [list(p) for p in self.perf],
            "mut": [list(m) for m in self.mutations],
            "wr": [list(w) for w in self.writes],
            "rng": [list(r) for r in self.rng_sites],
        }

    @classmethod
    def from_json(cls, d: dict) -> "FunctionSummary":
        return cls(
            qname=d["q"], line=d["ln"], cls=d["cls"],
            posparams=list(d["pp"]), kwonly=list(d["kw"]),
            vararg=bool(d["va"]), kwarg=bool(d["ka"]),
            param_units=dict(d["pu"]),
            calls=[CallSite.from_json(c) for c in d["calls"]],
            sinks=[(s[0], s[1]) for s in d["sinks"]],
            returns=list(d["rets"]),
            binop_checks=[(b[0], b[1], b[2], b[3]) for b in d["bin"]],
            assign_checks=[(a[0], a[1], a[2], a[3]) for a in d["asg"]],
            nested=dict(d["nested"]),
            has_value_return=bool(d["hvr"]),
            decorators=list(d["dec"]),
            perf=[[p[0], p[1], list(p[2])] for p in d["perf"]],
            mutations=[list(m) for m in d["mut"]],
            writes=[list(w) for w in d["wr"]],
            rng_sites=[list(r) for r in d["rng"]],
        )


@dataclass
class FileSummary:
    """Everything the whole-program passes need from one source file."""

    rel: str
    module: str  # fully dotted, e.g. "repro.net.engine"
    #: Local binding -> fully qualified target ("np" -> "numpy",
    #: "Engine" -> "repro.net.engine.Engine").
    imports: Dict[str, str] = field(default_factory=dict)
    #: Modules star-imported (``from m import *``), in source order.
    star_imports: List[str] = field(default_factory=list)
    #: Top-level definitions: name -> "func" | "class".
    defs: Dict[str, str] = field(default_factory=dict)
    #: Class name -> {"bases": [raw dotted], "methods": [names]}.
    classes: Dict[str, Dict[str, List[str]]] = field(default_factory=dict)
    functions: List[FunctionSummary] = field(default_factory=list)
    #: Suppression comments: line -> sorted rule ids ("*" = all).
    suppressions: Dict[int, List[str]] = field(default_factory=dict)
    #: (lineno, message) when the file does not parse.
    parse_error: Optional[Tuple[int, str]] = None
    #: Import statements as ``[line, bound name, target fq, module_scope]``
    #: (bound name is None for ``from m import *``) — the SL9xx layering
    #: rules work off these, not off the resolved ``imports`` table.
    import_sites: List[list] = field(default_factory=list)
    #: ``__all__`` entries at module scope: ``[line, name]`` pairs, or
    #: None when the module declares no ``__all__``.
    dunder_all: Optional[List[list]] = None
    #: Every identifier mentioned anywhere in the file (sorted, deduped);
    #: the reference corpus for dead-export detection (SL904).
    refs: List[str] = field(default_factory=list)
    #: Names bound at module scope by assignment (sorted) — ``defs``
    #: only records functions and classes; SL1001 resolves mutation
    #: heads against the union of both plus the import table.
    module_globals: List[str] = field(default_factory=list)

    @property
    def package(self) -> str:
        head = self.rel.split("/", 1)[0]
        return head[:-3] if head.endswith(".py") else head

    def function(self, qname: str) -> Optional[FunctionSummary]:
        for fn in self.functions:
            if fn.qname == qname:
                return fn
        return None

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        rules = self.suppressions.get(line)
        return bool(rules) and (rule_id in rules or "*" in rules)

    def to_json(self) -> dict:
        return {
            "rel": self.rel, "module": self.module,
            "imports": self.imports, "stars": self.star_imports,
            "defs": self.defs, "classes": self.classes,
            "funcs": [f.to_json() for f in self.functions],
            "supp": {str(k): v for k, v in sorted(self.suppressions.items())},
            "err": list(self.parse_error) if self.parse_error else None,
            "sites": [list(s) for s in self.import_sites],
            "all": ([list(a) for a in self.dunder_all]
                    if self.dunder_all is not None else None),
            "refs": self.refs,
            "mg": self.module_globals,
        }

    @classmethod
    def from_json(cls, d: dict) -> "FileSummary":
        return cls(
            rel=d["rel"], module=d["module"],
            imports=dict(d["imports"]), star_imports=list(d["stars"]),
            defs=dict(d["defs"]), classes=dict(d["classes"]),
            functions=[FunctionSummary.from_json(f) for f in d["funcs"]],
            suppressions={int(k): list(v) for k, v in d["supp"].items()},
            parse_error=tuple(d["err"]) if d["err"] else None,
            import_sites=[[s[0], s[1], s[2], bool(s[3])] for s in d["sites"]],
            dunder_all=([[a[0], a[1]] for a in d["all"]]
                        if d["all"] is not None else None),
            refs=list(d["refs"]),
            module_globals=list(d["mg"]),
        )


# -- extraction -------------------------------------------------------------

#: Exceptions whose per-event catch usually implements control flow the
#: hot path should express with a lookup/guard instead (SL803).
_CONTROL_FLOW_EXCEPTIONS = frozenset({
    "KeyError", "IndexError", "AttributeError", "StopIteration",
})

#: Callees whose result is list-shaped (for SL804 membership tracking).
_LIST_RETURNING = frozenset({"list", "sorted"})

#: Argless constructors producing a fresh empty container (SL801).
_CONTAINER_CTORS = frozenset({"list", "dict", "set", "tuple"})

#: Method names that mutate their receiver in place (SL1001 mutcall).
_MUTATING_METHODS = frozenset({
    "append", "appendleft", "add", "update", "setdefault", "pop", "popitem",
    "extend", "insert", "remove", "discard", "clear", "sort",
})

#: ``open`` mode characters that make the call a durable write (SL1002).
#: Append mode ("a") is excluded by design: append-only journals (the
#: bench ledger) are a different durability protocol.
_WRITE_MODE_CHARS = ("w", "x")


def rng_like_name(name: str) -> str:
    """Why *name* conventionally carries an RNG object; "" if it doesn't.

    The tree's naming convention (enforced by the SL4xx family) is that
    generators and registries travel under ``rng`` / ``*_rng`` /
    ``rng_*`` names — the SL1004 escape analysis leans on the same
    convention.
    """
    if name == "rng" or name.endswith("_rng") or name.startswith("rng_"):
        return f"`{name}` is an RNG-conventional name"
    return ""


def _rng_valued(name: str, ctx: "_FuncCtx") -> bool:
    """*name* is locally bound from an RNG constructor or stream."""
    term = ctx.env.get(name)
    if not term or term[0] != "c":
        return False
    tail = str(term[1]).split(".")[-1]
    return tail in ("RngRegistry", "default_rng", "stream", "fork")


def _head_name(node: ast.AST):
    """The base identifier of an attribute/subscript chain, or None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class _LoopInfo:
    """Per-statement-loop bookkeeping for the hot-path perf sites."""

    def __init__(self, line: int):
        self.line = line
        #: dotted callee chain -> [count, first line] inside this loop.
        self.chains: Dict[str, List[int]] = {}
        #: names and dotted chains (re)bound inside the loop — anything
        #: here (or prefixed by it) is not hoistable.
        self.stores: set = set()
        #: candidate list-membership sites: (line, container name).
        self.memberships: List[Tuple[int, str]] = []


class _FuncCtx:
    """Mutable state while walking one function body."""

    def __init__(self, qname: str, cls: Optional[str], line: int):
        self.summary = FunctionSummary(qname=qname, cls=cls, line=line)
        #: local name -> unit term (for propagation through assignments)
        self.env: Dict[str, Term] = {}
        #: every locally bound name (params, assignments, defs)
        self.local_names: set = set()
        #: stack of statement loops currently being walked
        self.loops: List[_LoopInfo] = []
        #: locals currently known to hold a list (for SL804)
        self.list_names: set = set()
        #: names declared ``global`` in this function (for SL1001)
        self.globals_decl: set = set()


class _Summarizer:
    """Single-pass AST walk producing a :class:`FileSummary`."""

    def __init__(self, rel: str, module: str, suppressions: Dict[int, FrozenSet[str]]):
        self.out = FileSummary(
            rel=rel, module=module,
            suppressions={line: sorted(rules)
                          for line, rules in sorted(suppressions.items())},
        )
        self._package = module if rel.endswith("__init__.py") else (
            module.rsplit(".", 1)[0] if "." in module else module)
        #: Names assigned at module scope (finalized into module_globals).
        self._module_names: set = set()
        #: >0 while walking a class body: class-level bindings (dataclass
        #: fields, class attributes) run in the module ctx but are *not*
        #: module globals — SL1001 sees them as cls/attribute state.
        self._class_depth = 0

    # -- imports ------------------------------------------------------------

    def _record_import(self, node: ast.AST, ctx: "_FuncCtx") -> None:
        module_scope = ctx.summary.qname == MODULE_BODY
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    self.out.imports[alias.asname] = alias.name
                    bound = alias.asname
                else:
                    # ``import a.b.c`` binds the top-level name ``a``.
                    head = alias.name.split(".", 1)[0]
                    self.out.imports[head] = head
                    bound = head
                self.out.import_sites.append(
                    [node.lineno, bound, alias.name, module_scope])
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                pkg_parts = self._package.split(".")
                if node.level > 1:
                    pkg_parts = pkg_parts[:len(pkg_parts) - (node.level - 1)]
                prefix = ".".join(pkg_parts)
                base = f"{prefix}.{base}" if base else prefix
            for alias in node.names:
                if alias.name == "*":
                    if base not in self.out.star_imports:
                        self.out.star_imports.append(base)
                    self.out.import_sites.append(
                        [node.lineno, None, base, module_scope])
                else:
                    bound = alias.asname or alias.name
                    self.out.imports[bound] = f"{base}.{alias.name}"
                    self.out.import_sites.append(
                        [node.lineno, bound, f"{base}.{alias.name}",
                         module_scope])

    # -- statements ---------------------------------------------------------

    def run(self, tree: ast.Module) -> FileSummary:
        ctx = _FuncCtx(MODULE_BODY, None, 1)
        self._walk_stmts(tree.body, ctx, prefix="", cls=None)
        self.out.functions.append(ctx.summary)
        self.out.refs = sorted(set(identifiers_in(tree)))
        self.out.module_globals = sorted(self._module_names)
        return self.out

    def _walk_stmts(self, stmts, ctx: _FuncCtx, prefix: str,
                    cls: Optional[str]) -> None:
        for st in stmts:
            self._walk_stmt(st, ctx, prefix, cls)

    def _walk_stmt(self, st: ast.stmt, ctx: _FuncCtx, prefix: str,
                   cls: Optional[str]) -> None:
        if isinstance(st, (ast.Import, ast.ImportFrom)):
            self._record_import(st, ctx)
        elif isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._function(st, ctx, prefix, cls)
        elif isinstance(st, ast.ClassDef):
            self._class(st, ctx, prefix)
        elif isinstance(st, ast.Assign):
            self._assign(st.targets, st.value, st, ctx)
        elif isinstance(st, ast.AnnAssign):
            if st.value is not None:
                self._assign([st.target], st.value, st, ctx)
            elif isinstance(st.target, ast.Name):
                ctx.local_names.add(st.target.id)
                if ctx.summary.qname == MODULE_BODY \
                        and self._class_depth == 0:
                    self._module_names.add(st.target.id)
        elif isinstance(st, ast.AugAssign):
            self._augassign(st, ctx)
        elif isinstance(st, ast.Return):
            if st.value is not None:
                term = self._eval(st.value, ctx)
                ctx.summary.returns.append(term)
                ctx.summary.has_value_return = True
        elif isinstance(st, (ast.For, ast.AsyncFor)):
            if is_setish(st.iter):
                ctx.summary.sinks.append((st.iter.lineno, "set-iter"))
            # The iterable is evaluated once, in the *enclosing* scope.
            self._eval(st.iter, ctx)
            self._push_loop(st.lineno, ctx)
            self._bind_target(st.target, None, ctx)
            self._walk_stmts(st.body, ctx, prefix, cls)
            self._pop_loop(ctx)
            self._walk_stmts(st.orelse, ctx, prefix, cls)
        elif isinstance(st, ast.While):
            # The test re-evaluates every iteration: count it as loop body.
            self._push_loop(st.lineno, ctx)
            self._eval(st.test, ctx)
            self._walk_stmts(st.body, ctx, prefix, cls)
            self._pop_loop(ctx)
            self._walk_stmts(st.orelse, ctx, prefix, cls)
        elif isinstance(st, ast.If):
            self._eval(st.test, ctx)
            self._walk_stmts(st.body, ctx, prefix, cls)
            self._walk_stmts(st.orelse, ctx, prefix, cls)
        elif isinstance(st, (ast.With, ast.AsyncWith)):
            for item in st.items:
                self._eval(item.context_expr, ctx)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, None, ctx)
            self._walk_stmts(st.body, ctx, prefix, cls)
        elif isinstance(st, ast.Try):
            if ctx.loops:
                caught = sorted(
                    name for name in self._handler_names(st)
                    if name in _CONTROL_FLOW_EXCEPTIONS)
                if caught:
                    ctx.summary.perf.append(
                        [ctx.loops[-1].line, "loop-try", [st.lineno, caught]])
            self._walk_stmts(st.body, ctx, prefix, cls)
            for handler in st.handlers:
                if handler.type is not None:
                    self._eval(handler.type, ctx)
                if handler.name:
                    ctx.local_names.add(handler.name)
                self._walk_stmts(handler.body, ctx, prefix, cls)
            self._walk_stmts(st.orelse, ctx, prefix, cls)
            self._walk_stmts(st.finalbody, ctx, prefix, cls)
        elif isinstance(st, ast.Expr):
            self._eval(st.value, ctx)
        elif isinstance(st, ast.Raise):
            if st.exc is not None:
                self._eval(st.exc, ctx)
            if st.cause is not None:
                self._eval(st.cause, ctx)
        elif isinstance(st, ast.Assert):
            self._eval(st.test, ctx)
            if st.msg is not None:
                self._eval(st.msg, ctx)
        elif isinstance(st, ast.Delete):
            for t in st.targets:
                self._eval(t, ctx)
        elif hasattr(ast, "Match") and isinstance(st, ast.Match):
            self._eval(st.subject, ctx)
            for case in st.cases:
                if case.guard is not None:
                    self._eval(case.guard, ctx)
                self._walk_stmts(case.body, ctx, prefix, cls)
        elif isinstance(st, ast.Global):
            ctx.globals_decl.update(st.names)
        # Nonlocal/Pass/Break/Continue: nothing to record.

    def _function(self, st, ctx: _FuncCtx, prefix: str, cls: Optional[str]) -> None:
        # Decorators and defaults evaluate in the *enclosing* scope.
        binding_decos = []
        for deco in st.decorator_list:
            name = dotted_name(deco)
            if name in ("staticmethod", "classmethod"):
                binding_decos.append(name)
            self._eval(deco, ctx)
        for default in list(st.args.defaults) + [d for d in st.args.kw_defaults
                                                 if d is not None]:
            self._eval(default, ctx)

        qname = f"{prefix}{st.name}"
        child = _FuncCtx(qname, cls, st.lineno)
        fn = child.summary
        fn.decorators = binding_decos
        args = st.args
        fn.posparams = [a.arg for a in args.posonlyargs + args.args]
        fn.kwonly = [a.arg for a in args.kwonlyargs]
        fn.vararg = args.vararg is not None
        fn.kwarg = args.kwarg is not None
        for pname in fn.posparams + fn.kwonly:
            child.local_names.add(pname)
            unit = unit_of_name(pname)
            if unit:
                fn.param_units[pname] = unit
        if args.vararg:
            child.local_names.add(args.vararg.arg)
        if args.kwarg:
            child.local_names.add(args.kwarg.arg)

        self._walk_stmts(st.body, child, prefix=f"{qname}.", cls=cls)
        self.out.functions.append(fn)

        # Record the definition in the enclosing scope: a top-level def,
        # a method (recorded via its class), or a nested function.
        if ctx.summary.qname == MODULE_BODY and cls is None:
            self.out.defs.setdefault(st.name, "func")
        elif ctx.summary.qname != MODULE_BODY:
            ctx.summary.nested[st.name] = qname
            ctx.local_names.add(st.name)

    def _class(self, st: ast.ClassDef, ctx: _FuncCtx, prefix: str) -> None:
        for deco in st.decorator_list:
            self._eval(deco, ctx)
        bases: List[str] = []
        for base in st.bases:
            raw = dotted_name(base)
            if raw:
                bases.append(raw)
            else:
                self._eval(base, ctx)
        for kw in st.keywords:
            self._eval(kw.value, ctx)

        cls_qname = f"{prefix}{st.name}"
        methods: List[str] = []
        self._class_depth += 1
        try:
            for sub in st.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(sub.name)
                    self._function(sub, ctx, prefix=f"{cls_qname}.",
                                   cls=cls_qname)
                else:
                    # Class-level assignments etc. run at import time.
                    self._walk_stmt(sub, ctx, prefix=f"{cls_qname}.",
                                    cls=cls_qname)
        finally:
            self._class_depth -= 1

        if ctx.summary.qname == MODULE_BODY and prefix == "":
            self.out.defs.setdefault(st.name, "class")
            self.out.classes[st.name] = {"bases": bases, "methods": methods}
        else:
            ctx.local_names.add(st.name)

    # -- hot-loop perf sites ------------------------------------------------

    @staticmethod
    def _handler_names(st: ast.Try) -> List[str]:
        names: List[str] = []
        for handler in st.handlers:
            spec = handler.type
            elts = spec.elts if isinstance(spec, ast.Tuple) else [spec]
            for elt in elts:
                raw = dotted_name(elt) if elt is not None else None
                if raw:
                    names.append(raw.split(".")[-1])
        return names

    @staticmethod
    def _push_loop(line: int, ctx: _FuncCtx) -> None:
        ctx.loops.append(_LoopInfo(line))

    @staticmethod
    def _pop_loop(ctx: _FuncCtx) -> None:
        loop = ctx.loops.pop()
        for chain in sorted(loop.chains):
            count, first_line = loop.chains[chain]
            if count < 2:
                continue
            parts = chain.split(".")
            prefixes = {".".join(parts[:i]) for i in range(1, len(parts) + 1)}
            if prefixes & loop.stores:
                continue  # (partially) rebound inside the loop
            ctx.summary.perf.append(
                [loop.line, "loop-attr", [chain, count, first_line]])
        for line, name in loop.memberships:
            if name in ctx.list_names:
                ctx.summary.perf.append(
                    [loop.line, "loop-list-in", [line, name]])

    @staticmethod
    def _loop_store(name: Optional[str], ctx: _FuncCtx) -> None:
        """A (re)binding inside every currently open loop."""
        if name:
            for loop in ctx.loops:
                loop.stores.add(name)

    @staticmethod
    def _empty_container(node: ast.expr) -> Optional[str]:
        """Constructor name when *node* builds a fresh empty container."""
        if isinstance(node, (ast.List, ast.Tuple)) and not node.elts:
            return "list" if isinstance(node, ast.List) else "tuple"
        if isinstance(node, ast.Dict) and not node.keys:
            return "dict"
        if isinstance(node, ast.Call) and not node.args and not node.keywords:
            name = dotted_name(node.func)
            if name in _CONTAINER_CTORS:
                return name
        return None

    @staticmethod
    def _listish(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.ListComp)):
            return True
        return (isinstance(node, ast.Call)
                and dotted_name(node.func) in _LIST_RETURNING)

    # -- assignments --------------------------------------------------------

    def _bind_target(self, target: ast.AST, term: Term, ctx: _FuncCtx) -> None:
        if isinstance(target, ast.Name):
            if target.id in ctx.globals_decl:
                ctx.summary.mutations.append(
                    [target.lineno, "global", target.id, target.id])
            self._loop_store(target.id, ctx)
            ctx.local_names.add(target.id)
            if ctx.summary.qname == MODULE_BODY and self._class_depth == 0:
                self._module_names.add(target.id)
            if term is not None:
                ctx.env[target.id] = term
            target_unit = unit_of_name(target.id)
            if target_unit and term is not None and term[0] == "c":
                ctx.summary.assign_checks.append(
                    (target.lineno, target.id, target_unit, term))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, None, ctx)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._record_store(target, ctx)
            if isinstance(target, ast.Attribute):
                self._loop_store(dotted_name(target), ctx)
            self._eval(target.value, ctx)

    def _record_store(self, target: ast.AST, ctx: _FuncCtx) -> None:
        """A subscript/attribute store through a non-local head (SL1001)."""
        head = _head_name(target)
        if head is None or head == "self":
            return
        if head != "cls" and (head in ctx.local_names
                              or head in ctx.summary.nested):
            return
        detail = dotted_name(target) or f"{head}[...]"
        kind = "cls-store" if head == "cls" else "store"
        ctx.summary.mutations.append([target.lineno, kind, head, detail])

    def _assign(self, targets, value, st, ctx: _FuncCtx) -> None:
        if (len(targets) == 1 and isinstance(targets[0], ast.Name)
                and targets[0].id == "__all__"
                and ctx.summary.qname == MODULE_BODY
                and isinstance(value, (ast.List, ast.Tuple))):
            self.out.dunder_all = [
                [elt.lineno, elt.value] for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ]
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            if ctx.loops:
                ctor = self._empty_container(value)
                if ctor is not None:
                    ctx.summary.perf.append(
                        [ctx.loops[-1].line, "loop-container",
                         [value.lineno, targets[0].id, ctor]])
            if self._listish(value):
                ctx.list_names.add(targets[0].id)
            else:
                ctx.list_names.discard(targets[0].id)
        term = self._eval(value, ctx)
        for target in targets:
            self._bind_target(target, term, ctx)

    def _augassign(self, st: ast.AugAssign, ctx: _FuncCtx) -> None:
        term = self._eval(st.value, ctx)
        if isinstance(st.target, ast.Name):
            if st.target.id in ctx.globals_decl:
                ctx.summary.mutations.append(
                    [st.target.lineno, "global", st.target.id, st.target.id])
            self._loop_store(st.target.id, ctx)
            ctx.local_names.add(st.target.id)
            target_unit = unit_of_name(st.target.id)
            if target_unit and term is not None and term[0] == "c" \
                    and isinstance(st.op, (ast.Add, ast.Sub)):
                ctx.summary.assign_checks.append(
                    (st.target.lineno, st.target.id, target_unit, term))
        elif isinstance(st.target, (ast.Attribute, ast.Subscript)):
            self._record_store(st.target, ctx)
            if isinstance(st.target, ast.Attribute):
                self._loop_store(dotted_name(st.target), ctx)
            self._eval(st.target.value, ctx)

    # -- expressions --------------------------------------------------------

    def _eval(self, node: ast.expr, ctx: _FuncCtx) -> Term:
        """Unit term of an expression; records calls and check sites."""
        if isinstance(node, ast.Name):
            if node.id in ctx.env:
                return ctx.env[node.id]
            return _unit_term(unit_of_name(node.id))
        if isinstance(node, ast.Attribute):
            self._eval(node.value, ctx)
            return _unit_term(unit_of_name(node.attr))
        if isinstance(node, ast.Call):
            return self._call(node, ctx)
        if isinstance(node, ast.BinOp):
            return self._binop(node, ctx)
        if isinstance(node, ast.Compare):
            if ctx.loops:
                for op, comp in zip(node.ops, node.comparators):
                    if not isinstance(op, (ast.In, ast.NotIn)):
                        continue
                    if isinstance(comp, ast.Name):
                        ctx.loops[-1].memberships.append((comp.lineno, comp.id))
                    elif isinstance(comp, ast.List):
                        ctx.summary.perf.append(
                            [ctx.loops[-1].line, "loop-list-in",
                             [comp.lineno, "<list literal>"]])
            terms = [self._eval(node.left, ctx)]
            terms += [self._eval(c, ctx) for c in node.comparators]
            known = [t for t in terms if t is not None]
            if len(known) == 2 and known[0] != known[1]:
                ctx.summary.binop_checks.append(
                    (node.lineno, "cmp", known[0], known[1]))
            return None
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self._eval(v, ctx)
            return None
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, ctx)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, ctx)
            left = self._eval(node.body, ctx)
            right = self._eval(node.orelse, ctx)
            return left if left == right else None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            for gen in node.generators:
                if is_setish(gen.iter):
                    ctx.summary.sinks.append((gen.iter.lineno, "set-iter"))
                self._eval(gen.iter, ctx)
                self._bind_target(gen.target, None, ctx)
                for cond in gen.ifs:
                    self._eval(cond, ctx)
            if isinstance(node, ast.DictComp):
                self._eval(node.key, ctx)
                self._eval(node.value, ctx)
            else:
                self._eval(node.elt, ctx)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self._eval(elt, ctx)
            return None
        if isinstance(node, ast.Dict):
            for k in node.keys:
                if k is not None:
                    self._eval(k, ctx)
            for v in node.values:
                self._eval(v, ctx)
            return None
        if isinstance(node, ast.Subscript):
            self._eval(node.value, ctx)
            self._eval(node.slice, ctx)
            return None
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part, ctx)
            return None
        if isinstance(node, ast.Starred):
            return self._eval(node.value, ctx)
        if isinstance(node, ast.Lambda):
            self._eval(node.body, ctx)
            return None
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value, ctx)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self._eval(node.value, ctx)
            return None
        if isinstance(node, ast.NamedExpr):
            term = self._eval(node.value, ctx)
            self._bind_target(node.target, term, ctx)
            return term
        if isinstance(node, ast.JoinedStr):
            for v in node.values:
                if isinstance(v, ast.FormattedValue):
                    self._eval(v.value, ctx)
            return None
        return None  # Constant and anything exotic

    def _binop(self, node: ast.BinOp, ctx: _FuncCtx) -> Term:
        left = self._eval(node.left, ctx)
        right = self._eval(node.right, ctx)
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return None  # *, /, //, %, ** legitimately change units
        op = "+" if isinstance(node.op, ast.Add) else "-"
        if left is not None and right is not None:
            if left == right:
                return left
            ctx.summary.binop_checks.append((node.lineno, op, left, right))
            return None
        return left if left is not None else right

    def _call(self, node: ast.Call, ctx: _FuncCtx) -> Term:
        raw = dotted_name(node.func)
        head = raw.split(".", 1)[0] if raw is not None else None
        if raw is None and isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Call):
            # ``Ctor().method(...)``: keep the pattern resolvable with a
            # ``().`` marker, and record the constructor call itself too.
            inner = dotted_name(node.func.value.func)
            if inner is not None:
                raw = f"{inner}().{node.func.attr}"
                head = inner.split(".", 1)[0]
            self._eval(node.func.value, ctx)
        elif raw is None:
            self._eval(node.func, ctx)
        site = CallSite(line=node.lineno, raw=raw)
        if raw is not None:
            site.local_head = (head in ctx.local_names
                               and head not in ("self", "cls")
                               and head not in ctx.summary.nested)
            if ctx.loops and "." in raw and "()." not in raw:
                # A dotted callee resolved per iteration — candidate for
                # hoisting into a local (SL802); innermost loop only.
                counter = ctx.loops[-1].chains.setdefault(
                    raw, [0, node.lineno])
                counter[0] += 1
        self._conc_sites(node, raw, head, ctx)
        for i, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                site.star = True
                self._eval(arg.value, ctx)
                continue
            term = self._eval(arg, ctx)
            site.nargs += 1
            if term is not None:
                site.args.append((i, term))
        for kw in node.keywords:
            term = self._eval(kw.value, ctx)
            if kw.arg is None:
                site.star = True
                continue
            site.nkw += 1
            if term is not None:
                site.args.append((kw.arg, term))
        ctx.summary.calls.append(site)
        return ["c", raw] if raw is not None else None

    # -- concurrency-safety sites (SL10xx) ----------------------------------

    def _conc_sites(self, node: ast.Call, raw, head, ctx: _FuncCtx) -> None:
        """Record mutation / durable-write / RNG-escape facts for a call."""
        # X.append(...) & friends through a non-local head: in-place
        # mutation of shared state (resolved against bindings later).
        if raw is not None and "." in raw and "()." not in raw:
            method = raw.rsplit(".", 1)[1]
            if method in _MUTATING_METHODS and head not in (None, "self") \
                    and (head == "cls" or (head not in ctx.local_names
                                           and head not in ctx.summary.nested)):
                kind = "cls-store" if head == "cls" else "mutcall"
                ctx.summary.mutations.append(
                    [node.lineno, kind, head, raw])

        # Durable-write sinks the graph pass cannot see from edges alone.
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("write_text", "write_bytes"):
            kind = "write-text" if node.func.attr == "write_text" else "write-bytes"
            detail = dotted_name(node.func) or f"<expr>.{node.func.attr}"
            ctx.summary.writes.append([node.lineno, kind, detail])
        if raw in ("open", "io.open"):
            mode = None
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
                mode = node.args[1].value
            for kw in node.keywords:
                if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                    mode = kw.value.value
            if isinstance(mode, str) \
                    and any(c in mode for c in _WRITE_MODE_CHARS):
                ctx.summary.writes.append([node.lineno, "open-w", mode])

        # RNG escape sites (SL1004).  Only a *loop-invariant* stream name
        # is a hazard: ``registry.stream("x")`` inside a cell loop hands
        # every iteration the same generator (state crosses cells), while
        # ``registry.stream(f"jitter-{host}")`` derives per-entity
        # streams — the sanctioned pattern.
        if raw is not None and ctx.loops and "." in raw \
                and raw.rsplit(".", 1)[1] == "stream" and head is not None \
                and all(head not in lp.stores for lp in ctx.loops) \
                and _rng_valued(head, ctx) \
                and all(isinstance(a, ast.Constant) for a in node.args):
            ctx.summary.rng_sites.append([node.lineno, "loop-stream", head])
        if raw is not None and raw.split("().")[-1].rsplit(".", 1)[-1] == "Process":
            for name in self._spawn_arg_names(node):
                if rng_like_name(name) or _rng_valued(name, ctx):
                    ctx.summary.rng_sites.append(
                        [node.lineno, "spawn-arg", name])

    @staticmethod
    def _spawn_arg_names(node: ast.Call) -> List[str]:
        """Identifiers handed to a ``Process(...)`` spawn, in order."""
        exprs: List[ast.expr] = list(node.args)
        for kw in node.keywords:
            if kw.arg == "args" and isinstance(kw.value, (ast.Tuple, ast.List)):
                exprs.extend(kw.value.elts)
            elif kw.arg is not None:
                exprs.append(kw.value)
        seen: List[str] = []
        for expr in exprs:
            if isinstance(expr, ast.Name) and expr.id not in seen:
                seen.append(expr.id)
        return seen


def summarize_tree(tree: ast.Module, rel: str, module: str,
                   suppressions: Dict[int, FrozenSet[str]]) -> FileSummary:
    """Summarize an already-parsed module (one parse per file, total)."""
    return _Summarizer(rel, module, suppressions).run(tree)


def summarize_source(source: str, rel: str, module: str) -> FileSummary:
    """Parse and summarize one file; raises ``SyntaxError`` like ``ast``."""
    tree = ast.parse(source, filename=rel)
    return summarize_tree(tree, rel, module, parse_suppressions(source))
