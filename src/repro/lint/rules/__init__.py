"""Shipped rule families — importing this package registers every rule.

* :mod:`repro.lint.rules.determinism` — SL1xx, seeded-randomness discipline
* :mod:`repro.lint.rules.units` — SL2xx, unit-constant discipline
* :mod:`repro.lint.rules.kernel` — SL3xx, kernel-safety
* :mod:`repro.lint.rules.observability` — SL4xx, metric naming and span pairing
* :mod:`repro.lint.rules.parallel` — SL5xx, parallelism containment
"""

from repro.lint.rules import (  # noqa: F401
    determinism,
    kernel,
    observability,
    parallel,
    units,
)
