"""Shipped rule families — importing this package registers every rule.

* :mod:`repro.lint.rules.determinism` — SL1xx, seeded-randomness discipline
* :mod:`repro.lint.rules.units` — SL2xx, unit-constant discipline
* :mod:`repro.lint.rules.kernel` — SL3xx, kernel-safety
* :mod:`repro.lint.rules.observability` — SL4xx, metric naming and span pairing
* :mod:`repro.lint.rules.parallel` — SL5xx, parallelism containment
* :mod:`repro.lint.rules.taint` — SL6xx, transitive-determinism taint
  (whole-program, via ``repro lint --graph``)
* :mod:`repro.lint.rules.unitsflow` — SL7xx, cross-call unit dataflow
  (whole-program, via ``repro lint --graph``)
* :mod:`repro.lint.rules.perf` — SL8xx, hot-path performance
  (whole-program, via ``repro lint --graph``)
* :mod:`repro.lint.rules.layering` — SL9xx, architecture layering
  (whole-program, via ``repro lint --graph``)
* :mod:`repro.lint.rules.conc` — SL10xx, cross-process concurrency
  safety (whole-program, via ``repro lint --graph``)
"""

from repro.lint.rules import (  # noqa: F401
    conc,
    determinism,
    kernel,
    layering,
    observability,
    parallel,
    perf,
    taint,
    units,
    unitsflow,
)
