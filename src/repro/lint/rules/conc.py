"""SL10xx — cross-process concurrency-safety rules over the call graph.

Campaign cells run in forked pool children and shard workers run in
separate OS processes: every one of them gets a *copy* of module and
class state at spawn time, and nothing written afterwards ever flows
back.  The classic failure modes are silent — a memo dict that warms in
one child only, a results file half-written when a worker is killed, a
directory tier where the last writer clobbers a sibling's hosts, an RNG
whose state advances differently per child.  These rules compute the
*worker set* — every function reachable through the call graph from the
configured ``worker_entrypoints`` (pool ``child_main``, the payload
runner, ``ShardCell.run_measurement``) — and flag the hazards inside it:

* **SL1001** — worker-reachable code mutates module- or class-level
  state (``global`` rebinding, stores/mutating calls through a module
  binding or ``cls``); the mutation is invisible outside the child.
* **SL1002** — a durable write (``open(.., "w")``, ``write_text``,
  ``json.dump``, ``pickle.dump``, ``np.savez``) bypasses the sanctioned
  atomic-rename protocol in :mod:`repro.core.atomic`; a parallel reader
  can observe a torn file.  Hand-rolled tmp+``os.replace`` copies are
  flagged too — auto-fixable for the simple ``write_text``/
  ``write_bytes`` shapes by ``repro lint --fix``.
* **SL1003** — a shared-tier read-modify-write: ``fetch_snapshot`` then
  ``publish_snapshot`` in one function with no freshest-wins
  ``DirectorySnapshot.merged`` between them; two racing shards each
  lose the other's writes.
* **SL1004** — an RNG crosses a process or cell boundary: a
  generator/registry pickled into a ``Process(...)`` spawn, handed to a
  worker entrypoint as a parameter, or streamed with a loop-invariant
  name so every cell advances the *same* generator.  Workers must
  re-derive streams from seeds (``RngRegistry``/``derive_seed``), never
  share generator state.

SL1002's protocol violations are mechanical, so it is a **warning** (and
fixable); the other three describe result-corrupting races and are
**errors**.  All sites come from the per-file summaries (warm cache runs
never re-parse); only the worker-set reachability pass and the
head-resolution against module bindings run here.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.lint.engine import graph_rule
from repro.lint.findings import Severity
from repro.lint.graph.summary import rng_like_name

__all__ = ["worker_functions"]

_WORKERSET_KEY = "conc-workerset"

#: External call-edge targets that serialize a full document to disk —
#: the dump-style half of SL1002's durable-write sinks (``open``/
#: ``write_text``/``write_bytes`` shapes come from the summaries).
_DUMP_SINKS = frozenset({
    "json.dump", "pickle.dump", "numpy.savez", "numpy.savez_compressed",
})

#: External call-edge targets that implement the rename half of a
#: hand-rolled atomic-write protocol.
_RENAME_CALLS = frozenset({"os.replace", "os.rename"})

_MUTATION_KIND_LABEL = {
    "global": "rebinds module global",
    "store": "stores into module-level binding",
    "cls-store": "stores into class-level state",
    "mutcall": "mutates module-level binding in place via",
}


def worker_functions(graph) -> Dict[str, str]:
    """fq -> the configured worker entrypoint that reaches it.

    Deterministic forward BFS from ``config.worker_entrypoints`` (see
    :meth:`~repro.lint.graph.graphbuild.ProjectGraph.reachable_from`);
    memoized so the SL10xx rules share one reachability pass.
    """
    return graph.reachable_from(graph.config.worker_entrypoints,
                                _WORKERSET_KEY)


def _module_level_head(graph, fsum, head: str) -> bool:
    """*head* names module-level state (here or in a project module).

    Heads that are locals, parameters or closure cells were filtered at
    extraction/resolution time; what remains is resolved against the
    file's module-scope bindings and its import table.  Imports of
    non-project modules (``os``, ``numpy``) are not flagged — mutating
    foreign library state is outside this family's contract.
    """
    if head in fsum.module_globals or head in fsum.defs:
        return True
    target = fsum.imports.get(head)
    return target is not None and target.split(".", 1)[0] in graph.roots


@graph_rule("SL1001", "worker-reachable mutation of module/class state",
            severity=Severity.ERROR)
def worker_shared_state_mutation(graph) -> Iterator[Tuple[str, int, str]]:
    workers = worker_functions(graph)
    for fq in sorted(workers):
        fsum, fn = graph.functions[fq]
        where = f"in worker-reachable {fq} (from {workers[fq]})"
        for line, kind, head, detail in fn.mutations:
            if kind in ("store", "mutcall") \
                    and not _module_level_head(graph, fsum, head):
                continue  # closure cell / unresolvable head
            yield fsum.rel, line, (
                f"{_MUTATION_KIND_LABEL[kind]} `{detail}` {where}; pool "
                f"children and shard workers mutate a private copy that "
                f"never flows back — pass state explicitly or return it "
                f"in the payload")


def _write_sinks(graph, fq, fn) -> List[Tuple[int, str]]:
    """(line, description) for every durable-write sink in *fq*."""
    sinks: List[Tuple[int, str]] = []
    for line, kind, detail in fn.writes:
        if kind == "open-w":
            sinks.append((line, f"`open(..., {detail!r})`"))
        else:
            sinks.append((line, f"`{detail}(...)`"))
    for edge in graph.out_edges.get(fq, []):
        if edge.kind == "external" and edge.target in _DUMP_SINKS:
            sinks.append((edge.line, f"`{edge.raw}(...)`"))
    return sorted(sinks)


@graph_rule("SL1002", "durable write outside the atomic-rename protocol",
            severity=Severity.WARNING)
def non_atomic_durable_write(graph) -> Iterator[Tuple[str, int, str]]:
    workers = worker_functions(graph)
    exempt = graph.config.atomic_write_files
    for fq in sorted(graph.functions):
        fsum, fn = graph.functions[fq]
        if fsum.rel in exempt:
            continue
        sinks = _write_sinks(graph, fq, fn)
        if not sinks:
            continue
        hand_rolled = any(
            e.kind == "external" and e.target in _RENAME_CALLS
            for e in graph.out_edges.get(fq, []))
        if hand_rolled:
            for line, desc in sinks:
                yield fsum.rel, line, (
                    f"{fq} hand-rolls the tmp+rename protocol around "
                    f"{desc}; route the write through repro.core.atomic "
                    f"(atomic_write / atomic_write_text / "
                    f"atomic_write_json) instead of a local copy")
        elif fq in workers:
            for line, desc in sinks:
                yield fsum.rel, line, (
                    f"non-atomic durable write {desc} in worker-reachable "
                    f"{fq} (from {workers[fq]}); a racing reader can see "
                    f"a torn file — use repro.core.atomic")


@graph_rule("SL1003", "unguarded read-modify-write on a shared tier",
            severity=Severity.ERROR)
def unguarded_tier_read_modify_write(graph) -> Iterator[Tuple[str, int, str]]:
    for fq in sorted(graph.functions):
        fsum, fn = graph.functions[fq]
        fetch_line = None
        publish_line = None
        has_merge = False
        for site in fn.calls:
            if site.raw is None:
                continue
            tail = site.raw.rsplit(".", 1)[-1]
            if tail == "fetch_snapshot" and fetch_line is None:
                fetch_line = site.line
            elif tail == "publish_snapshot":
                if fetch_line is not None and site.line >= fetch_line:
                    publish_line = site.line
            elif tail == "merged":
                has_merge = True
        if publish_line is not None and not has_merge:
            yield fsum.rel, publish_line, (
                f"{fq} fetches a tier snapshot and publishes a mutated "
                f"copy without a freshest-wins DirectorySnapshot.merged "
                f"step; two racing shards each lose the other's entries "
                f"— merge the fetched snapshot before publishing")


def _entrypoint_functions(graph) -> List[str]:
    """fqs that *are* configured worker entrypoints (not just reachable)."""
    matches: List[str] = []
    for entry in sorted(graph.config.worker_entrypoints):
        suffix = f".{entry}"
        for fq in sorted(graph.functions):
            if fq == entry or fq.endswith(suffix):
                matches.append(fq)
    return matches


@graph_rule("SL1004", "RNG state crosses a process or cell boundary",
            severity=Severity.ERROR)
def rng_crosses_process_boundary(graph) -> Iterator[Tuple[str, int, str]]:
    workers = worker_functions(graph)
    for fq in sorted(graph.functions):
        fsum, fn = graph.functions[fq]
        for line, kind, name in fn.rng_sites:
            if kind == "spawn-arg":
                yield fsum.rel, line, (
                    f"{fq} pickles RNG-carrying `{name}` into a process "
                    f"spawn; generator state diverges between parent and "
                    f"child — pass a seed and re-derive with "
                    f"RngRegistry/derive_seed in the child")
            elif kind == "loop-stream" and fq in workers:
                yield fsum.rel, line, (
                    f"worker-reachable {fq} (from {workers[fq]}) streams "
                    f"`{name}` with a loop-invariant name; every "
                    f"iteration advances the same generator, so state "
                    f"silently crosses cells — derive a per-entity "
                    f"stream (e.g. an f-string name) or fork per cell")
    for fq in _entrypoint_functions(graph):
        fsum, fn = graph.functions[fq]
        for pname in fn.posparams + fn.kwonly:
            reason = rng_like_name(pname)
            if reason:
                yield fsum.rel, fn.line, (
                    f"worker entrypoint {fq} takes parameter `{pname}` "
                    f"({reason}): the generator is pickled across the "
                    f"process boundary with its state — take a seed and "
                    f"re-derive the stream inside the worker")
