"""SL1xx — determinism: every stochastic or order-sensitive construct in
model code must flow from the master seed (``repro.sim.rng.RngRegistry``)
or be intrinsically deterministic."""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.context import FileContext, dotted_name, is_setish
from repro.lint.engine import MODEL, TREE, rule

__all__ = []

#: Wall-clock reads that leak real time into simulated time.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "date.today", "datetime.date.today",
})

#: Legacy / global numpy RNG constructors besides default_rng.
_LEGACY_NP_RANDOM = frozenset({
    "np.random.seed", "numpy.random.seed",
    "np.random.RandomState", "numpy.random.RandomState",
})


@rule("SL101", "wall-clock read in simulation code", scope=MODEL)
def wall_clock(ctx: FileContext) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in _WALL_CLOCK:
                yield node.lineno, (
                    f"{name}() reads the wall clock; simulation code must use "
                    f"the kernel's simulated time (sim.now) so runs are "
                    f"bit-reproducible"
                )


@rule("SL102", "stdlib random module in simulation code", scope=MODEL)
def stdlib_random(ctx: FileContext) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield node.lineno, (
                        "stdlib `random` is globally seeded and unseedable per "
                        "component; draw from RngRegistry.stream(...) instead"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield node.lineno, (
                    "stdlib `random` is globally seeded and unseedable per "
                    "component; draw from RngRegistry.stream(...) instead"
                )
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name and name.split(".")[0] == "random" and "." in name:
                yield node.lineno, (
                    f"{name}() uses the global stdlib RNG; draw from "
                    f"RngRegistry.stream(...) instead"
                )


@rule("SL103", "ad-hoc RNG construction outside whitelisted entry points",
      scope=TREE)
def adhoc_default_rng(ctx: FileContext) -> Iterator[Tuple[int, str]]:
    if ctx.is_rng_entrypoint:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        if name == "default_rng" or name.endswith(".default_rng"):
            yield node.lineno, (
                "np.random.default_rng(...) here bypasses the master-seed "
                "discipline; accept an injected np.random.Generator or use "
                "RngRegistry.stream(name)"
            )
        elif name in _LEGACY_NP_RANDOM:
            yield node.lineno, (
                f"{name}(...) uses numpy's legacy/global RNG state; use "
                f"RngRegistry named streams"
            )


#: Shared with the whole-program summarizer (repro.lint.graph.summary).
_is_setish = is_setish


@rule("SL104", "iteration over a hash-ordered set in model code", scope=MODEL)
def set_iteration(ctx: FileContext) -> Iterator[Tuple[int, str]]:
    msg = (
        "iterating a set here feeds hash order (PYTHONHASHSEED-dependent for "
        "strings) into the simulation; wrap it in sorted(...)"
    )
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_setish(node.iter):
            yield node.iter.lineno, msg
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                if _is_setish(gen.iter):
                    yield gen.iter.lineno, msg
