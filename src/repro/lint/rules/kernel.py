"""SL3xx — kernel-safety: constructs that corrupt state across runs or
silently swallow simulation faults."""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.context import FileContext, dotted_name, terminal_name
from repro.lint.engine import MODEL, TREE, rule

__all__ = []

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "deque",
    "defaultdict", "collections.defaultdict", "collections.deque",
    "Counter", "collections.Counter", "OrderedDict", "collections.OrderedDict",
})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in _MUTABLE_CALLS
    return False


@rule("SL301", "mutable default argument", scope=TREE)
def mutable_defaults(ctx: FileContext) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            args = node.args
            positional = args.posonlyargs + args.args
            pairs = list(zip(positional[len(positional) - len(args.defaults):],
                             args.defaults))
            pairs += [(a, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)
                      if d is not None]
            for arg, default in pairs:
                if _is_mutable_default(default):
                    yield default.lineno, (
                        f"mutable default for {arg.arg!r} is shared across "
                        f"calls (and across simulation runs); default to None "
                        f"and construct inside the function"
                    )


@rule("SL302", "bare except swallows simulation faults", scope=TREE)
def bare_except(ctx: FileContext) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield node.lineno, (
                "bare `except:` catches SystemExit/KeyboardInterrupt and hides "
                "kernel faults; catch a specific exception type"
            )


_TIMEY_NAMES = frozenset({"now", "time_s", "sim_time", "deadline", "horizon"})
_TIMEY_SUFFIXES = ("_s", "_ms", "_us", "_time")


def _is_sim_time(node: ast.AST) -> bool:
    name = terminal_name(node)
    if not name:
        return False
    lowered = name.lower()
    if lowered in _TIMEY_NAMES:
        return True
    return any(lowered.endswith(sfx) for sfx in _TIMEY_SUFFIXES)


@rule("SL303", "float equality against a simulation-time expression",
      scope=MODEL)
def float_time_equality(ctx: FileContext) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                # `x is None` style comparisons are not the target here.
                if not (isinstance(right, ast.Constant) and right.value is None):
                    if _is_sim_time(left) or _is_sim_time(right):
                        yield node.lineno, (
                            "exact float comparison against simulated time "
                            "accumulates representation error; compare with a "
                            "tolerance or restructure around event ordering"
                        )
            left = right
