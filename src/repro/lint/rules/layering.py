"""SL9xx — architecture-layering enforcement over the import graph.

The repo's package architecture is a DAG declared in
``LintConfig.layers`` (lowest layer first): ``units``/``errors`` at the
bottom, the simulation kernel above them, then the network model, the
cloud/transfer layers, orchestration, and finally ``lint`` and ``cli``
at the top.  A package may import same-layer or lower-layer packages —
never higher ones.  Keeping that discipline mechanical is what lets the
kernel stay importable in isolation and the linter stay out of model
code.

* **SL901** — upward import: a lower-layer package imports a
  higher-layer one, or a package imports a *restricted* package
  (``restricted_imports``, e.g. ``lint`` is importable only from
  ``cli``) it is not on the allow-list for.
* **SL902** — cross-package private-module import: ``repro.x._y`` is an
  implementation detail of ``x``; other packages must go through the
  public surface.
* **SL903** — module-level import cycle: mutually importing modules
  make initialization order load-bearing; one finding per strongly
  connected component.
* **SL904** — dead export (*warning*): a public name exported from a
  package ``__init__`` (via ``__all__`` or a re-export) that nothing
  outside the package — code, docs, or tests — ever references.

Packages absent from the DAG are unconstrained, and an empty ``layers``
disables SL901 entirely, so small fixture trees stay clean by default.
The rules work off the raw per-file ``import_sites`` (not the resolved
alias table) so every flagged line is a real import statement.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.engine import graph_rule
from repro.lint.findings import Severity

__all__ = []

_REFSETS_KEY = "layering-refsets"


def _is_dunder(part: str) -> bool:
    return part.startswith("__") and part.endswith("__")


def _target_parts(graph, target: str) -> Optional[List[str]]:
    """Path components below the scan root for a project import target.

    ``repro.net.engine`` -> ``["net", "engine"]``; None for external
    imports (``numpy``) and for the bare root package itself.
    """
    parts = target.split(".")
    if parts[0] not in graph.roots or len(parts) < 2:
        return None
    return parts[1:]


def _importer_package(summary) -> Optional[str]:
    """The owning package of a scanned file; None for the root __init__
    (which legitimately re-exports from every layer)."""
    pkg = summary.package
    return None if pkg == "__init__" else pkg


# -- SL901 / SL902 ----------------------------------------------------------


@graph_rule("SL901", "import that violates the declared layer DAG")
def upward_import(graph) -> Iterator[Tuple[str, int, str]]:
    config = graph.config
    index = config.layer_index()
    restricted = config.restricted_imports
    for rel in sorted(graph.summaries):
        summary = graph.summaries[rel]
        importer = _importer_package(summary)
        if importer is None:
            continue
        for line, _bound, target, _module_scope in summary.import_sites:
            below = _target_parts(graph, target)
            if below is None:
                continue
            pkg = below[0]
            if pkg == importer:
                continue
            if pkg in index and importer in index \
                    and index[pkg] > index[importer]:
                yield rel, line, (
                    f"upward import: {importer!r} (layer {index[importer]}) "
                    f"imports {pkg!r} (layer {index[pkg]}); the layer DAG "
                    f"only allows same-layer or downward imports")
            elif pkg in restricted and importer not in restricted[pkg]:
                allowed = ", ".join(sorted(restricted[pkg]))
                yield rel, line, (
                    f"{importer!r} imports restricted package {pkg!r}, "
                    f"which only [{allowed}] may import")


@graph_rule("SL902", "cross-package import of a private module")
def private_module_import(graph) -> Iterator[Tuple[str, int, str]]:
    for rel in sorted(graph.summaries):
        summary = graph.summaries[rel]
        importer = _importer_package(summary)
        if importer is None:
            continue
        for line, _bound, target, _module_scope in summary.import_sites:
            below = _target_parts(graph, target)
            if below is None or below[0] == importer:
                continue
            private = [p for p in below[1:]
                       if p.startswith("_") and not _is_dunder(p)]
            if private:
                yield rel, line, (
                    f"`{target}` is private to package {below[0]!r} "
                    f"(module `{private[0]}` is underscore-prefixed); "
                    f"import through its public surface instead")


# -- SL903: module-level import cycles --------------------------------------


def _module_import_edges(graph) -> Dict[str, Dict[str, int]]:
    """module -> {imported project module -> first import line}.

    Module-scope imports only — a function-scope import does not run at
    initialization time and therefore cannot deadlock it.
    """
    edges: Dict[str, Dict[str, int]] = {}
    for rel in sorted(graph.summaries):
        summary = graph.summaries[rel]
        out = edges.setdefault(summary.module, {})
        for line, _bound, target, module_scope in summary.import_sites:
            if not module_scope:
                continue
            resolved = _resolve_module(graph, target)
            if resolved is None or resolved == summary.module:
                continue
            if resolved not in out or line < out[resolved]:
                out[resolved] = line
    return edges


def _resolve_module(graph, target: str) -> Optional[str]:
    """Longest prefix of *target* that names a scanned project module."""
    parts = target.split(".")
    if parts[0] not in graph.roots:
        return None
    for i in range(len(parts), 0, -1):
        candidate = ".".join(parts[:i])
        if candidate in graph.modules:
            return candidate
    return None


def _strongly_connected(edges: Dict[str, Dict[str, int]]) -> List[List[str]]:
    """SCCs with more than one module, each sorted, in sorted order.

    Iterative Tarjan with sorted adjacency, so component discovery is
    independent of dict insertion history.
    """
    order: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    sccs: List[List[str]] = []

    for root in sorted(edges):
        if root in order:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, i = work.pop()
            if i == 0:
                order[node] = low[node] = len(order)
                stack.append(node)
                on_stack[node] = True
            neighbors = sorted(edges.get(node, {}))
            advanced = False
            while i < len(neighbors):
                nxt = neighbors[i]
                i += 1
                if nxt not in order:
                    work.append((node, i))
                    work.append((nxt, 0))
                    advanced = True
                    break
                if on_stack.get(nxt):
                    low[node] = min(low[node], order[nxt])
            if advanced:
                continue
            if low[node] == order[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sorted(sccs)


@graph_rule("SL903", "module-level import cycle")
def import_cycle(graph) -> Iterator[Tuple[str, int, str]]:
    edges = _module_import_edges(graph)
    for component in _strongly_connected(edges):
        anchor = component[0]
        summary = graph.modules.get(anchor)
        if summary is None:
            continue
        in_cycle = {m for m in component if m in edges.get(anchor, {})}
        lines = sorted(edges[anchor][m] for m in sorted(in_cycle))
        line = lines[0] if lines else 1
        cycle = " -> ".join(component + [anchor])
        yield summary.rel, line, (
            f"module-level import cycle: {cycle}; break it with a "
            f"function-scope import or by moving the shared symbol down "
            f"a layer")


# -- SL904: dead exports ----------------------------------------------------


def _refsets(graph) -> Dict[str, Tuple[str, frozenset]]:
    """rel -> (package, identifier set) for every scanned file."""
    cached = graph.scratch.get(_REFSETS_KEY)
    if cached is not None:
        return cached
    refsets = {rel: (graph.summaries[rel].package,
                     frozenset(graph.summaries[rel].refs))
               for rel in sorted(graph.summaries)}
    graph.scratch[_REFSETS_KEY] = refsets
    return refsets


def _exports(summary) -> List[Tuple[int, str]]:
    """(line, name) public exports of one ``__init__`` module."""
    if summary.dunder_all is not None:
        return [(line, name) for line, name in summary.dunder_all
                if not name.startswith("_")]
    return [(line, bound) for line, bound, _target, module_scope
            in summary.import_sites
            if module_scope and bound and not bound.startswith("_")]


@graph_rule("SL904", "public export never referenced outside its package",
            severity=Severity.WARNING)
def dead_export(graph) -> Iterator[Tuple[str, int, str]]:
    refsets = _refsets(graph)
    for rel in sorted(graph.summaries):
        if not rel.endswith("__init__.py"):
            continue
        summary = graph.summaries[rel]
        own_pkg = summary.package
        for line, name in _exports(summary):
            if name in graph.extra_refs:
                continue
            used = any(name in refs
                       for other_rel, (pkg, refs) in sorted(refsets.items())
                       if other_rel != rel and pkg != own_pkg)
            if not used:
                yield rel, line, (
                    f"`{name}` is exported from {summary.module} but never "
                    f"referenced outside package {own_pkg!r} (code, docs, "
                    f"or tests); drop the export or add it to the docs")
