"""SL4xx — observability discipline: naming, spans, sim-time purity.

Metrics and spans are read long after the code that emitted them has
scrolled away, so their *names* are the API.  SL401 pins the metric
naming convention (``repro_`` prefix, snake_case, unit suffix) at the
registration site; SL402 keeps span begin/end events paired by forcing
them through the ``SpanTracer.span(...)`` context manager instead of
hand-rolled ``emit`` calls that can miss the closing half; SL403 keeps
the observability layer itself sim-time pure — the profiler is the one
obs module whose job is wall time, every other file under ``obs/``
reading a clock would smuggle host speed into exported data.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.context import FileContext, dotted_name, terminal_name
from repro.lint.engine import TREE, rule
from repro.lint.rules.determinism import _WALL_CLOCK
from repro.obs.metrics import UNIT_SUFFIXES, valid_metric_name

__all__ = []

#: Receivers that look like a metrics registry; gates SL401 so unrelated
#: ``.counter(...)`` methods on other objects are not misread.
_REGISTRY_NAMES = frozenset({"metrics", "registry", "reg", "_metrics", "_registry"})

_INSTRUMENT_METHODS = frozenset({"counter", "gauge", "histogram"})

_SPAN_EVENT_KINDS = frozenset({"span_begin", "span_end"})


def _registration_sites(tree: ast.Module) -> Iterator[Tuple[ast.Call, str]]:
    """``(call, metric_name)`` for registry.counter/gauge/histogram calls
    whose first argument is a string literal."""
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in _INSTRUMENT_METHODS:
            continue
        receiver = terminal_name(node.func.value)
        if receiver is None or receiver.lower() not in _REGISTRY_NAMES:
            continue
        if node.args and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            yield node, node.args[0].value


@rule("SL401", "metric name violates the naming convention", scope=TREE)
def metric_naming(ctx: FileContext) -> Iterator[Tuple[int, str]]:
    for call, name in _registration_sites(ctx.tree):
        if not valid_metric_name(name):
            suffixes = "/".join(UNIT_SUFFIXES)
            yield call.lineno, (
                f"metric name {name!r} must be snake_case with a 'repro_' "
                f"prefix and end in a unit suffix ({suffixes})"
            )


@rule("SL402", "span event emitted outside the span context manager",
      scope=TREE)
def span_emit_outside_tracer(ctx: FileContext) -> Iterator[Tuple[int, str]]:
    if ctx.rel in ctx.config.span_emitter_files:
        return
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr != "emit":
            continue
        for arg in node.args:
            if isinstance(arg, ast.Constant) and arg.value in _SPAN_EVENT_KINDS:
                yield node.lineno, (
                    f"emitting {arg.value!r} by hand can leave spans "
                    f"unpaired; use `with spans.span(component, name):` so "
                    f"begin/end always match"
                )
                break


@rule("SL403", "wall-clock read in the observability layer", scope=TREE)
def obs_wall_clock(ctx: FileContext) -> Iterator[Tuple[int, str]]:
    """Only the profiler may read real time under ``obs/``.

    Everything else in the observability layer records *simulated* time
    or caller-supplied measurements; a wall-clock read there would make
    metric/telemetry exports vary with host speed and break the
    obs-on/obs-off bit-identity invariant.
    """
    if not ctx.rel.startswith("obs/") or ctx.rel in ctx.config.profiler_files:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in _WALL_CLOCK:
                yield node.lineno, (
                    f"{name}() reads the wall clock inside repro.obs; only "
                    f"the profiler ({', '.join(sorted(ctx.config.profiler_files))}) "
                    f"may time real execution — pass measured durations or "
                    f"timestamps in from the orchestration layer instead"
                )
