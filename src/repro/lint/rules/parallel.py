"""SL5xx — parallelism containment: process fan-out stays in one package.

The simulation's determinism story depends on every world running in a
single process: the campaign engine (``repro/campaign/``) is the one
component that forks workers, and everything it runs inside a worker is
ordinary single-process harness code.  A ``multiprocessing`` import
anywhere else is either a nested pool waiting to deadlock under the
campaign engine or an unmanaged side channel around the result store —
both invisible to the bit-identity tests until they flake.

SL501 forbids importing ``multiprocessing`` / ``concurrent.futures``
outside ``config.parallelism_packages``; SL502 forbids raw
``os.fork``-family calls everywhere (even the campaign engine must go
through ``multiprocessing`` so children are tracked and reaped).
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.context import FileContext, dotted_name
from repro.lint.engine import TREE, rule

__all__ = []

#: Module roots whose import marks process-level parallelism.
_PARALLEL_MODULES = ("multiprocessing", "concurrent.futures")

#: ``os`` functions that create a child process behind the runtime's back.
_FORK_CALLS = frozenset({"fork", "forkpty"})


def _is_parallel_module(module: str) -> bool:
    return any(module == root or module.startswith(root + ".")
               for root in _PARALLEL_MODULES)


def _in_parallelism_package(ctx: FileContext) -> bool:
    return ctx.package in ctx.config.parallelism_packages


@rule("SL501", "process-pool import outside the campaign engine", scope=TREE)
def parallel_import_containment(ctx: FileContext) -> Iterator[Tuple[int, str]]:
    if _in_parallelism_package(ctx):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_parallel_module(alias.name):
                    yield node.lineno, (
                        f"import of {alias.name!r} outside "
                        f"{sorted(ctx.config.parallelism_packages)}: worker "
                        f"fan-out belongs to the campaign engine (run cells "
                        f"through repro.campaign instead)"
                    )
        elif isinstance(node, ast.ImportFrom) and node.module:
            # `from concurrent import futures` names the parent module.
            candidates = [node.module] + [f"{node.module}.{a.name}"
                                          for a in node.names]
            if any(_is_parallel_module(c) for c in candidates):
                yield node.lineno, (
                    f"import from {node.module!r} outside "
                    f"{sorted(ctx.config.parallelism_packages)}: worker "
                    f"fan-out belongs to the campaign engine (run cells "
                    f"through repro.campaign instead)"
                )


@rule("SL502", "raw os.fork bypasses the worker pool", scope=TREE)
def raw_fork(ctx: FileContext) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name in {f"os.{fn}" for fn in _FORK_CALLS}:
            yield node.lineno, (
                f"{name}() creates an untracked child process; even the "
                f"campaign engine must fork via multiprocessing so workers "
                f"are joined, timed out, and reaped"
            )
