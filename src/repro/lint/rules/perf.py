"""SL8xx — hot-path performance rules over the whole-program call graph.

The simulator's inner loops run millions of events per campaign; a
per-event allocation or attribute resolution that is invisible in a unit
test dominates the wall clock at scale.  These rules compute the
*kernel-hot set* — every function reachable through the call graph from
the configured ``hot_entrypoints`` (``Simulator.run``, the network
engine's reallocation path, the TCP and policer step functions) — and
flag the classic per-event inefficiencies inside its loops:

* **SL801** — a fresh empty container (``[]``, ``{}``, ``set()``)
  is bound every iteration; allocate once outside the loop instead.
* **SL802** — a dotted callee chain (``self.sim.schedule``) is resolved
  two or more times per iteration; hoist the bound method into a local.
* **SL803** — ``try/except KeyError`` (or another control-flow
  exception) implements per-event branching; a lookup or guard avoids
  the exception machinery on the hot path.
* **SL804** — an ``in`` test against a known list is O(n) per event;
  use a set or dict.

All four are **warnings**: each site is a judgement call, the evidence
is static, and the cure (a local, a preallocated buffer, a set) is
always a small local edit — which is why SL802 is auto-fixable by
``repro lint --fix``.  The loop sites themselves are extracted into the
per-file summaries (so warm cache runs never re-parse); only the
hot-set reachability pass runs here.  Chains that are (even partially)
rebound inside the loop are never flagged — hoisting them would change
semantics — and plain data-attribute loads are out of scope entirely,
because an attribute's *value* may legitimately change mid-loop.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.lint.engine import graph_rule
from repro.lint.findings import Severity

__all__ = ["hot_functions"]

_HOTSET_KEY = "perf-hotset"
_FINDINGS_KEY = "perf-findings"


def hot_functions(graph) -> Dict[str, str]:
    """fq -> the configured hot entrypoint that reaches it.

    Deterministic forward BFS from ``config.hot_entrypoints`` (see
    :meth:`~repro.lint.graph.graphbuild.ProjectGraph.reachable_from`);
    memoized so the four SL8xx rules share one reachability pass.
    """
    return graph.reachable_from(graph.config.hot_entrypoints, _HOTSET_KEY)


def _perf_findings(graph) -> List[Tuple[str, str, int, str]]:
    """(rule id, rel, line, message) for every hot-loop perf site."""
    cached = graph.scratch.get(_FINDINGS_KEY)
    if cached is not None:
        return cached
    hot = hot_functions(graph)
    findings: List[Tuple[str, str, int, str]] = []
    for fq in sorted(hot):
        fsum, fn = graph.functions[fq]
        where = f"in hot function {fq} (reachable from {hot[fq]})"
        for loop_line, kind, payload in fn.perf:
            if kind == "loop-container":
                line, name, ctor = payload
                findings.append(("SL801", fsum.rel, line, (
                    f"fresh {ctor} `{name}` is built every iteration of the "
                    f"loop at line {loop_line} {where}; allocate it once "
                    f"before the loop or reuse a scratch object")))
            elif kind == "loop-attr":
                chain, count, first_line = payload
                findings.append(("SL802", fsum.rel, first_line, (
                    f"`{chain}` is resolved {count}x per iteration of the "
                    f"loop at line {loop_line} {where}; hoist it into a "
                    f"local before the loop")))
            elif kind == "loop-try":
                line, names = payload
                findings.append(("SL803", fsum.rel, line, (
                    f"try/except {', '.join(names)} implements per-event "
                    f"control flow in the loop at line {loop_line} {where}; "
                    f"prefer a lookup or guard on the hot path")))
            elif kind == "loop-list-in":
                line, name = payload
                findings.append(("SL804", fsum.rel, line, (
                    f"membership test against list `{name}` is O(n) per "
                    f"iteration of the loop at line {loop_line} {where}; "
                    f"use a set or dict")))
    graph.scratch[_FINDINGS_KEY] = findings
    return findings


def _by_rule(graph, rule_id: str) -> Iterator[Tuple[str, int, str]]:
    for rid, rel, line, message in _perf_findings(graph):
        if rid == rule_id:
            yield rel, line, message


@graph_rule("SL801", "per-event container construction in a hot loop",
            severity=Severity.WARNING)
def hot_loop_container(graph) -> Iterator[Tuple[str, int, str]]:
    return _by_rule(graph, "SL801")


@graph_rule("SL802", "repeated attribute-chain resolution in a hot loop",
            severity=Severity.WARNING)
def hot_loop_attr_chain(graph) -> Iterator[Tuple[str, int, str]]:
    return _by_rule(graph, "SL802")


@graph_rule("SL803", "exception-driven control flow in a hot loop",
            severity=Severity.WARNING)
def hot_loop_try_control_flow(graph) -> Iterator[Tuple[str, int, str]]:
    return _by_rule(graph, "SL803")


@graph_rule("SL804", "O(n) list membership test in a hot loop",
            severity=Severity.WARNING)
def hot_loop_list_membership(graph) -> Iterator[Tuple[str, int, str]]:
    return _by_rule(graph, "SL804")
