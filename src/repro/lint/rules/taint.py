"""SL6xx — transitive-determinism taint over the whole-program call graph.

The per-file SL1xx rules only see nondeterminism written *in model
code*.  But the kernel reaches far beyond the model packages: a broker
process calls through ``core.selection`` into ``net``, and a helper in a
utility module three calls away can read the wall clock or seed a
generator from OS entropy.  These rules mark nondeterminism *sinks*
wherever they occur outside model code and convict any that are
reachable from model-package functions (the analysis entrypoints:
``Simulator`` process callables, ``World`` build paths, and everything
else in ``lint.config.model_packages`` — all of which live in those
packages).  Each finding prints the full call chain from an entrypoint
to the sink.

Sinks *inside* model packages are the per-file rules' jurisdiction
(SL101/SL103/SL104 already fail there); SL6xx exists for the transitive
case those rules cannot see.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.engine import graph_rule

__all__ = []

#: Wall-clock reads, by fully qualified (post-import-resolution) name.
WALL_CLOCK_SINKS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Nondeterministically seeded randomness, unconditionally.
ENTROPY_SINKS = frozenset({
    "os.urandom", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.choice", "secrets.randbits",
})

#: Nondeterministic only when called with no arguments (OS-entropy seed).
ARGLESS_ENTROPY_SINKS = frozenset({"numpy.random.default_rng"})

_SCRATCH_KEY = "taint"


def _collect_sinks(graph) -> List[Tuple[str, int, str, str]]:
    """All (function fq, line, rule id, label) sinks outside model code."""
    sinks: List[Tuple[str, int, str, str]] = []
    for fq in sorted(graph.functions):
        fsum, fn = graph.functions[fq]
        if fsum.package in graph.config.model_packages:
            continue  # per-file SL1xx territory
        for edge in graph.out_edges.get(fq, []):
            if edge.kind != "external":
                continue
            if edge.target in WALL_CLOCK_SINKS:
                sinks.append((fq, edge.line, "SL601",
                              f"{edge.raw}() reads the wall clock"))
            elif edge.target in ENTROPY_SINKS:
                sinks.append((fq, edge.line, "SL602",
                              f"{edge.raw}() draws OS entropy"))
            elif (edge.target in ARGLESS_ENTROPY_SINKS and edge.site is not None
                  and edge.site.nargs + edge.site.nkw == 0 and not edge.site.star):
                sinks.append((fq, edge.line, "SL602",
                              f"argless {edge.raw}() seeds from OS entropy"))
        for line, kind in fn.sinks:
            if kind == "set-iter" and fn.has_value_return:
                sinks.append((fq, line, "SL603",
                              "hash-ordered set iteration feeds the return value"))
    return sinks


def _chain_to_entrypoint(graph, sink_fq: str) -> Optional[List[str]]:
    """Shortest call chain entrypoint -> ... -> sink function, or None.

    Deterministic: BFS levels are expanded in sorted order, so ties
    always break the same way regardless of dict/set history.
    """
    if graph.is_model(sink_fq):
        return [sink_fq]
    # Backward BFS over callers; next_hop[caller] = callee it was
    # discovered from, giving the forward chain on reconstruction.
    next_hop: Dict[str, str] = {}
    seen = {sink_fq}
    frontier = [sink_fq]
    while frontier:
        new_frontier: List[str] = []
        for node in frontier:
            for edge in sorted(graph.in_edges.get(node, []),
                               key=lambda e: (e.caller, e.line)):
                caller = edge.caller
                if caller in seen:
                    continue
                seen.add(caller)
                next_hop[caller] = node
                if graph.is_model(caller):
                    chain = [caller]
                    while chain[-1] != sink_fq:
                        chain.append(next_hop[chain[-1]])
                    return chain
                new_frontier.append(caller)
        frontier = sorted(new_frontier)
    return None


def _taint_findings(graph) -> List[Tuple[str, str, int, str]]:
    """(rule id, rel, line, message) for every convicted sink; memoized
    on the graph so SL601/SL602/SL603 share one reachability pass."""
    cached = graph.scratch.get(_SCRATCH_KEY)
    if cached is not None:
        return cached
    findings: List[Tuple[str, str, int, str]] = []
    for sink_fq, line, rule_id, label in _collect_sinks(graph):
        chain = _chain_to_entrypoint(graph, sink_fq)
        if chain is None:
            continue  # sink exists but no model-code path reaches it
        fsum, _ = graph.functions[sink_fq]
        path = " -> ".join(chain)
        findings.append((rule_id, fsum.rel, line, (
            f"{label}; reachable from model code via {path}"
        )))
    graph.scratch[_SCRATCH_KEY] = findings
    return findings


def _by_rule(graph, rule_id: str) -> Iterator[Tuple[str, int, str]]:
    for rid, rel, line, message in _taint_findings(graph):
        if rid == rule_id:
            yield rel, line, message


@graph_rule("SL601", "wall-clock read reachable from model code")
def transitive_wall_clock(graph) -> Iterator[Tuple[str, int, str]]:
    return _by_rule(graph, "SL601")


@graph_rule("SL602", "OS-entropy randomness reachable from model code")
def transitive_entropy_rng(graph) -> Iterator[Tuple[str, int, str]]:
    return _by_rule(graph, "SL602")


@graph_rule("SL603", "hash-ordered iteration feeding a model-reachable return")
def transitive_set_iteration(graph) -> Iterator[Tuple[str, int, str]]:
    return _by_rule(graph, "SL603")
