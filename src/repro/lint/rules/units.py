"""SL2xx — units: sizes in bytes, rates in bps, time in seconds, spelled
with the named constants of :mod:`repro.units`, never magic numbers."""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Tuple

from repro.lint.context import FileContext, dotted_name, identifiers_in, terminal_name
from repro.lint.engine import MODEL, rule
from repro.lint.findings import Severity

__all__ = []

#: Power expressions that spell a unit constant.
_POW_NAMES = {
    10 ** 3: "units.KB", 10 ** 6: "units.MB", 10 ** 9: "units.GB",
    10 ** 12: "units.TB", 2 ** 10: "units.KiB", 2 ** 20: "units.MiB",
    2 ** 30: "units.GiB",
}

_BYTESISH = re.compile(r"bytes|size|nbytes|_mb$|_mib$", re.IGNORECASE)


def _magic_size(value: object) -> Optional[str]:
    """A replacement spelling if *value* is a recognizable size constant."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if value != int(value):
        return None
    n = int(value)
    if n in _POW_NAMES:
        return _POW_NAMES[n]
    if n >= 2 ** 20 and n % 2 ** 20 == 0 and n < 2 ** 44 and (n & (n - 1)) == 0:
        return f"{n // 2 ** 20} * units.MiB"
    if n >= 10 ** 6 and n % 10 ** 6 == 0 and n < 10 ** 13:
        return f"{n // 10 ** 6} * units.MB"
    return None


def _bytesish(node: ast.AST) -> bool:
    return any(_BYTESISH.search(ident) for ident in identifiers_in(node))


def _const_value(node: ast.AST):
    if isinstance(node, ast.Constant):
        return node.value
    return None


@rule("SL201", "magic size constant in model code", scope=MODEL)
def magic_size_constants(ctx: FileContext) -> Iterator[Tuple[int, str]]:
    if ctx.defines_units:
        return

    def magic_constants_under(node: ast.AST):
        for sub in ast.walk(node):
            suggestion = _magic_size(_const_value(sub))
            if suggestion is not None:
                yield sub, suggestion

    for node in ast.walk(ctx.tree):
        # 10**6 / 2**20 spelled as powers anywhere in model code.
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
            left, right = _const_value(node.left), _const_value(node.right)
            if isinstance(left, int) and isinstance(right, int):
                value = left ** right
                if value in _POW_NAMES:
                    yield node.lineno, (
                        f"{left}**{right} is a magic unit constant; "
                        f"use {_POW_NAMES[value]}"
                    )
        # Size-named bindings / defaults / keywords holding a magic literal.
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            names = [terminal_name(t) for t in targets]
            if node.value is not None and any(n and _BYTESISH.search(n) for n in names):
                for const, suggestion in magic_constants_under(node.value):
                    yield const.lineno, (
                        f"magic constant {const.value!r} bound to a size-named "
                        f"variable; use {suggestion}"
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            positional = args.posonlyargs + args.args
            for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                    args.defaults):
                if _BYTESISH.search(arg.arg):
                    for const, suggestion in magic_constants_under(default):
                        yield const.lineno, (
                            f"magic constant {const.value!r} as default for "
                            f"{arg.arg!r}; use {suggestion}"
                        )
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is not None and _BYTESISH.search(arg.arg):
                    for const, suggestion in magic_constants_under(default):
                        yield const.lineno, (
                            f"magic constant {const.value!r} as default for "
                            f"{arg.arg!r}; use {suggestion}"
                        )
        elif isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg and _BYTESISH.search(kw.arg):
                    for const, suggestion in magic_constants_under(kw.value):
                        yield const.lineno, (
                            f"magic constant {const.value!r} passed as "
                            f"{kw.arg!r}; use {suggestion}"
                        )
        # bytes / 1e6 and friends: scaling a byte quantity with a literal.
        elif isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Mult, ast.Div,
                                                                  ast.FloorDiv)):
            for const_side, other in ((node.left, node.right), (node.right, node.left)):
                suggestion = _magic_size(_const_value(const_side))
                if suggestion is not None and _bytesish(other):
                    yield node.lineno, (
                        f"scaling a byte quantity by magic "
                        f"{_const_value(const_side)!r}; use {suggestion} or a "
                        f"repro.units helper (bytes_to_mb, mb, ...)"
                    )


_RATEISH = re.compile(r"bytes|nbytes|bps|rate|throughput|bandwidth", re.IGNORECASE)


@rule("SL202", "magic *8 bit/byte conversion in model code", scope=MODEL)
def bits_per_byte(ctx: FileContext) -> Iterator[Tuple[int, str]]:
    if ctx.defines_units:
        return
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.BinOp)
                and isinstance(node.op, (ast.Mult, ast.Div))):
            continue
        for const_side, other in ((node.left, node.right), (node.right, node.left)):
            if _const_value(const_side) != 8 or isinstance(_const_value(const_side), bool):
                continue
            idents = list(identifiers_in(other))
            if "units" in idents or "BITS_PER_BYTE" in idents:
                continue  # already spelled via repro.units
            if any(_RATEISH.search(i) for i in idents):
                yield node.lineno, (
                    "bare `8` converting between bits and bytes; use "
                    "units.BITS_PER_BYTE (or bytes_per_sec/throughput_bps)"
                )


#: Longest-first so ``_mbps`` is not mistaken for ``_bps``.
_UNIT_SUFFIXES = ("_gbps", "_mbps", "_kbps", "_bps", "_ms", "_us", "_s")
_FAMILIES = {
    "gbps": "rate", "mbps": "rate", "kbps": "rate", "bps": "rate",
    "ms": "time", "us": "time", "s": "time",
}
#: Calls that perform an explicit, named conversion.
_CONVERTERS = frozenset({
    "mb", "mib", "bytes_to_mb", "mbps", "gbps", "kbps", "bps_to_mbps",
    "bytes_per_sec", "transfer_seconds", "throughput_bps", "ms",
    "seconds_to_ms", "propagation_delay_s",
})


def _unit_of(name: Optional[str]) -> Optional[str]:
    if not name:
        return None
    lowered = name.lower()
    for suffix in _UNIT_SUFFIXES:
        if lowered.endswith(suffix):
            return suffix[1:]
    return None


def _has_converter_call(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name and (name.startswith("units.")
                         or name.split(".")[-1] in _CONVERTERS):
                return True
    return False


@rule("SL203", "mixed unit conventions across an assignment", scope=MODEL,
      severity=Severity.WARNING)
def mixed_rate_conventions(ctx: FileContext) -> Iterator[Tuple[int, str]]:
    if ctx.defines_units:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            if value is None:
                continue
            target_units = {u for u in (_unit_of(terminal_name(t)) for t in targets) if u}
            if not target_units or _has_converter_call(value):
                continue
            source_units = {u for u in (_unit_of(i) for i in identifiers_in(value)) if u}
            for tu in target_units:
                clash = {
                    su for su in source_units
                    if su != tu and _FAMILIES[su] == _FAMILIES[tu]
                }
                if clash:
                    yield node.lineno, (
                        f"assigns a *_{tu} variable from *_{'/'.join(sorted(clash))} "
                        f"expressions without an explicit repro.units conversion"
                    )
