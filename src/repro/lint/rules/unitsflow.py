"""SL7xx — unit dataflow across the whole-program call graph.

The per-file SL2xx rules catch magic constants and same-statement suffix
clashes; they cannot see a seconds value flow through three calls into a
milliseconds slot.  These rules propagate unit tags — inferred from the
established name-suffix conventions (``_s``, ``_bytes``, ``_bps``,
``_mb``, ...) and from the :mod:`repro.units` converter signatures —
through assignments, returns, and call bindings in the project graph:

* **SL701** — arithmetic (``+``/``-``/comparison) between expressions
  whose resolved units disagree (``elapsed_s + delay_ms``);
* **SL702** — a call binds an argument whose unit contradicts the
  parameter's declared suffix (``retry(timeout_s=backoff_ms)``);
* **SL703** — a suffix-tagged name is assigned from a call whose
  propagated return unit contradicts it (``t_ms = transfer_seconds(...)``).

All three resolve call terms through the graph: a function's return unit
is computed as a fixpoint over its ``return`` expressions, converter
calls, and callees.  Conservative by construction — a term that does not
resolve to a concrete unit never fires — so the family runs at
**warning** severity but is expected to stay at zero findings.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.engine import graph_rule
from repro.lint.findings import Severity

__all__ = []

#: Return units of the ``repro.units`` converters, keyed by their last
#: two dotted components so any project's ``units`` module matches.
CONVERTER_RETURNS: Dict[Tuple[str, str], str] = {
    ("units", "mb"): "bytes",
    ("units", "mib"): "bytes",
    ("units", "bytes_to_mb"): "mb",
    ("units", "kbps"): "bps",
    ("units", "mbps"): "bps",
    ("units", "gbps"): "bps",
    ("units", "bps_to_mbps"): "mbps",
    ("units", "transfer_seconds"): "s",
    ("units", "throughput_bps"): "bps",
    ("units", "ms"): "s",
    ("units", "seconds_to_ms"): "ms",
    ("units", "propagation_delay_s"): "s",
}

_SCRATCH_KEY = "unitsflow"


def _converter_unit(fq: Optional[str]) -> Optional[str]:
    if not fq:
        return None
    parts = fq.split(".")
    if len(parts) < 2:
        return None
    return CONVERTER_RETURNS.get((parts[-2], parts[-1]))


class _UnitFlow:
    """Fixpoint return-unit propagation + the three check passes."""

    def __init__(self, graph):
        self.graph = graph
        self.ret: Dict[str, Optional[str]] = {}
        self._solve()

    # -- term/return resolution ---------------------------------------------

    def _edge_unit(self, edge) -> Optional[str]:
        unit = _converter_unit(edge.target)
        if unit is not None:
            return unit
        if edge.kind == "project":
            return self.ret.get(edge.target)
        return None

    def resolve(self, fq: str, term) -> Optional[str]:
        """Concrete unit of a summary term in function *fq*, if known."""
        if term is None:
            return None
        kind, value = term[0], term[1]
        if kind == "u":
            return value
        edge = self.graph.resolve_raw(fq, value)
        if edge is None:
            return None
        return self._edge_unit(edge)

    def _solve(self) -> None:
        ordered = sorted(self.graph.functions)
        for _ in range(20):
            changed = False
            for fq in ordered:
                fn = self.graph.functions[fq][1]
                units = set()
                for term in fn.returns:
                    unit = self.resolve(fq, term)
                    if unit is not None:
                        units.add(unit)
                new = units.pop() if len(units) == 1 else None
                if self.ret.get(fq, "\0unset") != new:
                    self.ret[fq] = new
                    changed = True
            if not changed:
                break

    # -- describing terms in messages ---------------------------------------

    def describe(self, fq: str, term) -> str:
        unit = self.resolve(fq, term)
        if term[0] == "c":
            return f"{term[1]}(...) returning '{unit}'"
        return f"'{unit}'"

    # -- the three passes ---------------------------------------------------

    def mixed_arithmetic(self) -> List[Tuple[str, int, str]]:
        out = []
        for fq in sorted(self.graph.functions):
            fsum, fn = self.graph.functions[fq]
            for line, op, left, right in fn.binop_checks:
                lu = self.resolve(fq, left)
                ru = self.resolve(fq, right)
                if lu is None or ru is None or lu == ru:
                    continue
                verb = "compares" if op == "cmp" else f"mixes ('{op}')"
                out.append((fsum.rel, line, (
                    f"{verb} {self.describe(fq, left)} with "
                    f"{self.describe(fq, right)} without an explicit "
                    f"repro.units conversion"
                )))
        return out

    def contradicting_bindings(self) -> List[Tuple[str, int, str]]:
        out = []
        for edge in self.graph.edges:
            if edge.kind != "project" or edge.site is None or edge.site.star:
                continue
            callee = self.graph.functions[edge.target][1]
            if not callee.param_units:
                continue
            for key, term in edge.site.args:
                if isinstance(key, int):
                    index = key + edge.offset
                    if index >= len(callee.posparams):
                        continue  # lands in *args
                    pname = callee.posparams[index]
                elif key in callee.posparams or key in callee.kwonly:
                    pname = key
                else:
                    continue  # lands in **kwargs
                declared = callee.param_units.get(pname)
                if declared is None:
                    continue
                actual = self.resolve(edge.caller, term)
                if actual is None or actual == declared:
                    continue
                caller_rel = self.graph.functions[edge.caller][0].rel
                out.append((caller_rel, edge.site.line, (
                    f"argument for parameter '{pname}' of {edge.target} "
                    f"(declares '{declared}') is "
                    f"{self.describe(edge.caller, term)}"
                )))
        return out

    def contradicting_assignments(self) -> List[Tuple[str, int, str]]:
        out = []
        for fq in sorted(self.graph.functions):
            fsum, fn = self.graph.functions[fq]
            for line, target, declared, term in fn.assign_checks:
                actual = self.resolve(fq, term)
                if actual is None or actual == declared:
                    continue
                out.append((fsum.rel, line, (
                    f"'{target}' (declares '{declared}') is assigned from "
                    f"{self.describe(fq, term)}; convert via repro.units"
                )))
        return out


def _flow(graph) -> _UnitFlow:
    cached = graph.scratch.get(_SCRATCH_KEY)
    if cached is None:
        cached = _UnitFlow(graph)
        graph.scratch[_SCRATCH_KEY] = cached
    return cached


@graph_rule("SL701", "mixed-unit arithmetic across the dataflow graph",
            severity=Severity.WARNING)
def mixed_unit_arithmetic(graph) -> Iterator[Tuple[str, int, str]]:
    return iter(_flow(graph).mixed_arithmetic())


@graph_rule("SL702", "argument unit contradicts the parameter's suffix",
            severity=Severity.WARNING)
def contradicting_argument_binding(graph) -> Iterator[Tuple[str, int, str]]:
    return iter(_flow(graph).contradicting_bindings())


@graph_rule("SL703", "assignment target suffix contradicts the call's return unit",
            severity=Severity.WARNING)
def contradicting_assignment(graph) -> Iterator[Tuple[str, int, str]]:
    return iter(_flow(graph).contradicting_assignments())
