"""End-to-end lint runs: path resolution, baseline handling, output.

This is the layer behind ``python -m repro.cli lint`` and the ``lint``
pytest gate.  Exit codes: 0 clean (modulo baseline/suppressions), 1 at
least one error-severity finding, 2 operational failure (bad baseline).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig
from repro.lint.engine import LintEngine
from repro.lint.findings import Severity

__all__ = ["run_lint", "default_scan_root", "discover_baseline"]

BASELINE_FILENAME = "lint_baseline.json"


def default_scan_root() -> Path:
    """The installed ``repro`` package — what ``repro lint`` checks."""
    import repro

    return Path(repro.__file__).resolve().parent


def discover_baseline(roots: Sequence[Path]) -> Optional[Path]:
    """Find ``lint_baseline.json``: cwd first, then above each scan root.

    Scanning the in-repo tree (``src/repro``) finds the checked-in file at
    the repository root two levels up.
    """
    candidates = [Path.cwd() / BASELINE_FILENAME]
    for root in roots:
        for parent in (root, *root.parents[:3]):
            candidates.append(parent / BASELINE_FILENAME)
    for cand in candidates:
        if cand.is_file():
            return cand
    return None


def run_lint(
    paths: Optional[Sequence[Union[str, Path]]] = None,
    fmt: str = "text",
    baseline_path: Optional[Union[str, Path]] = None,
    no_baseline: bool = False,
    update_baseline: bool = False,
    config: Optional[LintConfig] = None,
    out: Callable[[str], None] = print,
) -> int:
    """Lint *paths* (default: the installed package) and report.

    Returns a process exit code.  ``update_baseline`` rewrites the
    baseline to cover exactly the current findings and exits 0.
    """
    roots = [Path(p) for p in paths] if paths else [default_scan_root()]
    missing = [r for r in roots if not r.exists()]
    if missing:
        for r in missing:
            out(f"error: no such file or directory: {r}")
        return 2
    engine = LintEngine(config=config)
    report = engine.lint_paths(roots)

    baseline = Baseline()
    resolved_baseline: Optional[Path] = None
    if not no_baseline:
        resolved_baseline = (Path(baseline_path) if baseline_path
                             else discover_baseline(roots))
        if baseline_path and not resolved_baseline.is_file():
            if not update_baseline:
                out(f"error: baseline file not found: {resolved_baseline}")
                return 2
        elif resolved_baseline is not None:
            try:
                baseline = Baseline.load(resolved_baseline)
            except (ValueError, KeyError, json.JSONDecodeError) as exc:
                out(f"error: cannot read baseline {resolved_baseline}: {exc}")
                return 2

    if update_baseline:
        target = resolved_baseline or (Path.cwd() / BASELINE_FILENAME)
        Baseline.from_findings(report.findings, previous=baseline).save(target)
        out(f"wrote {len(report.findings)} finding(s) to {target}")
        return 0

    kept, baselined, stale = baseline.filter(report.findings)
    errors = [f for f in kept if f.severity is Severity.ERROR]
    warnings = [f for f in kept if f.severity is Severity.WARNING]

    if fmt == "json":
        out(json.dumps({
            "files_scanned": report.files_scanned,
            "findings": [f.to_dict() for f in kept],
            "baselined": len(baselined),
            "suppressed": len(report.suppressed),
            "stale_baseline_entries": [
                {"file": e.file, "rule": e.rule} for e in stale
            ],
        }, indent=2))
    else:
        for f in kept:
            out(f.render())
        for e in stale:
            out(f"note: stale baseline entry {e.file} [{e.rule}] — violation "
                f"fixed; remove it (or run --update-baseline)")
        out(f"{report.files_scanned} file(s) scanned: {len(errors)} error(s), "
            f"{len(warnings)} warning(s), {len(baselined)} baselined, "
            f"{len(report.suppressed)} suppressed")
    return 1 if errors else 0
