"""End-to-end lint runs: path resolution, baseline handling, output.

This is the layer behind ``python -m repro.cli lint`` and the ``lint``
pytest gate.  Exit codes are a stable contract:

* **0** — clean (modulo baseline and inline suppressions);
* **1** — at least one error-severity finding;
* **2** — the analysis itself failed: unparseable file (``SL001``),
  unreadable baseline, bad paths.

``--graph`` upgrades the run to whole-program analysis
(:class:`repro.lint.graph.ProjectAnalyzer`): per-file rules plus the
SL6xx/SL7xx/SL8xx/SL9xx call-graph families, accelerated by the
``.lint_cache/`` incremental store.  ``run_graph_export`` backs ``repro
lint graph --dot``.  ``--fix`` hands the findings to the autofix engine
(:mod:`repro.lint.fix`) instead of gating on them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.baseline import Baseline
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import PARSE_ERROR_RULE, LintEngine, LintReport
from repro.lint.findings import Finding, Severity
from repro.lint.sarif import render_sarif

__all__ = ["run_lint", "run_graph_export", "default_scan_root",
           "discover_baseline"]

BASELINE_FILENAME = "lint_baseline.json"

#: Conventional reference-corpus locations next to a project root (used
#: by SL904 dead-export detection: names mentioned there count as used).
_REFERENCE_NAMES = ("docs", "tests", "examples", "README.md")


def _config_errors(config: Optional[LintConfig],
                   out: Callable[[str], None]) -> bool:
    """Report structural config errors as SL001 findings; True if any."""
    errors = (config or DEFAULT_CONFIG).validate()
    for message in errors:
        finding = Finding("<lint-config>", 1, PARSE_ERROR_RULE,
                          Severity.ERROR, f"invalid lint config: {message}")
        out(finding.render())
    return bool(errors)


def _discover_reference_roots(roots: Sequence[Path]) -> List[Path]:
    """docs/tests/examples/README next to the project that owns *roots*.

    Walks upward from each scan root looking for a project marker
    (``pyproject.toml`` or the checked-in baseline); tiny fixture trees
    find nothing and fall back to in-tree references only.
    """
    found: List[Path] = []
    seen: Set[str] = set()
    for root in roots:
        for parent in (root, *root.parents[:3]):
            if not ((parent / "pyproject.toml").is_file()
                    or (parent / BASELINE_FILENAME).is_file()):
                continue
            for name in _REFERENCE_NAMES:
                cand = parent / name
                if cand.exists() and str(cand) not in seen:
                    seen.add(str(cand))
                    found.append(cand)
            break
    return found


def _git_changed_paths(roots: Sequence[Path],
                       out: Callable[[str], None]) -> Optional[Set[Path]]:
    """Absolute paths changed vs HEAD (tracked) plus untracked files.

    Returns None (analysis failure, exit 2) when no git repository sits
    above the first scan root or git itself fails.
    """
    import subprocess

    start = roots[0].resolve()
    candidates = (start, *start.parents) if start.is_dir() else start.parents
    repo = next((c for c in candidates if (c / ".git").exists()), None)
    if repo is None:
        out(f"error: --changed: no git repository found above {start}")
        return None
    changed: Set[Path] = set()
    for args in (("diff", "--name-only", "HEAD", "--"),
                 ("ls-files", "--others", "--exclude-standard")):
        try:
            proc = subprocess.run(
                ("git", "-C", str(repo)) + args,
                capture_output=True, text=True, check=True)
        except (OSError, subprocess.CalledProcessError) as exc:
            out(f"error: --changed: git {args[0]} failed: {exc}")
            return None
        for line in proc.stdout.splitlines():
            if line.strip():
                changed.add((repo / line.strip()).resolve())
    return changed


def _changed_rels(roots: Sequence[Path], changed: Set[Path]) -> Set[str]:
    """Scan-relative rels of the changed files under the scan roots."""
    from repro.lint.graph.analyzer import _iter_files

    rels: Set[str] = set()
    for root in roots:
        for path, rel, _rootdir in _iter_files(root):
            if Path(path).resolve() in changed:
                rels.add(rel)
    return rels


def default_scan_root() -> Path:
    """The installed ``repro`` package — what ``repro lint`` checks."""
    import repro

    return Path(repro.__file__).resolve().parent


def discover_baseline(roots: Sequence[Path]) -> Optional[Path]:
    """Find ``lint_baseline.json``: cwd first, then above each scan root.

    Scanning the in-repo tree (``src/repro``) finds the checked-in file at
    the repository root two levels up.
    """
    candidates = [Path.cwd() / BASELINE_FILENAME]
    for root in roots:
        for parent in (root, *root.parents[:3]):
            candidates.append(parent / BASELINE_FILENAME)
    for cand in candidates:
        if cand.is_file():
            return cand
    return None


def _analyze(roots: Sequence[Path], config: Optional[LintConfig],
             graph: bool, cache_dir: Optional[Union[str, Path]],
             no_cache: bool) -> Tuple[LintReport, Set[str], object]:
    """Run per-file or whole-program analysis.

    Returns ``(report, active_rule_ids, analysis_result_or_None)``.
    ``active_rule_ids`` drives baseline staleness: only rules that
    actually executed may declare a grandfathered finding fixed.
    """
    if graph:
        from repro.lint.graph import ProjectAnalyzer

        resolved_cache = None if no_cache else (cache_dir or ".lint_cache")
        analyzer = ProjectAnalyzer(
            config=config, cache_dir=resolved_cache,
            reference_roots=_discover_reference_roots(roots))
        result = analyzer.run(roots)
        active = {r.rule_id for r in analyzer.engine.active_rules()}
        active |= {r.rule_id for r in analyzer.graph_rules}
        active.add(PARSE_ERROR_RULE)
        return result.report, active, result
    engine = LintEngine(config=config)
    report = engine.lint_paths(roots)
    active = {r.rule_id for r in engine.active_rules()}
    active.add(PARSE_ERROR_RULE)
    return report, active, None


def run_lint(
    paths: Optional[Sequence[Union[str, Path]]] = None,
    fmt: str = "text",
    baseline_path: Optional[Union[str, Path]] = None,
    no_baseline: bool = False,
    update_baseline: bool = False,
    config: Optional[LintConfig] = None,
    graph: bool = False,
    cache_dir: Optional[Union[str, Path]] = None,
    no_cache: bool = False,
    fix: bool = False,
    fix_mode: str = "rewrite",
    dry_run: bool = False,
    changed: bool = False,
    out: Callable[[str], None] = print,
) -> int:
    """Lint *paths* (default: the installed package) and report.

    Returns a process exit code (see module docstring).
    ``update_baseline`` rewrites the baseline to cover exactly the
    current findings — preserving entries for rule families that did not
    run in this invocation — and exits 0.  ``fix`` hands the kept (and,
    in rewrite mode, baselined) findings to the autofix engine and
    prints unified diffs instead of gating; ``dry_run`` previews without
    writing.  ``changed`` scopes *reporting* to files changed vs git
    HEAD (plus untracked): the analysis itself still covers the full
    tree — whole-program rules need the whole program, and the
    incremental cache makes the unchanged remainder nearly free — but
    findings, the gate, and ``--fix`` apply to changed files only.
    """
    roots = [Path(p) for p in paths] if paths else [default_scan_root()]
    missing = [r for r in roots if not r.exists()]
    if missing:
        for r in missing:
            out(f"error: no such file or directory: {r}")
        return 2
    if _config_errors(config, out):
        return 2
    changed_rels: Optional[Set[str]] = None
    if changed:
        if update_baseline:
            out("error: --changed cannot be combined with --update-baseline "
                "(a partial view must not rewrite the whole baseline)")
            return 2
        changed_paths = _git_changed_paths(roots, out)
        if changed_paths is None:
            return 2
        changed_rels = _changed_rels(roots, changed_paths)
        if not changed_rels:
            out("--changed: no changed files under the scanned roots")
            return 0
    report, active_rules, _result = _analyze(
        roots, config, graph, cache_dir, no_cache)

    baseline = Baseline()
    resolved_baseline: Optional[Path] = None
    if not no_baseline:
        resolved_baseline = (Path(baseline_path) if baseline_path
                             else discover_baseline(roots))
        if baseline_path and not resolved_baseline.is_file():
            if not update_baseline:
                out(f"error: baseline file not found: {resolved_baseline}")
                return 2
        elif resolved_baseline is not None:
            try:
                baseline = Baseline.load(resolved_baseline)
            except (ValueError, KeyError, json.JSONDecodeError) as exc:
                out(f"error: cannot read baseline {resolved_baseline}: {exc}")
                return 2

    if update_baseline:
        target = resolved_baseline or (Path.cwd() / BASELINE_FILENAME)
        fresh = Baseline.from_findings(report.findings, previous=baseline)
        # Keep grandfathered debt for rule families that did not execute
        # here (e.g. SL6xx entries during a per-file-only run).
        inactive = [e for e in baseline.entries if e.rule not in active_rules]
        fresh.entries.extend(inactive)
        fresh.save(target)
        out(f"wrote {len(report.findings)} finding(s) to {target}")
        return 0

    kept, baselined, stale = baseline.filter(report.findings,
                                             active_rules=active_rules)
    if changed_rels is not None:
        kept = [f for f in kept if f.file in changed_rels]
        baselined = [f for f in baselined if f.file in changed_rels]
        stale = []  # staleness is undecidable from a partial view
    errors = [f for f in kept if f.severity is Severity.ERROR]
    warnings = [f for f in kept if f.severity is Severity.WARNING]
    parse_errors = [f for f in kept if f.rule == PARSE_ERROR_RULE]

    if fix:
        return _run_fix(roots, kept, baselined, fix_mode, dry_run,
                        bool(parse_errors), out)

    if fmt == "json":
        out(json.dumps({
            "files_scanned": report.files_scanned,
            "findings": [f.to_dict() for f in kept],
            "baselined": len(baselined),
            "suppressed": len(report.suppressed),
            "stale_baseline_entries": [
                {"file": e.file, "rule": e.rule} for e in stale
            ],
        }, indent=2))
    elif fmt == "sarif":
        out(render_sarif(kept, baselined))
    else:
        for f in kept:
            out(f.render())
        for e in stale:
            out(f"note: stale baseline entry {e.file} [{e.rule}] — violation "
                f"fixed; remove it (or run --update-baseline)")
        out(f"{report.files_scanned} file(s) scanned: {len(errors)} error(s), "
            f"{len(warnings)} warning(s), {len(baselined)} baselined, "
            f"{len(report.suppressed)} suppressed")
    if parse_errors:
        return 2
    return 1 if errors else 0


def _run_fix(roots: Sequence[Path], kept: Sequence[Finding],
             baselined: Sequence[Finding], fix_mode: str, dry_run: bool,
             had_parse_errors: bool, out: Callable[[str], None]) -> int:
    """The ``--fix`` tail of a lint run: plan, preview, maybe write."""
    from repro.lint.fix import MODE_REWRITE, fix_findings
    from repro.lint.graph.analyzer import _iter_files

    if fix_mode == MODE_REWRITE:
        # Rewrite mode also repairs grandfathered debt — that is how the
        # baseline shrinks — while suppress mode only annotates what the
        # gate would currently fail on.
        candidates = list(kept) + list(baselined)
    else:
        candidates = list(kept)
    rel_paths = {}
    for root in roots:
        for path, rel, _rootdir in _iter_files(root):
            rel_paths.setdefault(rel, path)
    result = fix_findings(candidates, rel_paths, mode=fix_mode)
    for ff in result.changed_files():
        out(ff.diff())
    changed = len(result.changed_files())
    summary = (f"{len(result.fixed)} finding(s) fixable in {changed} "
               f"file(s); {len(result.skipped)} skipped")
    if dry_run:
        out(f"--fix --dry-run: {summary}; no files written")
    else:
        written = result.write()
        out(f"--fix: {summary}; {written} file(s) written")
    return 2 if had_parse_errors else 0


def run_graph_export(
    paths: Optional[Sequence[Union[str, Path]]] = None,
    dot: bool = False,
    focus: Optional[str] = None,
    config: Optional[LintConfig] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    no_cache: bool = False,
    out: Callable[[str], None] = print,
) -> int:
    """``repro lint graph``: project call-graph stats, or DOT with ``--dot``."""
    from repro.lint.graph import ProjectAnalyzer, to_dot

    roots = [Path(p) for p in paths] if paths else [default_scan_root()]
    missing = [r for r in roots if not r.exists()]
    if missing:
        for r in missing:
            out(f"error: no such file or directory: {r}")
        return 2
    if _config_errors(config, out):
        return 2
    resolved_cache = None if no_cache else (cache_dir or ".lint_cache")
    analyzer = ProjectAnalyzer(
        config=config, cache_dir=resolved_cache,
        reference_roots=_discover_reference_roots(roots))
    result = analyzer.run(roots)
    if dot:
        out(to_dot(result.graph, focus=focus))
        return 0
    stats = result.graph.stats()
    for key in sorted(stats):
        out(f"{key}: {stats[key]}")
    out(f"cache: {result.cache_stats.describe()}")
    return 0
