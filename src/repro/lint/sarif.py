"""SARIF 2.1.0 output for lint reports (``repro lint --format sarif``).

One run, one tool (``repro-lint``), one result per kept finding.
Baselined findings are emitted with ``suppressions`` so SARIF viewers
show them greyed-out rather than hiding that debt exists.  Output is
deterministic: rules and results are sorted, and the serialization uses
sorted keys — two identical analyses produce byte-identical SARIF.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro._version import __version__
from repro.lint.engine import PARSE_ERROR_RULE, all_graph_rules, all_rules
from repro.lint.findings import Finding, Severity

__all__ = ["SARIF_VERSION", "to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
           "Schemata/sarif-schema-2.1.0.json")

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_catalogue() -> List[dict]:
    """Every shipped rule (per-file + whole-program), sorted by id."""
    catalogue: Dict[str, dict] = {
        PARSE_ERROR_RULE: {
            "id": PARSE_ERROR_RULE,
            "shortDescription": {"text": "file cannot be parsed"},
            "defaultConfiguration": {"level": "error"},
        },
    }
    shipped: List[object] = list(all_rules()) + list(all_graph_rules())
    for r in shipped:
        catalogue[r.rule_id] = {
            "id": r.rule_id,
            "shortDescription": {"text": r.summary},
            "defaultConfiguration": {"level": _LEVELS[r.severity]},
        }
    return [catalogue[rid] for rid in sorted(catalogue)]


def _result(finding: Finding, suppressed_reason: Optional[str] = None) -> dict:
    result = {
        "ruleId": finding.rule,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.file},
                "region": {"startLine": finding.line},
            },
        }],
    }
    if suppressed_reason is not None:
        result["suppressions"] = [{
            "kind": "external",
            "justification": suppressed_reason,
        }]
    return result


def to_sarif(kept: Sequence[Finding],
             baselined: Sequence[Finding] = ()) -> dict:
    """The SARIF log object for one lint run."""
    results = [_result(f) for f in sorted(kept, key=Finding.sort_key)]
    results += [_result(f, suppressed_reason="grandfathered in lint_baseline.json")
                for f in sorted(baselined, key=Finding.sort_key)]
    return {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "version": __version__,
                    "informationUri":
                        "https://example.invalid/repro/docs/invariants",
                    "rules": _rule_catalogue(),
                },
            },
            "results": results,
        }],
    }


def render_sarif(kept: Sequence[Finding],
                 baselined: Sequence[Finding] = ()) -> str:
    """Serialized SARIF, deterministic (sorted keys, fixed indent)."""
    return json.dumps(to_sarif(kept, baselined), indent=2, sort_keys=True)
