"""Measurement methodology: the paper's experimental protocol in code.

"For each of the measurements, we take the mean of the last five runs
among a total of seven runs.  One standard deviation has been shown as
the error-bar in the figures."  (Paper, Sec. II.)
"""

from repro.measure.harness import (
    ExperimentProtocol,
    ExperimentRunner,
    Measurement,
    experiment_seed,
)
from repro.measure.stats import (
    Summary,
    TTestResult,
    error_bars_overlap,
    relative_gain_pct,
    summarize,
    welch_t_test,
)
from repro.measure.results import ResultRow, ResultTable

__all__ = [
    "ExperimentProtocol",
    "ExperimentRunner",
    "Measurement",
    "ResultRow",
    "ResultTable",
    "Summary",
    "TTestResult",
    "error_bars_overlap",
    "experiment_seed",
    "relative_gain_pct",
    "summarize",
    "welch_t_test",
]
