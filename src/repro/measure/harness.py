"""The experiment runner: N sequential runs in one world, warmups dropped.

One *experiment* = one (client, provider, route, file size) cell.  The
runner builds a fresh world for the experiment (seeded from the master
seed and an experiment label), executes the run coroutine seven times
back to back inside that world — so OAuth tokens warm up and background
cross-traffic evolves between runs, exactly like repeated wall-clock runs
— and reports the mean/σ of the last five.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Sequence

from repro.errors import MeasurementError
from repro.measure.stats import Summary, summarize
from repro.sim.rng import derive_seed

__all__ = ["ExperimentProtocol", "Measurement", "ExperimentRunner", "experiment_seed"]


def experiment_seed(master_seed: int, label: str) -> int:
    """World seed for one experiment cell, derived from its label.

    This is the cell <-> harness bit-identity contract: any runner that
    builds a world from ``experiment_seed(master_seed, label)`` and
    executes the same run coroutine reproduces an
    :class:`ExperimentRunner` measurement exactly.  The campaign engine
    (:mod:`repro.campaign`) relies on this to make a pool-executed cell
    indistinguishable from a direct harness run.
    """
    return derive_seed(master_seed, f"experiment:{label}")


@dataclass(frozen=True)
class ExperimentProtocol:
    """The paper's protocol: 7 runs, keep the last 5, pause between runs."""

    total_runs: int = 7
    discard_runs: int = 2
    inter_run_gap_s: float = 10.0

    def __post_init__(self) -> None:
        if self.total_runs < 1:
            raise MeasurementError("need at least one run")
        if not (0 <= self.discard_runs < self.total_runs):
            raise MeasurementError("discard count must leave at least one kept run")
        if self.inter_run_gap_s < 0:
            raise MeasurementError("gap must be non-negative")

    @property
    def kept_runs(self) -> int:
        return self.total_runs - self.discard_runs


@dataclass(frozen=True)
class Measurement:
    """All runs of one experiment plus the kept-run summary."""

    label: str
    all_durations_s: tuple
    kept: Summary
    results: tuple = ()  # per-run payload objects (e.g. PlanResult)

    @property
    def mean_s(self) -> float:
        return self.kept.mean

    @property
    def std_s(self) -> float:
        return self.kept.std

    def __str__(self) -> str:
        return f"{self.label}: {self.kept}"


#: Builds a world for an experiment given its derived seed.
WorldFactory = Callable[[int], Any]

#: Given (world, run_index), returns a kernel generator whose return value
#: is either a float duration or an object with a ``total_s`` attribute.
RunFactory = Callable[[Any, int], Generator]


class ExperimentRunner:
    """Runs experiments per the paper's protocol."""

    def __init__(
        self,
        world_factory: WorldFactory,
        protocol: ExperimentProtocol = ExperimentProtocol(),
        master_seed: int = 0,
    ):
        self.world_factory = world_factory
        self.protocol = protocol
        self.master_seed = master_seed

    def measure(
        self,
        label: str,
        run_factory: RunFactory,
        horizon_s: float = 1e7,
    ) -> Measurement:
        """Execute one experiment cell; returns its :class:`Measurement`."""
        seed = experiment_seed(self.master_seed, label)
        world = self.world_factory(seed)
        proto = self.protocol
        durations: List[float] = []
        payloads: List[Any] = []

        def driver():
            for run_index in range(proto.total_runs):
                start = world.sim.now
                outcome = yield from run_factory(world, run_index)
                duration = outcome if isinstance(outcome, (int, float)) else outcome.total_s
                if duration is None or duration < 0:
                    raise MeasurementError(
                        f"run {run_index} of {label!r} returned bad duration {duration!r}"
                    )
                durations.append(float(duration))
                payloads.append(outcome)
                yield proto.inter_run_gap_s

        proc = world.sim.process(driver(), name=f"experiment:{label}")
        world.sim.run_until_triggered(proc.done, horizon=horizon_s)
        if not proc.finished:
            raise MeasurementError(
                f"experiment {label!r} did not finish within {horizon_s}s of simulated time "
                f"({len(durations)}/{proto.total_runs} runs done)"
            )
        if proc.error is not None:
            raise proc.error
        kept = durations[proto.discard_runs:]
        return Measurement(
            label=label,
            all_durations_s=tuple(durations),
            kept=summarize(kept),
            results=tuple(payloads[proto.discard_runs:]),
        )
