"""Result tables in the paper's format.

:class:`ResultTable` renders rows like the paper's Table II/III —
``File size | Direct (s) | via X (s) [%] | via Y (s) [%]`` — with the
relative gain of each detour against the direct baseline in brackets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import MeasurementError
from repro.measure.stats import Summary, relative_gain_pct

__all__ = ["ResultRow", "ResultTable"]


@dataclass(frozen=True)
class ResultRow:
    """One file size's measurements across routes."""

    size_mb: float
    by_route: Dict[str, Summary]

    def baseline(self, route: str = "direct") -> Summary:
        try:
            return self.by_route[route]
        except KeyError:
            raise MeasurementError(f"row {self.size_mb} MB has no {route!r} entry") from None

    def gain_pct(self, route: str, baseline: str = "direct") -> float:
        return relative_gain_pct(self.baseline(baseline).mean, self.by_route[route].mean)

    def fastest_route(self) -> str:
        return min(self.by_route, key=lambda r: self.by_route[r].mean)

    def ranking(self) -> List[str]:
        """Routes fastest-first."""
        return sorted(self.by_route, key=lambda r: self.by_route[r].mean)


class ResultTable:
    """A (file size x route) table of measurements for one client/provider."""

    def __init__(self, title: str, baseline_route: str = "direct"):
        self.title = title
        self.baseline_route = baseline_route
        self.rows: List[ResultRow] = []

    def add_row(self, size_mb: float, by_route: Dict[str, Summary]) -> ResultRow:
        if self.rows and set(by_route) != set(self.rows[0].by_route):
            raise MeasurementError(
                f"route set mismatch: {sorted(by_route)} vs {sorted(self.rows[0].by_route)}"
            )
        row = ResultRow(size_mb, dict(by_route))
        self.rows.append(row)
        return row

    @property
    def routes(self) -> List[str]:
        if not self.rows:
            return []
        routes = list(self.rows[0].by_route)
        routes.sort(key=lambda r: (r != self.baseline_route, r))
        return routes

    def overall_fastest(self) -> str:
        """Route with the lowest mean across all sizes (total time)."""
        if not self.rows:
            raise MeasurementError("empty table")
        totals = {
            route: sum(row.by_route[route].mean for row in self.rows)
            for route in self.rows[0].by_route
        }
        return min(totals, key=totals.get)

    def fastest_counts(self) -> Dict[str, int]:
        """How many sizes each route wins (for Table I style summaries)."""
        counts: Dict[str, int] = {route: 0 for route in self.routes}
        for row in self.rows:
            counts[row.fastest_route()] += 1
        return counts

    def render(self, show_std: bool = False) -> str:
        """Paper-style text table."""
        if not self.rows:
            return f"{self.title}\n(empty)"
        routes = self.routes
        headers = ["File size (MB)"]
        for route in routes:
            if route == self.baseline_route:
                headers.append(f"{route} (s)")
            else:
                headers.append(f"{route} (s) [%]")
        body: List[List[str]] = []
        for row in sorted(self.rows, key=lambda r: r.size_mb):
            cells = [f"{row.size_mb:g}"]
            for route in routes:
                s = row.by_route[route]
                val = f"{s.mean:.2f}"
                if show_std:
                    val += f" ±{s.std:.2f}"
                if route != self.baseline_route:
                    gain = row.gain_pct(route, self.baseline_route)
                    val += f" [{gain:+.2f}%]"
                cells.append(val)
            body.append(cells)
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body)) for i in range(len(headers))
        ]
        lines = [self.title]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for cells in body:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
