"""Summary statistics in the paper's style.

Includes the ±1σ error-bar overlap analysis of Table IV's discussion:
the paper argues a detour is not trustworthy when the direct route's
``mean + σ`` exceeds the detour's ``mean − σ`` (the intervals overlap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import MeasurementError

__all__ = ["Summary", "TTestResult", "summarize", "relative_gain_pct",
           "error_bars_overlap", "welch_t_test"]


@dataclass(frozen=True)
class Summary:
    """Mean / sample standard deviation over a set of runs."""

    mean: float
    std: float
    n: int
    minimum: float
    maximum: float

    @property
    def low(self) -> float:
        """Lower end of the ±1σ error bar (paper Table IV arithmetic)."""
        return self.mean - self.std

    @property
    def high(self) -> float:
        """Upper end of the ±1σ error bar."""
        return self.mean + self.std

    @property
    def cv(self) -> float:
        """Coefficient of variation (σ/μ)."""
        return self.std / self.mean if self.mean else float("nan")

    def __str__(self) -> str:
        return f"{self.mean:.2f}s ± {self.std:.2f}"


def summarize(samples: Sequence[float]) -> Summary:
    """Mean and sample (ddof=1) standard deviation of *samples*."""
    if len(samples) == 0:
        raise MeasurementError("cannot summarize zero samples")
    arr = np.asarray(samples, dtype=float)
    std = float(arr.std(ddof=1)) if len(arr) > 1 else 0.0
    return Summary(
        mean=float(arr.mean()),
        std=std,
        n=len(arr),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def relative_gain_pct(baseline: float, other: float) -> float:
    """Signed percent change vs baseline, as in the paper's Tables II/III.

    Negative = faster than baseline (a gain): UBC->GDrive via UAlberta is
    ``-31.52%`` at 10 MB.
    """
    if baseline <= 0:
        raise MeasurementError(f"baseline must be positive, got {baseline}")
    return (other - baseline) / baseline * 100.0


def error_bars_overlap(a: Summary, b: Summary) -> bool:
    """Do the ±1σ intervals of two measurements overlap?

    The paper's Table IV example: Dropbox direct 177.89 ± 36.03 vs via
    UAlberta 237.78 ± 56.10 — 177.89+36.03 = 213.92 > 237.78−56.10 =
    181.68, so they overlap and the detour is not trustworthy.
    """
    return a.high >= b.low and b.high >= a.low


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> "TTestResult":
    """Welch's unequal-variance t-test on two run sets.

    A sharper tool than the paper's ±1σ-overlap eyeballing for deciding
    whether a detour's advantage is real.  Returns the t statistic,
    Welch-Satterthwaite degrees of freedom, and the two-sided p-value.
    """
    from scipy import stats as sps

    if len(a) < 2 or len(b) < 2:
        raise MeasurementError("Welch's t-test needs >= 2 samples per group")
    t, p = sps.ttest_ind(list(a), list(b), equal_var=False)
    xa, xb = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    va, vb = xa.var(ddof=1) / len(xa), xb.var(ddof=1) / len(xb)
    if va + vb == 0:
        dof = float(len(xa) + len(xb) - 2)
    else:
        dof = (va + vb) ** 2 / (
            va**2 / (len(xa) - 1) + vb**2 / (len(xb) - 1)
        )
    return TTestResult(t=float(t), dof=float(dof), p_value=float(p))


@dataclass(frozen=True)
class TTestResult:
    """Welch's t-test outcome."""

    t: float
    dof: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha

    def __str__(self) -> str:
        return f"t={self.t:.2f}, dof={self.dof:.1f}, p={self.p_value:.4f}"
