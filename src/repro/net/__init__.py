"""WAN substrate: topology, policy routing, flows, TCP model, traceroute.

This package implements the network the case study runs over:

* :mod:`repro.net.topology` — hosts/routers/middleboxes and links,
* :mod:`repro.net.asn` / :mod:`repro.net.bgp` — AS relationships and
  valley-free (Gao-Rexford) route computation with per-neighbor export
  filters (how research networks scope commercial peering routes),
* :mod:`repro.net.policy` — source-prefix policy-based routing (the
  mechanism behind the paper's pacificwave artifact),
* :mod:`repro.net.routing` — hop-by-hop end-to-end path resolution,
* :mod:`repro.net.flows` + :mod:`repro.net.engine` — flow-level
  discrete-event transfer simulation with max-min fair sharing,
* :mod:`repro.net.tcp` — TCP effective-throughput model (handshake,
  slow-start ramp, Mathis loss ceiling),
* :mod:`repro.net.policer` — token-bucket policers,
* :mod:`repro.net.crosstraffic` — Poisson background traffic,
* :mod:`repro.net.traceroute` — simulated traceroute (paper Figs. 5/6).
"""

from repro.net.address import PrefixAllocator, parse_address, parse_prefix
from repro.net.asn import ASGraph, AutonomousSystem, Relationship
from repro.net.bgp import BgpRouteComputer, BgpRoute, RouteType
from repro.net.dns import DnsResolver
from repro.net.engine import NetworkEngine, Transfer
from repro.net.flows import FlowSpec, max_min_allocation
from repro.net.packetsim import AimdFlow, BottleneckSim, simulate_shares
from repro.net.policer import TokenBucket
from repro.net.policy import PbrRule, PolicyTable
from repro.net.routeviews import (
    PolicyAnomaly,
    RibEntry,
    RouteCollector,
    detect_policy_anomalies,
)
from repro.net.routing import ResolvedPath, Router
from repro.net.tcp import TcpModel, TcpPathParams
from repro.net.topology import Link, LinkDirection, Node, NodeKind, Topology
from repro.net.traceroute import TracerouteHop, traceroute, format_traceroute

__all__ = [
    "ASGraph",
    "AimdFlow",
    "AutonomousSystem",
    "BottleneckSim",
    "simulate_shares",
    "BgpRoute",
    "BgpRouteComputer",
    "DnsResolver",
    "FlowSpec",
    "Link",
    "LinkDirection",
    "NetworkEngine",
    "Node",
    "NodeKind",
    "PbrRule",
    "PolicyAnomaly",
    "PolicyTable",
    "PrefixAllocator",
    "Relationship",
    "ResolvedPath",
    "RibEntry",
    "RouteCollector",
    "RouteType",
    "Router",
    "TcpModel",
    "TcpPathParams",
    "TokenBucket",
    "Topology",
    "Transfer",
    "TracerouteHop",
    "detect_policy_anomalies",
    "format_traceroute",
    "max_min_allocation",
    "parse_address",
    "parse_prefix",
    "traceroute",
]
