"""IPv4 address handling and prefix allocation.

Thin wrappers over :mod:`ipaddress` plus an allocator that hands out
subnets and host addresses from an organization's supernet — used by the
testbed builder to give every simulated node a stable, realistic address
(so traceroute output looks like the paper's Figs. 5/6).
"""

from __future__ import annotations

import ipaddress
from typing import Iterator

from repro.errors import AddressError

__all__ = ["parse_address", "parse_prefix", "PrefixAllocator"]


def parse_address(text: str) -> ipaddress.IPv4Address:
    """Parse an IPv4 address, raising :class:`AddressError` on junk."""
    try:
        return ipaddress.IPv4Address(text)
    except ValueError as exc:
        raise AddressError(f"bad IPv4 address {text!r}: {exc}") from exc


def parse_prefix(text: str) -> ipaddress.IPv4Network:
    """Parse an IPv4 prefix in CIDR form, raising :class:`AddressError`."""
    try:
        return ipaddress.IPv4Network(text)
    except ValueError as exc:
        raise AddressError(f"bad IPv4 prefix {text!r}: {exc}") from exc


class PrefixAllocator:
    """Allocates subnets and host addresses out of a supernet.

    >>> alloc = PrefixAllocator("142.103.0.0/16")
    >>> str(alloc.subnet(24))
    '142.103.0.0/24'
    >>> alloc.host()
    '142.103.1.1'
    """

    def __init__(self, supernet: str):
        self.supernet = parse_prefix(supernet)
        self._subnet_iters: dict[int, Iterator[ipaddress.IPv4Network]] = {}
        self._host_iter: Iterator[ipaddress.IPv4Address] | None = None
        self._handed_out: set[ipaddress.IPv4Network] = set()

    def subnet(self, prefixlen: int) -> ipaddress.IPv4Network:
        """Allocate the next unused subnet of the given prefix length."""
        if prefixlen < self.supernet.prefixlen or prefixlen > 30:
            raise AddressError(
                f"cannot carve /{prefixlen} out of {self.supernet} (must be in "
                f"[{self.supernet.prefixlen}, 30])"
            )
        it = self._subnet_iters.get(prefixlen)
        if it is None:
            it = self.supernet.subnets(new_prefix=prefixlen)
            self._subnet_iters[prefixlen] = it
        for net in it:
            if not any(net.overlaps(used) for used in self._handed_out):
                self._handed_out.add(net)
                return net
        raise AddressError(f"supernet {self.supernet} exhausted for /{prefixlen}")

    def host(self) -> str:
        """Allocate the next unused host address (from its own /24s)."""
        if self._host_iter is None:
            self._host_iter = self._hosts()
        try:
            return str(next(self._host_iter))
        except StopIteration:
            raise AddressError(f"supernet {self.supernet} exhausted of hosts") from None

    def _hosts(self) -> Iterator[ipaddress.IPv4Address]:
        while True:
            net = self.subnet(min(24, max(self.supernet.prefixlen, 24)))
            yield from net.hosts()
