"""Autonomous systems and Gao-Rexford business relationships.

The AS graph captures who is whose customer/provider/peer, plus
*per-neighbor export filters*.  Export filters are how we model the
research-network reality behind the case study: Internet2/CANARIE carry
commercial-peering routes (Google, Dropbox, Microsoft) only for members
who subscribe to the commercial peering service — which is why UMich
reaches Google Drive over a fat research peering while Purdue's traffic
falls back to congested commodity transit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import TopologyError

__all__ = ["Relationship", "AutonomousSystem", "ASGraph"]


class Relationship(Enum):
    """Relationship of a neighbor, from the local AS's point of view."""

    CUSTOMER = "customer"  # neighbor pays us
    PROVIDER = "provider"  # we pay neighbor
    PEER = "peer"          # settlement-free


@dataclass
class AutonomousSystem:
    """One AS: a routing-policy domain."""

    number: int
    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if self.number <= 0:
            raise TopologyError(f"AS number must be positive, got {self.number}")

    def __str__(self) -> str:
        return f"AS{self.number}({self.name})"


#: An export filter decides whether `announcer` may advertise routes for
#: destination AS `dest` to `neighbor`.  Returning True permits the export.
ExportFilter = Callable[[int], bool]


class ASGraph:
    """AS-level graph with business relationships and export filters."""

    def __init__(self) -> None:
        self.ases: Dict[int, AutonomousSystem] = {}
        self._by_name: Dict[str, AutonomousSystem] = {}
        # rel[(a, b)] = relationship of b from a's point of view
        self._rel: Dict[Tuple[int, int], Relationship] = {}
        self._neighbors: Dict[int, Set[int]] = {}
        # export filter: (announcer, neighbor) -> predicate(dest_asn)
        self._export: Dict[Tuple[int, int], ExportFilter] = {}

    # -- construction -------------------------------------------------------

    def add_as(self, asys: AutonomousSystem) -> AutonomousSystem:
        if asys.number in self.ases:
            raise TopologyError(f"duplicate AS number {asys.number}")
        if asys.name in self._by_name:
            raise TopologyError(f"duplicate AS name {asys.name!r}")
        self.ases[asys.number] = asys
        self._by_name[asys.name] = asys
        self._neighbors[asys.number] = set()
        return asys

    def _check(self, asn: int) -> None:
        if asn not in self.ases:
            raise TopologyError(f"unknown AS {asn}")

    def _connect(self, a: int, b: int, rel_of_b_from_a: Relationship) -> None:
        self._check(a)
        self._check(b)
        if a == b:
            raise TopologyError(f"AS{a} cannot neighbor itself")
        if (a, b) in self._rel:
            raise TopologyError(f"relationship AS{a}-AS{b} already defined")
        inverse = {
            Relationship.CUSTOMER: Relationship.PROVIDER,
            Relationship.PROVIDER: Relationship.CUSTOMER,
            Relationship.PEER: Relationship.PEER,
        }[rel_of_b_from_a]
        self._rel[(a, b)] = rel_of_b_from_a
        self._rel[(b, a)] = inverse
        self._neighbors[a].add(b)
        self._neighbors[b].add(a)

    def add_customer(self, provider: int, customer: int) -> None:
        """Declare *customer* buys transit from *provider*."""
        self._connect(provider, customer, Relationship.CUSTOMER)

    def add_peering(self, a: int, b: int) -> None:
        """Declare a settlement-free peering between *a* and *b*."""
        self._connect(a, b, Relationship.PEER)

    def set_export_filter(self, announcer: int, neighbor: int, allow: ExportFilter) -> None:
        """Restrict which destinations *announcer* advertises to *neighbor*.

        Applied on top of the Gao-Rexford defaults; it can only *remove*
        announcements, never add ones the defaults forbid.
        """
        self._check(announcer)
        self._check(neighbor)
        if neighbor not in self._neighbors[announcer]:
            raise TopologyError(f"AS{announcer} and AS{neighbor} are not neighbors")
        self._export[(announcer, neighbor)] = allow

    # -- queries ----------------------------------------------------------

    def by_name(self, name: str) -> AutonomousSystem:
        try:
            return self._by_name[name]
        except KeyError:
            raise TopologyError(f"unknown AS name {name!r}") from None

    def relationship(self, a: int, b: int) -> Relationship:
        """Relationship of *b* as seen from *a*."""
        try:
            return self._rel[(a, b)]
        except KeyError:
            raise TopologyError(f"AS{a} and AS{b} are not neighbors") from None

    def neighbors(self, asn: int) -> List[int]:
        self._check(asn)
        return sorted(self._neighbors[asn])

    def customers(self, asn: int) -> List[int]:
        return [n for n in self.neighbors(asn) if self._rel[(asn, n)] is Relationship.CUSTOMER]

    def providers(self, asn: int) -> List[int]:
        return [n for n in self.neighbors(asn) if self._rel[(asn, n)] is Relationship.PROVIDER]

    def peers(self, asn: int) -> List[int]:
        return [n for n in self.neighbors(asn) if self._rel[(asn, n)] is Relationship.PEER]

    def may_export(self, announcer: int, neighbor: int, dest: int) -> bool:
        """Does *announcer*'s export filter allow advertising *dest*?"""
        allow = self._export.get((announcer, neighbor))
        return True if allow is None else bool(allow(dest))

    def customer_cone(self, asn: int) -> Set[int]:
        """All ASes reachable by repeatedly descending customer edges."""
        self._check(asn)
        cone: Set[int] = set()
        stack = [asn]
        while stack:
            cur = stack.pop()
            if cur in cone:
                continue
            cone.add(cur)
            stack.extend(self.customers(cur))
        return cone

    def validate(self) -> None:
        """Reject provider-customer cycles (economic nonsense)."""
        state: Dict[int, int] = {}  # 0=visiting, 1=done

        def visit(asn: int, stack: List[int]) -> None:
            state[asn] = 0
            for cust in self.customers(asn):
                if state.get(cust) == 0:
                    cycle = stack[stack.index(cust):] if cust in stack else stack
                    raise TopologyError(f"provider-customer cycle involving AS{cust}: {cycle + [cust]}")
                if cust not in state:
                    visit(cust, stack + [cust])
            state[asn] = 1

        for asn in self.ases:
            if asn not in state:
                visit(asn, [asn])
