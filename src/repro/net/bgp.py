"""Valley-free (Gao-Rexford) BGP route computation over an :class:`ASGraph`.

Implements the standard three-phase propagation model:

1. **customer routes** climb provider edges (everyone announces customer
   routes upward),
2. **peer routes** cross exactly one peering edge (ASes announce only
   customer routes to peers),
3. **provider routes** descend customer edges (ASes announce their best
   route to customers).

Selection at each AS prefers customer > peer > provider routes, then
shortest AS-path, then lowest next-hop ASN — with per-neighbor export
filters applied at every announcement (see :class:`repro.net.asn.ASGraph`).

The computed tables serve two consumers: hop-by-hop forwarding in
:mod:`repro.net.routing`, and the RouteViews-style route monitor the paper
suggests in its discussion section.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List, Optional, Tuple

from repro.errors import RoutingError
from repro.net.asn import ASGraph

__all__ = ["RouteType", "BgpRoute", "BgpRouteComputer"]


class RouteType(IntEnum):
    """How a route was learned; lower values are preferred."""

    ORIGIN = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3


@dataclass(frozen=True)
class BgpRoute:
    """Selected route at one AS toward a destination AS."""

    dest: int
    path: Tuple[int, ...]  # AS path, starting at the route's owner, ending at dest
    route_type: RouteType

    @property
    def length(self) -> int:
        """AS-path hop count (0 at the origin)."""
        return len(self.path) - 1

    @property
    def next_as(self) -> int:
        """Next AS along the path (the owner itself at the origin)."""
        return self.path[1] if len(self.path) > 1 else self.path[0]

    def __str__(self) -> str:
        return f"{'-'.join(map(str, self.path))} [{self.route_type.name.lower()}]"


def _better(a: Optional[BgpRoute], b: BgpRoute) -> bool:
    """True if *b* beats *a* under (type, length, next-hop ASN)."""
    if a is None:
        return True
    ka = (a.route_type, a.length, a.next_as)
    kb = (b.route_type, b.length, b.next_as)
    return kb < ka


class BgpRouteComputer:
    """Computes and caches per-destination routing tables.

    ``edge_usable(a, b)`` optionally gates each AS adjacency on physical
    reality — a BGP session needs a live link, so adjacencies whose
    inter-AS links are all down disappear from route computation (the
    session-reset behaviour real failures trigger).  Callers that change
    link state must :meth:`invalidate`.
    """

    def __init__(self, graph: ASGraph, edge_usable=None):
        self.graph = graph
        self.edge_usable = edge_usable
        self._cache: Dict[int, Dict[int, BgpRoute]] = {}

    def _usable(self, a: int, b: int) -> bool:
        return self.edge_usable is None or bool(self.edge_usable(a, b))

    def table_for(self, dest: int) -> Dict[int, BgpRoute]:
        """Routing table ``{asn: selected route to dest}``; cached."""
        table = self._cache.get(dest)
        if table is None:
            table = self._compute(dest)
            self._cache[dest] = table
        return table

    def best_route(self, src: int, dest: int) -> BgpRoute:
        """Selected route at *src* toward *dest*; raises if unreachable."""
        route = self.table_for(dest).get(src)
        if route is None:
            raise RoutingError(f"AS{src} has no BGP route to AS{dest}")
        return route

    def invalidate(self) -> None:
        """Drop cached tables (after topology/policy edits)."""
        self._cache.clear()

    # -- computation ----------------------------------------------------------

    def _compute(self, dest: int) -> Dict[int, BgpRoute]:
        g = self.graph
        if dest not in g.ases:
            raise RoutingError(f"unknown destination AS {dest}")

        origin = BgpRoute(dest, (dest,), RouteType.ORIGIN)

        # Phase 1: customer routes climb provider edges.
        customer: Dict[int, BgpRoute] = {dest: origin}
        heap: List[Tuple[int, int, Tuple[int, ...]]] = [(0, dest, (dest,))]
        while heap:
            length, x, path = heapq.heappop(heap)
            if customer[x].path != path:
                continue  # stale heap entry
            for p in g.providers(x):
                if p in path:
                    continue
                if not g.may_export(x, p, dest) or not self._usable(x, p):
                    continue
                cand = BgpRoute(dest, (p,) + path, RouteType.CUSTOMER)
                if _better(customer.get(p), cand):
                    customer[p] = cand
                    heapq.heappush(heap, (cand.length, p, cand.path))

        # Phase 2: peer routes — one peering edge on top of a customer route.
        peer: Dict[int, BgpRoute] = {}
        for y, yroute in customer.items():
            for x in g.peers(y):
                if x in yroute.path:
                    continue
                if not g.may_export(y, x, dest) or not self._usable(y, x):
                    continue
                cand = BgpRoute(dest, (x,) + yroute.path, RouteType.PEER)
                if _better(peer.get(x), cand):
                    peer[x] = cand

        # best "up" route per AS (customer beats peer by type rank)
        best: Dict[int, BgpRoute] = {}
        for x in sorted(set(customer) | set(peer)):
            for cand in (customer.get(x), peer.get(x)):
                if cand is not None and _better(best.get(x), cand):
                    best[x] = cand

        # Phase 3: provider routes descend customer edges from every AS's
        # best exportable route.  An AS always exports its *selected* route
        # to customers (subject to filters); selection prefers up-routes, so
        # seeds are the up-route holders.
        heap2: List[Tuple[int, int, int]] = []  # (exportable length, next asn tiebreak, asn)
        for x, route in best.items():
            heapq.heappush(heap2, (route.length, route.next_as, x))
        provider: Dict[int, BgpRoute] = {}
        while heap2:
            length, _tie, x = heapq.heappop(heap2)
            xroute = best.get(x)
            if xroute is None or xroute.length != length:
                continue  # stale
            for z in g.customers(x):
                if z in xroute.path:
                    continue
                if not g.may_export(x, z, dest) or not self._usable(x, z):
                    continue
                cand = BgpRoute(dest, (z,) + xroute.path, RouteType.PROVIDER)
                if _better(best.get(z), cand):
                    best[z] = cand
                    provider[z] = cand
                    heapq.heappush(heap2, (cand.length, cand.next_as, z))

        return best

    # -- inspection (RouteViews-style) ---------------------------------------

    def dump(self, dest: int) -> str:
        """Human-readable routing table toward *dest* (for diagnostics)."""
        table = self.table_for(dest)
        lines = [f"routes toward AS{dest} ({self.graph.ases[dest].name}):"]
        for asn in sorted(table):
            lines.append(f"  AS{asn:<6} {table[asn]}")
        return "\n".join(lines)
