"""Background cross-traffic generators.

The run-to-run variance the paper reports (Table IV: e.g. Purdue→OneDrive
100 MB = 387.66 s ± 117.81 s) comes from sharing congested links with
other people's traffic.  We reproduce it organically: designated link
directions carry stochastic background flows, and the measured transfer's
max-min share fluctuates as those flows come and go.

Two source models:

* :class:`PoissonSource` — Poisson arrivals of lognormally-sized flows
  (classic mice/elephants mix).  Gives moderate, stationary variance.
* :class:`OnOffSource` — a long-lived elephant alternating exponential
  on/off periods.  Gives the bursty, heavy variance seen on badly
  congested peerings.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf, log
from typing import List, Optional, Sequence

import numpy as np

from repro import units
from repro.net.engine import NetworkEngine
from repro.net.topology import LinkDirection
from repro.sim.kernel import Process, Simulator

__all__ = ["PoissonSource", "OnOffSource", "CrossTrafficConfig", "start_sources"]


class PoissonSource:
    """Poisson arrivals of finite background flows on a set of resources.

    Parameters
    ----------
    mean_utilization:
        Target long-run fraction of ``reference_capacity_bps`` occupied by
        this source (offered load).
    mean_flow_bytes, sigma_log:
        Lognormal flow-size distribution parameters (mean in bytes and
        log-space sigma).
    per_flow_ceiling_bps:
        Each background flow's own TCP ceiling.
    """

    def __init__(
        self,
        resources: Sequence[LinkDirection],
        reference_capacity_bps: float,
        mean_utilization: float,
        rng: np.random.Generator,
        mean_flow_bytes: float = 4.0 * units.MB,
        sigma_log: float = 1.2,
        per_flow_ceiling_bps: float = inf,
        label: str = "bg",
    ):
        if not (0.0 <= mean_utilization < 1.0):
            raise ValueError(f"utilization must be in [0,1), got {mean_utilization}")
        if mean_flow_bytes <= 0:
            raise ValueError("mean flow size must be positive")
        self.resources = tuple(resources)
        self.mean_utilization = mean_utilization
        self.rng = rng
        self.mean_flow_bytes = mean_flow_bytes
        self.sigma_log = sigma_log
        self.per_flow_ceiling_bps = per_flow_ceiling_bps
        self.label = label
        offered_bps = mean_utilization * reference_capacity_bps
        self.arrival_rate_hz = offered_bps / (mean_flow_bytes * units.BITS_PER_BYTE)
        # lognormal with requested mean: mu = ln(mean) - sigma^2/2
        self._mu = log(mean_flow_bytes) - sigma_log**2 / 2.0

    def _next_interarrival(self) -> float:
        return float(self.rng.exponential(1.0 / self.arrival_rate_hz))

    def _next_size(self) -> float:
        return float(self.rng.lognormal(self._mu, self.sigma_log))

    def run(self, sim: Simulator, engine: NetworkEngine) -> Process:
        """Spawn the generator process (runs until the simulation ends)."""

        def _gen():
            if self.arrival_rate_hz <= 0:
                return
            # Random phase so sources don't synchronize at t=0.
            yield self._next_interarrival() * float(self.rng.random())
            i = 0
            while True:
                engine.start_transfer(
                    self.resources,
                    max(1.0, self._next_size()),
                    ceiling_bps=self.per_flow_ceiling_bps,
                    label=f"{self.label}.p{i}",
                )
                i += 1
                yield self._next_interarrival()

        return sim.process(_gen(), name=f"poisson:{self.label}")


class OnOffSource:
    """A long-lived elephant flow alternating exponential ON/OFF periods.

    While ON it occupies the resources at up to ``rate_bps`` (as a
    ceiling-limited flow), starving fair shares of concurrent transfers;
    while OFF it vanishes.  Duty cycle = on/(on+off).
    """

    def __init__(
        self,
        resources: Sequence[LinkDirection],
        rate_bps: float,
        mean_on_s: float,
        mean_off_s: float,
        rng: np.random.Generator,
        label: str = "bg-elephant",
        parallel_flows: int = 1,
    ):
        if rate_bps <= 0 or mean_on_s <= 0 or mean_off_s <= 0:
            raise ValueError("rate and on/off durations must be positive")
        if parallel_flows < 1:
            raise ValueError("parallel_flows must be >= 1")
        self.resources = tuple(resources)
        self.rate_bps = rate_bps
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self.rng = rng
        self.label = label
        #: number of concurrent TCP flows the elephant runs while ON — the
        #: fair share of a competing transfer is capacity/(N+1), so herds
        #: model the aggressive multi-connection bulk movers seen on
        #: congested interconnects.
        self.parallel_flows = parallel_flows

    @property
    def duty_cycle(self) -> float:
        return self.mean_on_s / (self.mean_on_s + self.mean_off_s)

    def run(self, sim: Simulator, engine: NetworkEngine) -> Process:
        def _gen():
            # Random initial phase: start OFF part of the time.
            if self.rng.random() < self.duty_cycle:
                pass  # start ON immediately
            else:
                yield float(self.rng.exponential(self.mean_off_s))
            i = 0
            while True:
                on_for = float(self.rng.exponential(self.mean_on_s))
                burst_bytes = units.bytes_per_sec(self.rate_bps) * on_for
                flows = [
                    engine.start_transfer(
                        self.resources,
                        max(1.0, burst_bytes),
                        ceiling_bps=self.rate_bps,
                        label=f"{self.label}.on{i}.f{j}",
                    )
                    for j in range(self.parallel_flows)
                ]
                i += 1
                # Wait the nominal ON period, then cancel whatever is left
                # (the elephant stops transmitting regardless of progress).
                yield on_for
                for t in flows:
                    engine.cancel(t)
                yield float(self.rng.exponential(self.mean_off_s))

        return sim.process(_gen(), name=f"onoff:{self.label}")


@dataclass(frozen=True)
class CrossTrafficConfig:
    """Declarative cross-traffic attachment used by the testbed builder.

    ``link_name`` + ``from_node`` select the congested direction.
    ``utilization`` drives a :class:`PoissonSource`; ``elephant_rate_bps``
    (if set) adds an :class:`OnOffSource` with the given on/off means.
    """

    link_name: str
    from_node: str
    utilization: float = 0.0
    mean_flow_bytes: float = 4.0 * units.MB
    elephant_rate_bps: Optional[float] = None
    elephant_on_s: float = 30.0
    elephant_off_s: float = 30.0
    elephant_flows: int = 1


def start_sources(
    configs: Sequence[CrossTrafficConfig],
    sim: Simulator,
    engine: NetworkEngine,
    rng_for: "callable",
) -> List[Process]:
    """Instantiate and launch all configured sources.

    ``rng_for(name)`` supplies a dedicated RNG stream per source so runs
    are reproducible (see :class:`repro.sim.rng.RngRegistry`).
    """
    procs: List[Process] = []
    for cfg in configs:
        link = engine.topology.link(cfg.link_name)
        direction = link.direction_from(cfg.from_node)
        cap = engine.capacity_of(direction)
        if cfg.utilization > 0:
            src = PoissonSource(
                [direction],
                reference_capacity_bps=cap,
                mean_utilization=cfg.utilization,
                rng=rng_for(f"xtraffic.poisson.{cfg.link_name}.{cfg.from_node}"),
                mean_flow_bytes=cfg.mean_flow_bytes,
                label=f"bg.{cfg.link_name}",
            )
            procs.append(src.run(sim, engine))
        if cfg.elephant_rate_bps:
            elephant = OnOffSource(
                [direction],
                rate_bps=cfg.elephant_rate_bps,
                mean_on_s=cfg.elephant_on_s,
                mean_off_s=cfg.elephant_off_s,
                rng=rng_for(f"xtraffic.onoff.{cfg.link_name}.{cfg.from_node}"),
                label=f"bg-el.{cfg.link_name}",
                parallel_flows=cfg.elephant_flows,
            )
            procs.append(elephant.run(sim, engine))
    return procs
