"""Simulated DNS: hostnames -> node addresses, with geo-DNS for providers.

Two uses in the case study:

* reverse lookups give traceroute its hostnames (paper Figs. 5/6 show
  ``vncv1rtr2.canarie.ca``, ``sea15s01-in-f138.1e100.net``, ...),
* cloud providers publish one API hostname (``www.googleapis.com``) that
  *geo-resolves* to the point of presence nearest the querying client —
  how real providers steer clients to POPs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import RoutingError
from repro.geo.coords import haversine_km
from repro.geo.sites import SITES
from repro.net.topology import Topology

__all__ = ["DnsResolver"]


class DnsResolver:
    """Name resolution over a topology.

    Static records map a hostname to one node.  Geo records map a service
    hostname to a set of candidate nodes; resolution picks the candidate
    geographically nearest the client (by site coordinates).
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        self._static: Dict[str, str] = {}
        self._geo: Dict[str, List[str]] = {}
        for node in topology.nodes.values():
            self._static.setdefault(node.hostname, node.name)

    # -- record management -----------------------------------------------

    def add_record(self, hostname: str, node_name: str) -> None:
        """Add/overwrite a static A record."""
        self.topology.node(node_name)  # validate
        self._static[hostname] = node_name

    def add_geo_record(self, hostname: str, node_names: List[str]) -> None:
        """Register a geo-balanced service name over candidate nodes."""
        if not node_names:
            raise RoutingError(f"geo record {hostname!r} needs at least one node")
        for name in node_names:
            node = self.topology.node(name)
            if not node.site_name:
                raise RoutingError(
                    f"geo record {hostname!r}: node {name!r} has no site for distance ranking"
                )
        self._geo[hostname] = list(node_names)

    # -- resolution -------------------------------------------------------

    def resolve(self, hostname: str, client_node: Optional[str] = None) -> str:
        """Resolve *hostname* to a node name.

        Geo records require *client_node* (whose site anchors the distance
        ranking); static records ignore it.
        """
        if hostname in self._geo:
            candidates = self._geo[hostname]
            if client_node is None:
                return candidates[0]
            client = self.topology.node(client_node)
            if not client.site_name:
                return candidates[0]
            client_loc = SITES[client.site_name].location
            return min(
                candidates,
                key=lambda name: (
                    haversine_km(client_loc, SITES[self.topology.node(name).site_name].location),
                    name,
                ),
            )
        if hostname in self._static:
            return self._static[hostname]
        raise RoutingError(f"NXDOMAIN: {hostname!r}")

    def resolve_address(self, hostname: str, client_node: Optional[str] = None) -> str:
        """Like :meth:`resolve` but returns the node's IPv4 address."""
        return self.topology.node(self.resolve(hostname, client_node)).address

    def reverse(self, address: str) -> str:
        """PTR lookup: address -> hostname."""
        return self.topology.node_by_address(address).hostname

    def hostnames(self) -> List[str]:
        return sorted(set(self._static) | set(self._geo))
