"""Fluid flow-level transfer engine on the discrete-event kernel.

Active transfers are fluid flows draining at their max-min fair share of
the directed link capacities they cross (recomputed on every flow arrival
or departure).  This is the standard flow-level abstraction for WAN
capacity studies: it keeps per-transfer cost at "a handful of events"
instead of per-packet, while preserving the bandwidth-sharing phenomena
the paper measures (congested peerings, policed egresses, last-mile caps).

TCP behaviour enters in two places:

* a per-flow **rate ceiling** (the Mathis loss ceiling, computed by the
  caller from path loss/RTT) bounds the fair share,
* a **slow-start deficit**: the engine converts the ramp-up byte deficit
  into extra wire bytes at flow-start time (see ``start_transfer``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from math import inf, isfinite, ulp
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro import units
from repro.errors import TransferError
from repro.net.flows import FlowSpec, max_min_allocation
from repro.net.topology import LinkDirection, Topology
from repro.obs.metrics import DURATION_BUCKETS, RATE_BUCKETS, MetricsRegistry
from repro.sim.kernel import Signal, Simulator
from repro.sim.trace import Tracer

__all__ = ["NetworkEngine", "Transfer", "TransferResult"]

#: Completion-event drift allowance, in ulps of the sim clock: a flow's
#: own completion event may under-credit progress by at most this many
#: float-time grains times its byte rate (see ``_complete``).
_DRIFT_ULPS = 64.0


@dataclass(frozen=True)
class TransferResult:
    """Completion record for one flow."""

    label: str
    nbytes: float
    start_time: float
    end_time: float

    @property
    def duration_s(self) -> float:
        return self.end_time - self.start_time

    @property
    def mean_rate_bps(self) -> float:
        return units.throughput_bps(self.nbytes, self.duration_s)


@dataclass
class Transfer:
    """Handle for an in-flight flow."""

    flow_id: int
    label: str
    spec: FlowSpec
    payload_bytes: float
    wire_bytes: float  # payload + slow-start deficit
    start_time: float
    done: Signal
    remaining_bytes: float = 0.0
    rate_bps: float = 0.0
    _last_update: float = 0.0
    _completion_handle: Optional[object] = None

    @property
    def finished(self) -> bool:
        return self.done.triggered


class NetworkEngine:
    """Shared-bandwidth transfer execution over a topology."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        tracer: Optional[Tracer] = None,
        capacity_scale: Optional[Dict[str, float]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.sim = sim
        self.topology = topology
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: optional per-link multiplicative capacity jitter for this run,
        #: keyed by link name (applied to both directions).
        self.capacity_scale = capacity_scale or {}
        self._flows: Dict[int, Transfer] = {}
        self._ids = itertools.count(1)
        self._capacity_cache: Dict[LinkDirection, float] = {}
        metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        self.metrics = metrics
        self._m_started = metrics.counter(
            "repro_engine_flows_started_total", "Flows started")
        self._m_completed = metrics.counter(
            "repro_engine_flows_completed_total", "Flows completed")
        self._m_cancelled = metrics.counter(
            "repro_engine_flows_cancelled_total", "Flows cancelled")
        self._m_payload = metrics.counter(
            "repro_engine_payload_bytes_total", "Payload bytes delivered")
        self._m_reallocs = metrics.counter(
            "repro_engine_reallocations_total", "Max-min reallocation passes")
        self._m_active = metrics.gauge(
            "repro_engine_active_flows_count", "Flows currently in flight")
        self._m_duration = metrics.histogram(
            "repro_engine_flow_duration_seconds", "Per-flow transfer duration",
            buckets=DURATION_BUCKETS)
        self._m_throughput = metrics.histogram(
            "repro_engine_flow_throughput_bps", "Per-flow mean throughput",
            buckets=RATE_BUCKETS)

    # -- capacities -----------------------------------------------------------

    def capacity_of(self, direction: LinkDirection) -> float:
        """Effective capacity of one link direction (policed + jittered)."""
        cached = self._capacity_cache.get(direction)
        if cached is not None:
            return cached
        link = self.topology.link(direction.link_name)
        cap = link.effective_capacity_bps(direction.src)
        if not link.failed:
            cap *= self.capacity_scale.get(link.name, 1.0)
        self._capacity_cache[direction] = cap
        return cap

    def on_link_state_change(self, link_name: str) -> None:
        """React to a link failing or recovering: re-derive capacities and
        re-share bandwidth (flows pinned to a failed link starve at the
        residual rate until cancelled or the link returns)."""
        self.topology.link(link_name)  # validate
        for direction in list(self._capacity_cache):
            if direction.link_name == link_name:
                del self._capacity_cache[direction]
        self._reallocate()

    # -- public API -------------------------------------------------------------

    def start_transfer(
        self,
        directions: Sequence[LinkDirection],
        nbytes: float,
        ceiling_bps: float = inf,
        label: str = "",
        startup_deficit_bytes: float = 0.0,
    ) -> Transfer:
        """Begin a fluid transfer; returns a handle whose ``done`` signal
        fires with a :class:`TransferResult`.

        ``startup_deficit_bytes`` adds wire bytes representing the
        slow-start ramp deficit (computed by the caller's TCP model from
        the estimated initial rate).
        """
        if nbytes <= 0:
            raise TransferError(f"transfer size must be positive, got {nbytes}")
        if startup_deficit_bytes < 0:
            raise TransferError("startup deficit cannot be negative")
        if not directions and not isfinite(ceiling_bps):
            raise TransferError("transfer needs a path or a finite rate ceiling")
        flow_id = next(self._ids)
        wire = nbytes + startup_deficit_bytes
        transfer = Transfer(
            flow_id=flow_id,
            label=label or f"flow-{flow_id}",
            spec=FlowSpec(flow_id, tuple(directions), ceiling_bps),
            payload_bytes=nbytes,
            wire_bytes=wire,
            start_time=self.sim.now,
            done=Signal(self.sim, name=f"transfer-{flow_id}"),
            remaining_bytes=wire,
            _last_update=self.sim.now,
        )
        self._flows[flow_id] = transfer
        self.tracer.emit(
            self.sim.now, "net.engine", "flow_start",
            flow=flow_id, label=transfer.label, bytes=int(nbytes),
        )
        self._m_started.inc()
        self._m_active.set(len(self._flows))
        self._reallocate()
        return transfer

    def estimate_rate(
        self, directions: Sequence[LinkDirection], ceiling_bps: float = inf
    ) -> float:
        """Rate a new flow would get right now (phantom allocation)."""
        phantom = FlowSpec("__phantom__", tuple(directions), ceiling_bps)
        specs = [t.spec for t in self._flows.values()] + [phantom]
        alloc = self._allocate(specs)
        return alloc["__phantom__"]

    def cancel(self, transfer: Transfer) -> None:
        """Abort an in-flight transfer; its ``done`` signal fails."""
        if transfer.finished or transfer.flow_id not in self._flows:
            return
        self._drain_all()
        self._remove(transfer)
        self._m_cancelled.inc()
        self._m_active.set(len(self._flows))
        transfer.done.fail(TransferError(f"transfer {transfer.label} cancelled"))
        self._reallocate()

    @property
    def active_count(self) -> int:
        return len(self._flows)

    def active_transfers(self) -> List[Transfer]:
        return list(self._flows.values())

    def utilization_of(self, direction: LinkDirection) -> float:
        """Fraction of a link direction's capacity currently allocated."""
        cap = self.capacity_of(direction)
        used = sum(
            t.rate_bps for t in self._flows.values() if direction in t.spec.resources
        )
        return used / cap

    # -- internals -----------------------------------------------------------

    def _allocate(self, specs: List[FlowSpec]) -> Dict[Hashable, float]:
        capacities: Dict[LinkDirection, float] = {}
        for spec in specs:
            for r in spec.resources:
                if r not in capacities:
                    capacities[r] = self.capacity_of(r)
        return max_min_allocation(specs, capacities)

    def _drain_all(self) -> None:
        """Credit progress to every flow up to the current instant."""
        now = self.sim.now
        for t in self._flows.values():
            elapsed = now - t._last_update
            if elapsed > 0:
                t.remaining_bytes = max(
                    0.0, t.remaining_bytes - units.bytes_per_sec(t.rate_bps) * elapsed
                )
            t._last_update = now

    def _reallocate(self) -> None:
        self._drain_all()
        if not self._flows:
            return
        prof = self.sim.profiler
        if prof is None:
            self._do_reallocate()
        else:
            prof.count("net.engine.flows_touched", len(self._flows))
            t0 = prof.begin()
            try:
                self._do_reallocate()
            finally:
                prof.end_section("net.engine.reallocate", t0, self.sim.now)

    def _do_reallocate(self) -> None:
        self._m_reallocs.inc()
        alloc = self._allocate([t.spec for t in self._flows.values()])
        _complete = self._complete
        sim_schedule = self.sim.schedule
        for t in self._flows.values():
            t.rate_bps = alloc[t.flow_id]
            if t._completion_handle is not None:
                t._completion_handle.cancel()
                t._completion_handle = None
            if t.remaining_bytes <= 1e-9:
                # Completed exactly at this instant.
                sim_schedule(0.0, lambda t=t: _complete(t))
            elif t.rate_bps > 0:
                eta = units.transfer_seconds(t.remaining_bytes, t.rate_bps)
                t._completion_handle = sim_schedule(eta, lambda t=t: _complete(t))
            # rate == 0: flow is starved; it stays until a reallocation frees capacity

    def _complete(self, transfer: Transfer) -> None:
        if transfer.finished or transfer.flow_id not in self._flows:
            return
        self._drain_all()
        # Draining quantizes progress on the float time axis, so at multi-
        # Gbit/s rates a flow's own completion event can arrive with a few
        # time-ulps' worth of bytes still on the books (eps(now) * rate/8 —
        # ~1e-4 B at t=4e3 s and 10 Gbit/s, above any fixed byte epsilon).
        # Anything beyond that drift is a genuinely stale event (rate
        # changed after scheduling; the reallocation that changed it
        # scheduled a fresh handle) and must not complete the flow early.
        drift = (units.bytes_per_sec(transfer.rate_bps)
                 * _DRIFT_ULPS * ulp(max(self.sim.now, 1.0)))
        if transfer.remaining_bytes > max(1e-6, drift):
            return
        self._remove(transfer)
        result = TransferResult(
            label=transfer.label,
            nbytes=transfer.payload_bytes,
            start_time=transfer.start_time,
            end_time=self.sim.now,
        )
        self.tracer.emit(
            self.sim.now, "net.engine", "flow_end",
            flow=transfer.flow_id, label=transfer.label,
            duration=round(result.duration_s, 6),
        )
        self._m_completed.inc()
        self._m_payload.inc(transfer.payload_bytes)
        prof = self.sim.profiler
        if prof is not None:
            prof.count_bytes("net.engine.payload", transfer.payload_bytes)
        self._m_active.set(len(self._flows))
        self._m_duration.observe(result.duration_s)
        self._m_throughput.observe(result.mean_rate_bps)
        transfer.done.trigger(result)
        self._reallocate()

    def _remove(self, transfer: Transfer) -> None:
        if transfer._completion_handle is not None:
            transfer._completion_handle.cancel()
            transfer._completion_handle = None
        self._flows.pop(transfer.flow_id, None)
