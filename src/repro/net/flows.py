"""Max-min fair bandwidth allocation (progressive filling).

Every active transfer and background flow is a :class:`FlowSpec`: the set
of directed link resources it crosses plus an optional per-flow rate
ceiling (the TCP loss ceiling, or an application pacing limit).  The
allocator water-fills: all unfrozen flows grow at the same rate; a flow
freezes when a link it crosses saturates or it hits its ceiling.

Invariants (property-tested):

* no link's capacity is exceeded,
* no flow exceeds its ceiling,
* every flow is bottlenecked — it either sits at its ceiling or crosses a
  saturated link where it gets a maximal share (the max-min condition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Dict, Hashable, Iterable, List, Mapping, Tuple

__all__ = ["FlowSpec", "max_min_allocation"]

ResourceId = Hashable


@dataclass(frozen=True)
class FlowSpec:
    """One flow competing for bandwidth."""

    flow_id: Hashable
    resources: Tuple[ResourceId, ...]
    ceiling_bps: float = inf

    def __post_init__(self) -> None:
        if self.ceiling_bps <= 0:
            raise ValueError(f"flow {self.flow_id!r}: ceiling must be positive")
        if not self.resources and self.ceiling_bps is inf:
            raise ValueError(f"flow {self.flow_id!r}: needs resources or a finite ceiling")


def max_min_allocation(
    flows: Iterable[FlowSpec],
    capacities_bps: Mapping[ResourceId, float],
    epsilon: float = 1e-9,
) -> Dict[Hashable, float]:
    """Water-filling max-min fair rates for *flows* over shared resources.

    Parameters
    ----------
    flows:
        The competing flows.  A flow referencing a resource missing from
        *capacities_bps* raises ``KeyError`` (construction bug upstream).
    capacities_bps:
        Capacity of each resource (bits/second).
    epsilon:
        Numerical slack when deciding saturation.

    Returns
    -------
    dict
        ``{flow_id: allocated rate}``.
    """
    flow_list = list(flows)
    ids = [f.flow_id for f in flow_list]
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate flow ids in allocation request")

    alloc: Dict[Hashable, float] = {f.flow_id: 0.0 for f in flow_list}
    headroom: Dict[ResourceId, float] = {}
    users: Dict[ResourceId, set] = {}
    for f in flow_list:
        for r in f.resources:
            cap = capacities_bps[r]
            if cap <= 0:
                raise ValueError(f"resource {r!r} has non-positive capacity")
            headroom.setdefault(r, float(cap))
            users.setdefault(r, set()).add(f.flow_id)

    unfrozen = {f.flow_id: f for f in flow_list}

    # Each iteration freezes at least one flow, so it terminates.
    headroom_items = headroom.items
    unfrozen_items = unfrozen.items
    while unfrozen:
        # Largest uniform increment all unfrozen flows can take.
        delta = inf
        for r, room in headroom_items():
            active = sum(1 for fid in users[r] if fid in unfrozen)
            if active:
                delta = min(delta, room / active)
        for fid, f in unfrozen_items():
            delta = min(delta, f.ceiling_bps - alloc[fid])
        if delta is inf:
            raise ValueError("unbounded allocation: flow with no resources and no ceiling")
        delta = max(delta, 0.0)

        for fid in unfrozen:
            alloc[fid] += delta
        for r in headroom:
            active = sum(1 for fid in users[r] if fid in unfrozen)
            headroom[r] -= delta * active

        # Freeze ceiling-bound flows and flows on saturated resources.
        saturated = {r for r, room in headroom_items() if room <= epsilon}
        to_freeze = [
            fid
            for fid, f in unfrozen_items()
            if alloc[fid] >= f.ceiling_bps - epsilon or any(r in saturated for r in f.resources)
        ]
        if not to_freeze:
            # Numerical corner: freeze the flow closest to its limit.
            fid = min(
                unfrozen,
                key=lambda fid: min(
                    [unfrozen[fid].ceiling_bps - alloc[fid]]
                    + [headroom[r] for r in unfrozen[fid].resources]
                ),
            )
            to_freeze = [fid]
        for fid in to_freeze:
            del unfrozen[fid]

    return alloc
