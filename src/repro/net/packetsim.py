"""Packet-level AIMD cross-validation of the fluid flow model.

The transfer engine assumes TCP flows sharing a bottleneck converge to
max-min fair shares (fluid approximation).  This module implements the
thing being approximated — a slotted, packet-level simulation of AIMD
(additive-increase multiplicative-decrease) flows over one drop-tail
bottleneck — so tests can check the approximation instead of trusting it.

It is intentionally simple (fixed RTT per flow, synchronous slots, tail
drop) but captures the dynamics that matter for fairness: window growth,
loss-synchronized backoff, and RTT bias.  Used by the validation tests
and available for anyone extending the fluid model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import units

__all__ = ["AimdFlow", "BottleneckSim", "simulate_shares"]


@dataclass
class AimdFlow:
    """One AIMD (TCP-Reno-like) flow."""

    flow_id: int
    rtt_s: float
    mss_bytes: int = units.DEFAULT_MSS
    cwnd_segments: float = 2.0
    #: per-ack additive increase is 1/cwnd (classic Reno)
    bytes_delivered: float = 0.0
    losses: int = 0

    def on_ack_round(self) -> None:
        self.cwnd_segments += 1.0  # +1 MSS per RTT

    def on_loss(self) -> None:
        self.cwnd_segments = max(1.0, self.cwnd_segments / 2.0)
        self.losses += 1

    def offered_bps(self) -> float:
        return self.cwnd_segments * self.mss_bytes * units.BITS_PER_BYTE / self.rtt_s


class BottleneckSim:
    """Slotted simulation of AIMD flows over one drop-tail bottleneck.

    Each slot lasts ``slot_s``; every flow offers ``cwnd/rtt`` worth of
    bytes per slot.  If the aggregate exceeds the link capacity plus the
    buffer, the overflow is dropped proportionally to each flow's offered
    load and affected flows halve their windows (synchronized loss — the
    worst case for fairness, hence a conservative validation).
    """

    def __init__(
        self,
        capacity_bps: float,
        flows: Sequence[AimdFlow],
        slot_s: float = 0.01,
        buffer_bytes: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if capacity_bps <= 0 or slot_s <= 0:
            raise ValueError("capacity and slot must be positive")
        if not flows:
            raise ValueError("need at least one flow")
        if rng is None:
            raise ValueError(
                "BottleneckSim needs an explicit rng (an RngRegistry stream "
                "or injected np.random.Generator); loss draws must descend "
                "from the master seed"
            )
        self.capacity_bps = capacity_bps
        self.flows = list(flows)
        self.slot_s = slot_s
        # default buffer: one bandwidth-delay product at the mean RTT
        mean_rtt = float(np.mean([f.rtt_s for f in flows]))
        self.buffer_bytes = (
            buffer_bytes if buffer_bytes is not None
            else units.bytes_per_sec(capacity_bps) * mean_rtt
        )
        self.rng = rng
        self.time_s = 0.0
        self._since_ack: Dict[int, float] = {f.flow_id: 0.0 for f in flows}

    def step(self) -> None:
        cap_bytes = units.bytes_per_sec(self.capacity_bps) * self.slot_s
        offered = np.array([
            units.bytes_per_sec(f.offered_bps()) * self.slot_s for f in self.flows
        ])
        total = offered.sum()
        budget = cap_bytes + self.buffer_bytes * self.slot_s  # drained buffer share
        if total <= budget:
            delivered = offered
            overloaded = np.zeros(len(self.flows), dtype=bool)
        else:
            # proportional service; each in-flight packet faces the same
            # per-packet drop fraction q, so a flow's chance of seeing at
            # least one drop grows with its packets in flight (Reno's
            # regime: equal per-packet loss -> throughput ~ 1/RTT)
            delivered = offered * (budget / total)
            q = (total - budget) / total
            packets = offered / self.flows[0].mss_bytes
            p_loss = 1.0 - np.power(1.0 - min(q, 0.999), np.maximum(packets, 1.0))
            overloaded = self.rng.random(len(self.flows)) < p_loss
        for i, flow in enumerate(self.flows):
            flow.bytes_delivered += float(delivered[i])
            if overloaded[i]:
                flow.on_loss()
                self._since_ack[flow.flow_id] = 0.0
            else:
                self._since_ack[flow.flow_id] += self.slot_s
                if self._since_ack[flow.flow_id] >= flow.rtt_s:
                    flow.on_ack_round()
                    self._since_ack[flow.flow_id] = 0.0
        self.time_s += self.slot_s

    def run(self, duration_s: float) -> None:
        steps = int(duration_s / self.slot_s)
        for _ in range(steps):
            self.step()

    def measured_shares_bps(self, warmup_s: float = 0.0) -> List[float]:
        """Long-run delivered throughput per flow (bps)."""
        window = max(self.time_s - warmup_s, self.slot_s)
        return [f.bytes_delivered * units.BITS_PER_BYTE / window for f in self.flows]


def simulate_shares(
    capacity_bps: float,
    rtts_s: Sequence[float],
    duration_s: float = 60.0,
    seed: int = 0,
) -> List[float]:
    """Convenience: long-run AIMD shares of N flows on one bottleneck."""
    flows = [AimdFlow(i, rtt) for i, rtt in enumerate(rtts_s)]
    # Standalone validation harness: *seed* is the entry-point parameter,
    # so converting it to a generator here is the injection point.
    sim = BottleneckSim(capacity_bps, flows, rng=np.random.default_rng(seed))  # simlint: ignore[SL103] -- seed-parameterized entry point
    sim.run(duration_s)
    return sim.measured_shares_bps()
