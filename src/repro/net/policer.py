"""Token-bucket policer.

The case study's key artifact is a rate-limited exchange hop (the
``pacificwave`` egress toward Google).  The fluid flow engine models a
policed link direction simply as a capacity cap
(:meth:`repro.net.topology.Link.effective_capacity_bps`); this module
provides the full token-bucket mechanics used by the middlebox tests and
by anyone modeling bursty arrivals explicitly.

Tokens accrue at ``rate_bps`` up to ``burst_bytes``; an arrival conforming
to the bucket passes immediately, otherwise it is delayed (shaping) or
dropped (policing) depending on the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import units
from repro.obs.metrics import DURATION_BUCKETS, MetricsRegistry

__all__ = ["TokenBucket"]


@dataclass
class TokenBucket:
    """Classic token bucket, advanced explicitly with simulated time.

    >>> tb = TokenBucket(rate_bps=8e6, burst_bytes=1_000_000)
    >>> tb.consume(500_000, now=0.0)       # within burst
    0.0
    >>> delay = tb.consume(1_000_000, now=0.0)   # must wait for tokens
    >>> round(delay, 3)
    0.5
    """

    rate_bps: float
    burst_bytes: float
    _tokens: float = None  # type: ignore[assignment]
    _last: float = 0.0
    metrics: Optional[MetricsRegistry] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_bps}")
        if self.burst_bytes <= 0:
            raise ValueError(f"burst must be positive, got {self.burst_bytes}")
        if self._tokens is None:
            self._tokens = float(self.burst_bytes)
        registry = self.metrics if self.metrics is not None else MetricsRegistry(enabled=False)
        self._m_conforming = registry.counter(
            "repro_policer_conforming_total", "Arrivals passed without delay")
        self._m_delayed = registry.counter(
            "repro_policer_delayed_total", "Arrivals held back for tokens")
        self._m_would_drop = registry.counter(
            "repro_policer_would_drop_total", "Arrivals a strict policer would drop")
        self._m_wait = registry.histogram(
            "repro_policer_wait_seconds", "Shaping delay per arrival",
            buckets=DURATION_BUCKETS)

    @property
    def tokens(self) -> float:
        """Tokens currently in the bucket (bytes), as of the last update."""
        return self._tokens

    def _advance(self, now: float) -> None:
        if now < self._last:
            raise ValueError(f"time went backwards: {now} < {self._last}")
        self._tokens = min(
            self.burst_bytes,
            self._tokens + units.bytes_per_sec(self.rate_bps) * (now - self._last),
        )
        self._last = now

    def peek_delay(self, nbytes: float, now: float) -> float:
        """Delay a conforming sender must wait before *nbytes* may pass."""
        self._advance(now)
        deficit = nbytes - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / units.bytes_per_sec(self.rate_bps)

    def consume(self, nbytes: float, now: float) -> float:
        """Consume *nbytes*, going into debt if needed; returns the delay.

        The returned delay is how long the traffic is held back (shaping
        semantics).  The bucket balance may go negative, which delays
        subsequent arrivals further — this matches a shaper with a queue.
        """
        delay = self.peek_delay(nbytes, now)
        self._tokens -= nbytes
        if delay > 0.0:
            self._m_delayed.inc()
            self._m_wait.observe(delay)
        else:
            self._m_conforming.inc()
        return delay

    def would_drop(self, nbytes: float, now: float) -> bool:
        """Policing semantics: would a strict policer drop this burst?"""
        self._advance(now)
        drop = nbytes > self._tokens
        if drop:
            self._m_would_drop.inc()
        return drop

    def sustained_rate_bps(self) -> float:
        """Long-run rate a policed aggregate can achieve (= the rate)."""
        return self.rate_bps
