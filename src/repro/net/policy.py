"""Policy-based routing (PBR): source-prefix next-hop overrides.

BGP chooses next hops by destination only.  The inefficiency at the heart
of the case study is *source*-dependent: at the CANARIE Vancouver router,
traffic sourced from PlanetLab prefixes and destined to Google leaves via
the rate-limited Pacific Wave fabric, while traffic from UAlberta's
prefixes uses the direct Google peering (paper Figs. 5 vs 6).  PBR rules
express exactly that: ``(at node, source prefix in S, destination AS in D)
-> forward out link L``.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.errors import TopologyError
from repro.net.address import parse_address, parse_prefix

__all__ = ["PbrRule", "PolicyTable"]


@dataclass(frozen=True)
class PbrRule:
    """One policy-based-routing rule installed at a router.

    Parameters
    ----------
    node:
        Router where the rule is evaluated.
    src_prefixes:
        Source prefixes the rule matches (CIDR strings).  Empty = any.
    dest_asns:
        Destination ASes the rule matches.  Empty = any.
    out_link:
        Name of the link the matching traffic is forwarded out of.
    description:
        Operator-facing note (shows up in diagnostics).
    """

    node: str
    out_link: str
    src_prefixes: FrozenSet[str] = frozenset()
    dest_asns: FrozenSet[int] = frozenset()
    description: str = ""

    def __post_init__(self) -> None:
        for p in self.src_prefixes:
            parse_prefix(p)  # validate eagerly

    def matches(self, src_address: str, dest_asn: int) -> bool:
        """Does traffic (src ip, dest AS) match this rule?"""
        if self.dest_asns and dest_asn not in self.dest_asns:
            return False
        if self.src_prefixes:
            addr = parse_address(src_address)
            if not any(addr in parse_prefix(p) for p in self.src_prefixes):
                return False
        return True

    def __str__(self) -> str:
        src = ",".join(sorted(self.src_prefixes)) or "any"
        dst = ",".join(f"AS{a}" for a in sorted(self.dest_asns)) or "any"
        return f"@{self.node}: src {src} -> dst {dst} via {self.out_link}"


class PolicyTable:
    """All PBR rules in the network, indexed by router."""

    def __init__(self) -> None:
        self._rules: Dict[str, List[PbrRule]] = {}

    def install(self, rule: PbrRule) -> None:
        """Install a rule; rules at one node are evaluated in install order."""
        self._rules.setdefault(rule.node, []).append(rule)

    def rules_at(self, node: str) -> List[PbrRule]:
        return list(self._rules.get(node, []))

    def all_rules(self) -> List[PbrRule]:
        return [r for rules in self._rules.values() for r in rules]

    def match(self, node: str, src_address: str, dest_asn: int) -> Optional[PbrRule]:
        """First matching rule at *node*, or None (fall through to BGP)."""
        for rule in self._rules.get(node, ()):
            if rule.matches(src_address, dest_asn):
                return rule
        return None

    def __len__(self) -> int:
        return sum(len(rules) for rules in self._rules.values())
