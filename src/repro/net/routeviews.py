"""RouteViews-style BGP monitoring and policy-anomaly detection.

The paper's discussion: "routing table monitoring systems such as
RouteViews might assist in our understanding.  Certainly, RouteViews is
more sophisticated than our current use of traceroute."  This module is
that assistant:

* :class:`RouteCollector` — collects every AS's selected route toward a
  destination (a RouteViews RIB snapshot for the simulated Internet) and
  groups observers by divergent next hops;
* :func:`detect_policy_anomalies` — the case study's key lesson encoded:
  compares the *control plane* (the BGP path the source's AS selected)
  against the *forwarding plane* (the AS sequence packets actually take,
  PBR included).  The pacificwave artifact is invisible in BGP — both
  UBC and UAlberta sit behind CANARIE's Google peering — and only shows
  up as a control/forwarding mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.net.bgp import BgpRoute, BgpRouteComputer
from repro.net.routing import ResolvedPath, Router

__all__ = ["RibEntry", "RouteCollector", "PolicyAnomaly", "detect_policy_anomalies"]


@dataclass(frozen=True)
class RibEntry:
    """One observer's selected route toward a destination AS."""

    observer_asn: int
    dest_asn: int
    as_path: Tuple[int, ...]
    route_type: str

    def render(self) -> str:
        path = " ".join(str(a) for a in self.as_path)
        return f"AS{self.observer_asn:<6} {path}  [{self.route_type}]"


class RouteCollector:
    """A RouteViews-like view over the simulated AS-level routing system."""

    def __init__(self, bgp: BgpRouteComputer):
        self.bgp = bgp

    def rib(self, dest_asn: int) -> List[RibEntry]:
        """Every AS's selected route toward *dest_asn* (reachable only)."""
        table = self.bgp.table_for(dest_asn)
        return [
            RibEntry(asn, dest_asn, route.path, route.route_type.name.lower())
            for asn, route in sorted(table.items())
        ]

    def dump(self, dest_asn: int) -> str:
        """``show ip bgp``-style text dump of the RIB snapshot."""
        entries = self.rib(dest_asn)
        name = self.bgp.graph.ases[dest_asn].name
        lines = [f"RIB snapshot toward AS{dest_asn} ({name}): {len(entries)} observers"]
        lines.extend("  " + e.render() for e in entries)
        return "\n".join(lines)

    def observers_by_next_hop(self, dest_asn: int) -> Dict[int, List[int]]:
        """Group observers by their next AS toward the destination."""
        groups: Dict[int, List[int]] = {}
        for entry in self.rib(dest_asn):
            if entry.observer_asn == dest_asn:
                continue
            groups.setdefault(entry.as_path[1], []).append(entry.observer_asn)
        return groups

    def path_disagreement(self, a_asn: int, b_asn: int, dest_asn: int) -> Tuple[int, ...]:
        """Longest common AS-path *suffix* of two observers toward dest.

        The paper's UBC/UAlberta traces share everything from CANARIE
        onward at the BGP level; a short common suffix signals genuinely
        different routing rather than a local policy artifact.
        """
        pa = self.bgp.best_route(a_asn, dest_asn).path
        pb = self.bgp.best_route(b_asn, dest_asn).path
        common: List[int] = []
        for x, y in zip(reversed(pa), reversed(pb)):
            if x != y:
                break
            common.append(x)
        return tuple(reversed(common))


@dataclass(frozen=True)
class PolicyAnomaly:
    """A control-plane vs forwarding-plane divergence for one flow."""

    src_host: str
    dst_host: str
    bgp_as_path: Tuple[int, ...]
    forwarding_as_sequence: Tuple[int, ...]

    @property
    def extra_ases(self) -> Tuple[int, ...]:
        """ASes the packets visit that BGP never selected."""
        return tuple(a for a in self.forwarding_as_sequence if a not in self.bgp_as_path)

    def render(self) -> str:
        return (
            f"{self.src_host} -> {self.dst_host}: BGP says "
            f"{'-'.join(map(str, self.bgp_as_path))} but forwarding takes "
            f"{'-'.join(map(str, self.forwarding_as_sequence))} "
            f"(extra: {', '.join(f'AS{a}' for a in self.extra_ases) or 'none'})"
        )


def detect_policy_anomalies(
    router: Router,
    src_hosts: Sequence[str],
    dst_host: str,
) -> List[PolicyAnomaly]:
    """Flag flows whose forwarding AS sequence deviates from BGP's choice.

    A deviation means something below BGP — policy-based routing, traffic
    engineering, an exchange-fabric detour — steers the traffic; exactly
    the class of inefficiency the case study catalogs.
    """
    dst = router.topology.node(dst_host)
    anomalies: List[PolicyAnomaly] = []
    for src_name in src_hosts:
        src = router.topology.node(src_name)
        path: ResolvedPath = router.resolve(src_name, dst_host)
        if src.asn == dst.asn:
            bgp_path: Tuple[int, ...] = (src.asn,)
        else:
            bgp_path = router.bgp.best_route(src.asn, dst.asn).path
        if path.as_sequence != bgp_path:
            anomalies.append(PolicyAnomaly(
                src_host=src_name,
                dst_host=dst_host,
                bgp_as_path=bgp_path,
                forwarding_as_sequence=path.as_sequence,
            ))
    return anomalies
