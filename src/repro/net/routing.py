"""End-to-end path resolution: BGP + IGP + PBR, hop by hop.

:class:`Router` walks a packet's path the way the network forwards it:

1. a PBR rule at the current node wins (source-sensitive overrides),
2. inside the destination AS, follow the IGP shortest path to the host,
3. otherwise follow BGP's next AS, exiting via the *hot-potato* border
   (the border router nearest in IGP cost), then cross the inter-AS link.

The resulting :class:`ResolvedPath` carries everything the transfer models
need: the node sequence, the directed link resources, end-to-end RTT and
loss, and the bottleneck capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import RoutingError, TopologyError
from repro.net.asn import ASGraph
from repro.net.bgp import BgpRouteComputer
from repro.net.policy import PolicyTable
from repro.net.topology import Link, LinkDirection, Node, Topology

__all__ = ["ResolvedPath", "Router"]

_MAX_HOPS = 64


@dataclass(frozen=True)
class ResolvedPath:
    """A concrete forwarding path between two hosts."""

    src: str
    dst: str
    nodes: Tuple[str, ...]
    rtt_s: float
    loss: float
    bottleneck_bps: float
    as_sequence: Tuple[int, ...]
    #: tightest per-flow stateful-inspection cap among transited
    #: middleboxes (inf when no firewall is on the path)
    per_flow_cap_bps: float = float("inf")

    @property
    def hop_count(self) -> int:
        return len(self.nodes) - 1

    def describe(self) -> str:
        return " -> ".join(self.nodes)


class Router:
    """Resolves forwarding paths over a topology + AS graph + PBR table."""

    def __init__(
        self,
        topology: Topology,
        as_graph: ASGraph,
        policy: Optional[PolicyTable] = None,
        per_hop_latency_s: float = 50e-6,
    ):
        self.topology = topology
        self.as_graph = as_graph
        self.policy = policy if policy is not None else PolicyTable()
        # BGP adjacencies require a live inter-AS link (failures reset
        # the session and withdraw the routes learned over it)
        self.bgp = BgpRouteComputer(
            as_graph,
            edge_usable=lambda a, b: bool(topology.inter_as_links(a, b)),
        )
        #: store-and-forward / switching latency added per hop to RTT
        self.per_hop_latency_s = per_hop_latency_s
        self._path_cache: Dict[Tuple[str, str], ResolvedPath] = {}
        self._igp_cost_cache: Dict[Tuple[str, str], float] = {}

    # -- public API ---------------------------------------------------------

    def resolve(self, src: str, dst: str) -> ResolvedPath:
        """Forwarding path from host *src* to host *dst* (cached)."""
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        path = self._resolve_uncached(src, dst)
        self._path_cache[key] = path
        return path

    def invalidate(self) -> None:
        """Drop caches after topology or policy changes."""
        self._path_cache.clear()
        self._igp_cost_cache.clear()
        self.bgp.invalidate()

    def preload(self, node_paths: Iterable[Sequence[str]]) -> int:
        """Seed the path cache from precompiled node sequences.

        Each sequence is the full hop list of one forwarding path (as
        :class:`ResolvedPath.nodes` would report it).  The derived
        attributes — RTT, loss, bottleneck, AS sequence, firewall caps —
        are recomputed from the live topology, so a preloaded path is
        bit-identical to what :meth:`resolve` would return for the same
        hops.  Used by ``repro.topo`` to warm large compiled worlds so
        the first transfer doesn't pay BGP resolution.  Returns the
        number of paths installed.
        """
        n = 0
        for nodes in node_paths:
            path = self._finalize(list(nodes))
            self._path_cache[(path.src, path.dst)] = path
            n += 1
        return n

    def path_directions(self, path: ResolvedPath) -> List[LinkDirection]:
        """Directed link resources traversed by *path*."""
        return self.topology.path_directions(list(path.nodes))

    # -- resolution ------------------------------------------------------------

    def _resolve_uncached(self, src: str, dst: str) -> ResolvedPath:
        topo = self.topology
        s, d = topo.node(src), topo.node(dst)
        if src == dst:
            raise RoutingError(f"source and destination are the same host: {src}")
        nodes = [s.name]
        cur = s
        for _ in range(_MAX_HOPS):
            if cur.name == d.name:
                break
            nxt = self._next_hop(cur, s, d)
            if nxt in nodes:
                raise RoutingError(
                    f"forwarding loop resolving {src}->{dst}: revisit {nxt} "
                    f"(path so far: {' -> '.join(nodes)})"
                )
            nodes.append(nxt)
            cur = topo.node(nxt)
        else:
            raise RoutingError(f"path {src}->{dst} exceeds {_MAX_HOPS} hops")

        return self._finalize(nodes)

    def _finalize(self, nodes: List[str]) -> ResolvedPath:
        """Derive the :class:`ResolvedPath` attributes from a hop list."""
        topo = self.topology
        if len(nodes) < 2:
            raise RoutingError(f"path needs at least two hops, got {nodes!r}")
        src, dst = nodes[0], nodes[-1]
        links = topo.path_links(nodes)
        one_way = topo.path_delay_s(nodes) + self.per_hop_latency_s * (len(nodes) - 1)
        bottleneck = min(
            link.effective_capacity_bps(u) for u, link in zip(nodes, links)
        )
        as_seq: List[int] = []
        for name in nodes:
            asn = topo.node(name).asn
            if not as_seq or as_seq[-1] != asn:
                as_seq.append(asn)
        # per-flow firewall caps apply to transit through middleboxes
        # (endpoints inspect their own traffic for free)
        fw_cap = float("inf")
        for name in nodes[1:-1]:
            cap = topo.node(name).firewall_per_flow_bps
            if cap is not None:
                fw_cap = min(fw_cap, cap)
        return ResolvedPath(
            src=src,
            dst=dst,
            nodes=tuple(nodes),
            rtt_s=2.0 * one_way,
            loss=topo.path_loss(nodes),
            bottleneck_bps=bottleneck,
            as_sequence=tuple(as_seq),
            per_flow_cap_bps=fw_cap,
        )

    def _next_hop(self, cur: Node, src: Node, dst: Node) -> str:
        topo = self.topology

        # 1. policy-based routing overrides (a failed out-link falls
        #    through to BGP, like a next-hop-unreachable PBR rule)
        rule = self.policy.match(cur.name, src.address, dst.asn)
        if rule is not None:
            link = topo.link(rule.out_link)
            if cur.name not in (link.u, link.v):
                raise RoutingError(
                    f"PBR rule at {cur.name} names link {rule.out_link} not attached to it"
                )
            if not link.failed:
                return link.other(cur.name)

        # 2. destination AS: plain IGP
        if cur.asn == dst.asn:
            path = topo.intra_as_path(cur.name, dst.name)
            if len(path) < 2:
                raise RoutingError(f"no next hop from {cur.name} to {dst.name}")
            return path[1]

        # 3. BGP next AS, hot-potato egress selection
        route = self.bgp.best_route(cur.asn, dst.asn)
        next_as = route.next_as
        candidates = topo.inter_as_links(cur.asn, next_as)
        if not candidates:
            raise RoutingError(
                f"BGP at AS{cur.asn} selects AS{next_as} toward AS{dst.asn} "
                f"but no inter-AS link exists"
            )
        best: Optional[Tuple[float, str, Link]] = None
        for link in candidates:
            border = link.u if topo.node(link.u).asn == cur.asn else link.v
            cost = self._igp_cost(cur.name, border)
            if cost is None:
                continue
            key = (cost, border)
            if best is None or key < (best[0], best[1]):
                best = (cost, border, link)
        if best is None:
            raise RoutingError(
                f"no IGP path from {cur.name} to any AS{next_as}-facing border of AS{cur.asn}"
            )
        _, border, link = best
        if border == cur.name:
            return link.other(cur.name)
        return topo.intra_as_path(cur.name, border)[1]

    def _igp_cost(self, a: str, b: str) -> Optional[float]:
        """Total IGP cost a->b within one AS, or None if unreachable."""
        if a == b:
            return 0.0
        key = (a, b)
        if key in self._igp_cost_cache:
            return self._igp_cost_cache[key]
        try:
            path = self.topology.intra_as_path(a, b)
        except TopologyError:
            self._igp_cost_cache[key] = None  # type: ignore[assignment]
            return None
        cost = sum(link.igp_cost for link in self.topology.path_links(path))
        self._igp_cost_cache[key] = cost
        return cost
