"""TCP effective-throughput model.

The flow engine is fluid: a transfer drains at its max-min fair share of
path capacity.  Real TCP deviates from the fluid ideal in three ways that
matter to the paper's measurements:

1. **connection setup** — SYN handshake (1 RTT) plus optional TLS (2 RTT),
2. **slow start** — the congestion window ramps from IW segments, doubling
   per RTT, so short transfers never reach the fair share (this produces
   the fixed-cost intercept visible in the paper's small-file points),
3. **loss ceiling** — on lossy paths the window is loss-limited; we use
   the Mathis model ``rate <= C * MSS / (RTT * sqrt(p))``, which is what
   makes congested peerings (Purdue -> Google) so much worse than their
   raw capacity.

:class:`TcpModel` converts a resolved path into :class:`TcpPathParams` and
answers two questions: the flow's *rate ceiling* (fed to the max-min
allocator) and the *startup penalty* (extra time before fluid service
begins, given the initial rate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro import units
from repro.obs.metrics import DURATION_BUCKETS, MetricsRegistry

__all__ = ["TcpPathParams", "TcpModel", "mathis_ceiling_bps", "slow_start_penalty_s"]

#: Mathis et al. constant for periodic loss, sqrt(3/2).
MATHIS_C = math.sqrt(1.5)


def mathis_ceiling_bps(rtt_s: float, loss: float, mss_bytes: int = units.DEFAULT_MSS) -> float:
    """Loss-limited steady-state TCP throughput (Mathis model).

    Returns +inf for loss-free paths (no ceiling).
    """
    if rtt_s <= 0:
        raise ValueError(f"rtt must be positive, got {rtt_s}")
    if not (0.0 <= loss < 1.0):
        raise ValueError(f"loss must be in [0,1), got {loss}")
    if loss == 0.0:
        return math.inf
    return MATHIS_C * mss_bytes * units.BITS_PER_BYTE / (rtt_s * math.sqrt(loss))


def slow_start_penalty_s(
    target_rate_bps: float,
    rtt_s: float,
    mss_bytes: int = units.DEFAULT_MSS,
    initial_window_segments: int = 10,
) -> float:
    """Extra completion time caused by the slow-start ramp.

    During slow start the window doubles each RTT starting from
    ``IW * MSS`` bytes/RTT; a fluid model would instead serve at
    ``target_rate_bps`` from t=0.  The penalty is the time-equivalent of
    the byte deficit accumulated before the window reaches the target
    rate.  Zero when the target is reached within the initial window.
    """
    if target_rate_bps <= 0 or rtt_s <= 0:
        raise ValueError("target rate and rtt must be positive")
    iw_bytes = initial_window_segments * mss_bytes
    target_bytes_per_rtt = units.bytes_per_sec(target_rate_bps) * rtt_s
    if target_bytes_per_rtt <= iw_bytes:
        return 0.0
    # number of doubling rounds until window >= target
    rounds = math.ceil(math.log2(target_bytes_per_rtt / iw_bytes))
    sent = iw_bytes * (2**rounds - 1)  # geometric sum over the ramp
    fluid = target_bytes_per_rtt * rounds
    deficit = max(0.0, fluid - sent)
    return deficit / units.bytes_per_sec(target_rate_bps)


@dataclass(frozen=True)
class TcpPathParams:
    """Path-level inputs for one TCP connection."""

    rtt_s: float
    loss: float
    mss_bytes: int = units.DEFAULT_MSS

    @property
    def loss_ceiling_bps(self) -> float:
        return mathis_ceiling_bps(self.rtt_s, self.loss, self.mss_bytes)


class TcpModel:
    """Per-connection TCP cost model shared by all transfer tools."""

    def __init__(
        self,
        initial_window_segments: int = 10,
        tls_round_trips: float = 2.0,
        handshake_round_trips: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.initial_window_segments = initial_window_segments
        self.tls_round_trips = tls_round_trips
        self.handshake_round_trips = handshake_round_trips
        metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        self._m_connects = metrics.counter(
            "repro_tcp_connects_total", "TCP connections established")
        self._m_tls = metrics.counter(
            "repro_tcp_tls_connects_total", "TLS handshakes performed")
        self._m_penalty = metrics.histogram(
            "repro_tcp_slow_start_penalty_seconds",
            "Slow-start ramp deficit per connection", buckets=DURATION_BUCKETS)

    def connect_time_s(self, path: TcpPathParams, tls: bool = False) -> float:
        """Time before the first payload byte can be sent."""
        self._m_connects.inc()
        if tls:
            self._m_tls.inc()
        rtts = self.handshake_round_trips + (self.tls_round_trips if tls else 0.0)
        return rtts * path.rtt_s

    def rate_ceiling_bps(self, path: TcpPathParams) -> float:
        """Per-connection ceiling imposed by loss/RTT (Mathis)."""
        return path.loss_ceiling_bps

    def startup_penalty_s(self, path: TcpPathParams, target_rate_bps: float) -> float:
        """Slow-start deficit time for this path at the given target rate."""
        if not math.isfinite(target_rate_bps):
            raise ValueError("target rate must be finite for the ramp model")
        penalty = slow_start_penalty_s(
            target_rate_bps,
            path.rtt_s,
            path.mss_bytes,
            self.initial_window_segments,
        )
        self._m_penalty.observe(penalty)
        return penalty

    def request_response_time_s(self, path: TcpPathParams, server_time_s: float = 0.0) -> float:
        """Cost of one small request/response exchange on a warm connection."""
        return path.rtt_s + server_time_s
