"""Network topology: nodes, links, and the graph connecting them.

Nodes are hosts (transfer endpoints), routers, or middleboxes (firewalls,
policed exchange fabrics).  Links are point-to-point with a capacity *per
direction* (each direction is an independent :class:`LinkDirection`
resource in the flow model), a one-way propagation delay, and a loss rate.

The topology also keeps address and hostname indexes so traceroute and DNS
can resolve simulated entities the way the paper's tooling did.
"""

from __future__ import annotations

import difflib
import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import TopologyError
from repro.geo.sites import SITES
from repro.net.address import parse_address

__all__ = ["NodeKind", "Node", "Link", "LinkDirection", "Topology"]


class NodeKind(Enum):
    """Functional role of a node."""

    HOST = "host"
    ROUTER = "router"
    MIDDLEBOX = "middlebox"


@dataclass
class Node:
    """A device in the topology.

    Parameters
    ----------
    name:
        Unique topology-wide identifier (e.g. ``"ubc-pl"``).
    kind:
        Host / router / middlebox.
    asn:
        The autonomous system this node belongs to.
    address:
        Primary IPv4 address (string).  Unique within a topology.
    hostname:
        DNS-style name shown in traceroute output; defaults to *name*.
    site_name:
        Geographic site key (see :mod:`repro.geo.sites`); optional for
        synthetic tests.
    responds_to_traceroute:
        Middleboxes/firewalls that drop TTL-exceeded probes show up as
        ``* * *`` in traceroute (paper Fig. 6 hops 2, 10).
    firewall_per_flow_bps:
        Stateful-inspection throughput cap applied to every flow
        *transiting* this node.  This is the bottleneck Science DMZ [2]
        exists to bypass: campus firewalls are sized for many small
        flows, not single bulk transfers.  ``None`` = no cap.
    """

    name: str
    kind: NodeKind
    asn: int
    address: str
    hostname: str = ""
    site_name: str = ""
    responds_to_traceroute: bool = True
    firewall_per_flow_bps: Optional[float] = None

    def __post_init__(self) -> None:
        parse_address(self.address)  # validate
        if not self.hostname:
            self.hostname = self.name
        if self.firewall_per_flow_bps is not None and self.firewall_per_flow_bps <= 0:
            raise TopologyError(f"node {self.name}: firewall cap must be positive")

    @property
    def is_host(self) -> bool:
        return self.kind is NodeKind.HOST

    def __str__(self) -> str:
        return f"{self.name}({self.address})"


@dataclass(frozen=True)
class LinkDirection:
    """One direction of a link — the unit of capacity sharing."""

    link_name: str
    src: str  # node name the direction leaves from
    dst: str

    def __str__(self) -> str:
        return f"{self.src}->{self.dst}"


@dataclass
class Link:
    """A bidirectional point-to-point link.

    ``capacity_bps`` applies independently to each direction.  ``loss``
    is the per-direction packet-loss probability seen by TCP (feeds the
    Mathis ceiling).  ``policer_bps`` optionally rate-limits a direction
    below the physical capacity (see :mod:`repro.net.policer`); keyed by
    the name of the node the direction *leaves from*.
    """

    u: str
    v: str
    capacity_bps: float
    delay_s: float
    loss: float = 0.0
    name: str = ""
    policer_bps: Dict[str, float] = field(default_factory=dict)
    igp_cost: float = 1.0
    #: operational state; failed links are unusable for new paths and
    #: starve flows already on them (see World.fail_link)
    failed: bool = False

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise TopologyError(f"link {self.u}--{self.v}: capacity must be positive")
        if self.delay_s < 0:
            raise TopologyError(f"link {self.u}--{self.v}: delay must be non-negative")
        if not (0.0 <= self.loss < 1.0):
            raise TopologyError(f"link {self.u}--{self.v}: loss must be in [0,1)")
        if not self.name:
            self.name = f"{self.u}--{self.v}"
        for src, rate in self.policer_bps.items():
            if src not in (self.u, self.v):
                raise TopologyError(f"link {self.name}: policer endpoint {src!r} not on link")
            if rate <= 0:
                raise TopologyError(f"link {self.name}: policer rate must be positive")

    def other(self, node: str) -> str:
        """The far endpoint as seen from *node*."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise TopologyError(f"node {node!r} not on link {self.name}")

    def direction_from(self, node: str) -> LinkDirection:
        """The :class:`LinkDirection` leaving *node*."""
        return LinkDirection(self.name, node, self.other(node))

    #: residual rate of a failed link: keeps the allocator's capacities
    #: positive while starving any flow still pinned to the link
    FAILED_RESIDUAL_BPS = 1.0

    def effective_capacity_bps(self, from_node: str) -> float:
        """Capacity of the direction leaving *from_node*, after policing."""
        if self.failed:
            return self.FAILED_RESIDUAL_BPS
        cap = self.capacity_bps
        pol = self.policer_bps.get(from_node)
        if pol is not None:
            cap = min(cap, pol)
        return cap


class Topology:
    """Graph of nodes and links with lookup indexes."""

    def __init__(self) -> None:
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[str, Link] = {}
        self._adj: Dict[str, Dict[str, Link]] = {}
        self._by_address: Dict[str, Node] = {}

    # -- construction -------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        if node.site_name and node.site_name not in SITES:
            near = difflib.get_close_matches(node.site_name, sorted(SITES), n=1)
            hint = f"; did you mean {near[0]!r}?" if near else ""
            raise TopologyError(
                f"node {node.name!r}: site {node.site_name!r} is not in the "
                f"repro.geo.sites registry{hint} (register_site() it first, "
                f"or leave site_name empty)"
            )
        if node.address in self._by_address:
            raise TopologyError(
                f"address {node.address} already assigned to "
                f"{self._by_address[node.address].name!r}"
            )
        self.nodes[node.name] = node
        self._adj[node.name] = {}
        self._by_address[node.address] = node
        return node

    def add_link(self, link: Link) -> Link:
        for end in (link.u, link.v):
            if end not in self.nodes:
                raise TopologyError(f"link {link.name}: unknown node {end!r}")
        if link.u == link.v:
            raise TopologyError(f"link {link.name}: self-loops not allowed")
        if link.name in self.links:
            raise TopologyError(f"duplicate link name {link.name!r}")
        if link.v in self._adj[link.u]:
            raise TopologyError(f"parallel link between {link.u!r} and {link.v!r}")
        self.links[link.name] = link
        self._adj[link.u][link.v] = link
        self._adj[link.v][link.u] = link
        return link

    # -- lookups --------------------------------------------------------------

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def node_by_address(self, address: str) -> Node:
        try:
            return self._by_address[address]
        except KeyError:
            raise TopologyError(f"no node has address {address}") from None

    def link(self, name: str) -> Link:
        try:
            return self.links[name]
        except KeyError:
            raise TopologyError(f"unknown link {name!r}") from None

    def link_between(self, a: str, b: str) -> Link:
        link = self._adj.get(a, {}).get(b)
        if link is None:
            raise TopologyError(f"no link between {a!r} and {b!r}")
        return link

    def neighbors(self, name: str) -> List[str]:
        self.node(name)
        return list(self._adj[name])

    def hosts(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.is_host]

    def nodes_in_as(self, asn: int) -> List[Node]:
        return [n for n in self.nodes.values() if n.asn == asn]

    def inter_as_links(self, asn_a: int, asn_b: int) -> List[Link]:
        """Operational links whose endpoints straddle the two given ASes."""
        out = []
        for link in self.links.values():
            if link.failed:
                continue
            asns = {self.nodes[link.u].asn, self.nodes[link.v].asn}
            if asns == {asn_a, asn_b}:
                out.append(link)
        return out

    # -- path computation --------------------------------------------------

    def intra_as_path(self, src: str, dst: str) -> List[str]:
        """Shortest path (by IGP cost, tie-break delay) within one AS.

        Raises :class:`TopologyError` if endpoints differ in AS or no path
        exists inside the AS.
        """
        s, d = self.node(src), self.node(dst)
        if s.asn != d.asn:
            raise TopologyError(
                f"intra-AS path requested across ASes: {src}(AS{s.asn}) -> {dst}(AS{d.asn})"
            )
        if src == dst:
            return [src]
        asn = s.asn
        dist: Dict[str, Tuple[float, float]] = {src: (0.0, 0.0)}
        prev: Dict[str, str] = {}
        heap: List[Tuple[float, float, str]] = [(0.0, 0.0, src)]
        while heap:
            cost, delay, cur = heapq.heappop(heap)
            if cur == dst:
                break
            if (cost, delay) > dist.get(cur, (float("inf"), float("inf"))):
                continue
            for nbr, link in self._adj[cur].items():
                if self.nodes[nbr].asn != asn or link.failed:
                    continue
                cand = (cost + link.igp_cost, delay + link.delay_s)
                if cand < dist.get(nbr, (float("inf"), float("inf"))):
                    dist[nbr] = cand
                    prev[nbr] = cur
                    heapq.heappush(heap, (cand[0], cand[1], nbr))
        if dst not in dist:
            raise TopologyError(f"no intra-AS path {src} -> {dst} inside AS{asn}")
        path = [dst]
        while path[-1] != src:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    def path_links(self, node_path: List[str]) -> List[Link]:
        """Links along a node path."""
        return [self.link_between(u, v) for u, v in zip(node_path, node_path[1:])]

    def path_directions(self, node_path: List[str]) -> List[LinkDirection]:
        """Directed link resources along a node path."""
        return [self.link_between(u, v).direction_from(u) for u, v in zip(node_path, node_path[1:])]

    def path_delay_s(self, node_path: List[str]) -> float:
        """One-way propagation delay along a node path."""
        return sum(link.delay_s for link in self.path_links(node_path))

    def path_loss(self, node_path: List[str]) -> float:
        """End-to-end loss probability along a node path."""
        keep = 1.0
        for link in self.path_links(node_path):
            keep *= 1.0 - link.loss
        return 1.0 - keep

    def validate(self) -> None:
        """Sanity checks after construction; raises on problems."""
        for name, nbrs in self._adj.items():
            if self.nodes[name].is_host and len(nbrs) == 0:
                raise TopologyError(f"host {name!r} has no access link")

    def __str__(self) -> str:
        return f"<Topology {len(self.nodes)} nodes, {len(self.links)} links>"
