"""Simulated ``traceroute`` over resolved forwarding paths.

Reproduces the paper's Figs. 5 and 6: hop-by-hop addresses, reverse-DNS
hostnames, and per-probe RTTs — including silent hops (``* * *``) where a
middlebox drops TTL-exceeded probes, which is exactly what the UAlberta
trace shows at its firewall and near Google's edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import units
from repro.net.dns import DnsResolver
from repro.net.routing import ResolvedPath, Router
from repro.net.topology import Topology

__all__ = ["TracerouteHop", "traceroute", "format_traceroute"]

PROBES_PER_HOP = 3


@dataclass(frozen=True)
class TracerouteHop:
    """One line of traceroute output."""

    index: int
    address: Optional[str]  # None when the hop does not respond
    hostname: Optional[str]
    rtts_ms: Tuple[float, ...]

    @property
    def responded(self) -> bool:
        return self.address is not None

    def render(self) -> str:
        if not self.responded:
            return f"{self.index:>2}  * * *"
        rtts = "  ".join(f"{r:.3f} ms" for r in self.rtts_ms)
        return f"{self.index:>2}  {self.hostname} ({self.address})  {rtts}"


def traceroute(
    router: Router,
    src: str,
    dst: str,
    rng: np.random.Generator,
    jitter_ms: float = 0.4,
) -> List[TracerouteHop]:
    """Run a traceroute from host *src* to host *dst*.

    Probes follow the same forwarding state as data traffic (including PBR
    overrides), so a detour artifact visible to transfers is visible here
    — the diagnostic workflow of the paper's Sec. III-A.

    *rng* drives the per-probe RTT jitter and must be supplied by the
    caller (an ``RngRegistry.stream(...)`` or an injected generator) so
    all randomness descends from one master seed.
    """
    topo = router.topology
    path: ResolvedPath = router.resolve(src, dst)
    hops: List[TracerouteHop] = []
    cumulative_s = 0.0
    nodes = list(path.nodes)
    for index, (prev, name) in enumerate(zip(nodes, nodes[1:]), start=1):
        link = topo.link_between(prev, name)
        cumulative_s += link.delay_s + router.per_hop_latency_s
        node = topo.node(name)
        if not node.responds_to_traceroute and name != path.dst:
            hops.append(TracerouteHop(index, None, None, ()))
            continue
        base_ms = units.seconds_to_ms(2.0 * cumulative_s)
        rtts = tuple(
            round(base_ms + float(rng.exponential(jitter_ms)), 3)
            for _ in range(PROBES_PER_HOP)
        )
        hops.append(TracerouteHop(index, node.address, node.hostname, rtts))
    return hops


def format_traceroute(
    hops: Sequence[TracerouteHop],
    dst_hostname: str,
    dst_address: str,
    show_rtts: bool = False,
) -> str:
    """Render hops in the compact style of the paper's figures.

    The paper's figures omit RTTs; pass ``show_rtts=True`` for the full
    traceroute look.
    """
    lines = [f"traceroute to {dst_hostname} ({dst_address})"]
    for hop in hops:
        if show_rtts:
            lines.append(hop.render())
        elif hop.responded:
            lines.append(f"{hop.index:>2}  {hop.hostname} ({hop.address})")
        else:
            lines.append(f"{hop.index:>2}  * * *")
    return "\n".join(lines)
