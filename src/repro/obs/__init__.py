"""repro.obs — observability: metrics, span tracing, kernel profiling.

The layer is strictly passive with respect to the model: metrics and
spans observe values the model already computed (in simulated time), and
a disabled registry/tracer makes every hook a no-op, so instrumented and
uninstrumented runs produce bit-identical results.  Wall-clock access is
confined to :mod:`repro.obs.profile`.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.bench import (
    Regression,
    check_regressions,
    load_bench_results,
    read_ledger,
    record_generation,
    render_trend,
)
from repro.obs.exporters import (
    ObsDump,
    read_jsonl,
    record_trace_health,
    render_metrics_table,
    render_prometheus,
    write_chrome_trace,
    write_collapsed_stacks,
    write_jsonl,
)
from repro.obs.metrics import (
    DURATION_BUCKETS,
    RATE_BUCKETS,
    SIZE_BUCKETS,
    UNIT_SUFFIXES,
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    valid_metric_name,
)
from repro.obs.profile import KernelProfiler, TimelineEvent
from repro.obs.spans import (
    Span,
    SpanRecord,
    SpanTracer,
    extract_span_records,
    span_depths,
)
from repro.obs.telemetry import (
    ProgressSnapshot,
    TelemetryAggregator,
    TelemetryEvent,
    render_event,
    render_progress,
)

__all__ = [
    "Counter",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricSample",
    "MetricsRegistry",
    "ObsDump",
    "ProgressSnapshot",
    "RATE_BUCKETS",
    "Regression",
    "SIZE_BUCKETS",
    "Span",
    "SpanRecord",
    "SpanTracer",
    "TelemetryAggregator",
    "TelemetryEvent",
    "TimelineEvent",
    "UNIT_SUFFIXES",
    "check_regressions",
    "extract_span_records",
    "load_bench_results",
    "read_jsonl",
    "read_ledger",
    "record_generation",
    "record_trace_health",
    "render_event",
    "render_metrics_table",
    "render_progress",
    "render_prometheus",
    "render_trend",
    "span_depths",
    "valid_metric_name",
    "write_chrome_trace",
    "write_collapsed_stacks",
    "write_jsonl",
]
