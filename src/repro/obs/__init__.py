"""repro.obs — observability: metrics, span tracing, kernel profiling.

The layer is strictly passive with respect to the model: metrics and
spans observe values the model already computed (in simulated time), and
a disabled registry/tracer makes every hook a no-op, so instrumented and
uninstrumented runs produce bit-identical results.  Wall-clock access is
confined to :mod:`repro.obs.profile`.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.exporters import (
    ObsDump,
    read_jsonl,
    render_metrics_table,
    render_prometheus,
    write_jsonl,
)
from repro.obs.metrics import (
    DURATION_BUCKETS,
    RATE_BUCKETS,
    SIZE_BUCKETS,
    UNIT_SUFFIXES,
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    valid_metric_name,
)
from repro.obs.profile import KernelProfiler
from repro.obs.spans import (
    Span,
    SpanRecord,
    SpanTracer,
    extract_span_records,
    span_depths,
)

__all__ = [
    "Counter",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricSample",
    "MetricsRegistry",
    "ObsDump",
    "RATE_BUCKETS",
    "SIZE_BUCKETS",
    "Span",
    "SpanRecord",
    "SpanTracer",
    "UNIT_SUFFIXES",
    "extract_span_records",
    "read_jsonl",
    "render_metrics_table",
    "render_prometheus",
    "span_depths",
    "valid_metric_name",
    "write_jsonl",
]
