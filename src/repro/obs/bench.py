"""Bench regression ledger: trend tracking over ``BENCH_*.json`` results.

The benchmark suite (``benchmarks/``) drops one ``BENCH_<suite>.json``
per suite into a results directory — flat JSON with numeric fields
(wall seconds, speedups, counts).  This module turns those snapshots
into an **append-only ledger** (one JSON line per recorded generation)
and checks a fresh snapshot against the last recorded generation,
flagging any metric that moved past a threshold ratio in its *bad*
direction.

Direction is inferred from the key, suffix-first:

* ``*_s`` / ``*_seconds`` / ``*_ms`` — wall time, **lower is better**;
* ``speedup*`` / ``*_speedup`` / ``*_rate`` — **higher is better**;
* anything else is recorded for the trend but never flagged (counts,
  configuration echoes, identifiers).

This module never reads a clock (lint rule SL403): generation stamps
are strings supplied by the caller — the CLI passes a timestamp, tests
pass fixed labels — so the ledger file itself stays deterministic under
test.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ObservabilityError

__all__ = [
    "DEFAULT_THRESHOLD",
    "Regression",
    "check_regressions",
    "direction_of",
    "load_bench_results",
    "read_ledger",
    "record_generation",
    "render_regressions",
    "render_trend",
]

#: A result moving past 1.25x in its bad direction is a regression.
DEFAULT_THRESHOLD = 1.25

#: suite -> {dotted key -> value}
BenchResults = Dict[str, Dict[str, float]]

_LOWER_SUFFIXES = ("_s", "_seconds", "_ms")
_HIGHER_SUFFIXES = ("_speedup", "_rate")


def direction_of(key: str) -> Optional[str]:
    """``"lower"`` / ``"higher"`` = which way is *better*; None = untracked.

    Dotted keys inherit from the innermost component that matches, so
    every leaf under ``regret_s.*`` is lower-is-better.
    """
    for part in reversed(key.split(".")):
        if part.startswith("speedup") or part.endswith(_HIGHER_SUFFIXES):
            return "higher"
        if part.endswith(_LOWER_SUFFIXES):
            return "lower"
    return None


def _flatten(prefix: str, value, out: Dict[str, float]) -> None:
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for k in sorted(value):
            _flatten(f"{prefix}.{k}" if prefix else str(k), value[k], out)
    # strings / lists: configuration echoes, not trendable


def load_bench_results(results_dir: Union[str, Path]) -> BenchResults:
    """Parse every ``BENCH_*.json`` under *results_dir*.

    Nested objects flatten to dotted keys (``regret_s.broker``); only
    numeric leaves survive.  Returns ``{}`` when the directory has no
    bench files; raises on unparseable ones.
    """
    root = Path(results_dir)
    results: BenchResults = {}
    for path in sorted(root.glob("BENCH_*.json")):
        suite = path.stem[len("BENCH_"):]
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ObservabilityError(f"bad bench result {path}: {exc}") from exc
        if not isinstance(raw, dict):
            raise ObservabilityError(
                f"bad bench result {path}: expected a JSON object")
        flat: Dict[str, float] = {}
        _flatten("", raw, flat)
        results[suite] = flat
    return results


def read_ledger(path: Union[str, Path]) -> List[dict]:
    """Load the ledger's generations, oldest first (missing file = [])."""
    p = Path(path)
    if not p.exists():
        return []
    generations: List[dict] = []
    for lineno, line in enumerate(p.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"bad ledger line {lineno} in {p}: {exc}") from exc
        generations.append(record)
    return generations


def record_generation(path: Union[str, Path], results: BenchResults,
                      stamp: str = "", note: str = "") -> int:
    """Append *results* as one generation; returns its number (1-based).

    The ledger is append-only: existing lines are never rewritten, so
    its history survives any tooling bug that misreads it.
    """
    generations = read_ledger(path)
    gen = (generations[-1]["gen"] + 1) if generations else 1
    record = {"gen": gen, "stamp": stamp, "note": note,
              "results": {s: dict(sorted(kv.items()))
                          for s, kv in sorted(results.items())}}
    with open(path, "a", encoding="utf-8") as fp:
        fp.write(json.dumps(record, sort_keys=True) + "\n")
    return gen


@dataclass(frozen=True)
class Regression:
    """One metric that moved past the threshold in its bad direction."""

    suite: str
    key: str
    direction: str       # which way is better
    baseline: float      # last recorded generation's value
    current: float
    ratio: float         # degradation factor (>= 1 means "this much worse")

    def describe(self) -> str:
        arrow = "rose" if self.direction == "lower" else "fell"
        return (f"{self.suite}.{self.key} {arrow} "
                f"{self.baseline:g} -> {self.current:g} "
                f"({self.ratio:.2f}x worse; better is {self.direction})")


def check_regressions(results: BenchResults,
                      ledger: Sequence[dict],
                      threshold: float = DEFAULT_THRESHOLD) -> List[Regression]:
    """Compare *results* against the ledger's last generation.

    A tracked metric regresses when it is *threshold* times worse than
    the baseline: ``current/baseline > threshold`` for lower-is-better,
    ``baseline/current > threshold`` for higher-is-better.  Metrics
    absent from the baseline (new suites, new keys) are never flagged.
    """
    if threshold <= 1.0:
        raise ObservabilityError(
            f"regression threshold must exceed 1.0, got {threshold}")
    if not ledger:
        return []
    baseline = ledger[-1].get("results", {})
    found: List[Regression] = []
    for suite in sorted(results):
        base_suite = baseline.get(suite, {})
        for key in sorted(results[suite]):
            direction = direction_of(key)
            if direction is None:
                continue
            base = base_suite.get(key)
            cur = results[suite][key]
            if base is None or base <= 0 or cur <= 0:
                continue
            ratio = cur / base if direction == "lower" else base / cur
            if ratio > threshold:
                found.append(Regression(suite, key, direction, base, cur,
                                        ratio))
    found.sort(key=lambda r: -r.ratio)
    return found


def render_regressions(regressions: Sequence[Regression],
                       threshold: float) -> str:
    if not regressions:
        return f"bench check: no regressions beyond {threshold:g}x"
    lines = [f"bench check: {len(regressions)} regression(s) "
             f"beyond {threshold:g}x:"]
    lines.extend(f"  {r.describe()}" for r in regressions)
    return "\n".join(lines)


def _trend_cells(values: Sequence[Optional[float]]) -> str:
    return " ".join("      -" if v is None else f"{v:7.3g}" for v in values)


def render_trend(ledger: Sequence[dict], suite: Optional[str] = None,
                 last: int = 8) -> str:
    """Per-metric value trail over the most recent *last* generations."""
    if not ledger:
        return "bench trend: ledger is empty"
    window = list(ledger)[-last:]
    keys: Dict[Tuple[str, str], None] = {}
    for gen in window:
        for s, kv in gen.get("results", {}).items():
            if suite is not None and s != suite:
                continue
            for k in kv:
                if direction_of(k) is not None:
                    keys[(s, k)] = None
    if not keys:
        return "bench trend: no tracked metrics" + (
            f" for suite {suite!r}" if suite is not None else "")
    header = " ".join(f"gen{g['gen']:>4}" for g in window)
    name_w = max(len(f"{s}.{k}") for s, k in keys)
    lines = [f"bench trend ({len(window)} generation(s)):",
             f"  {'':<{name_w}} {header}"]
    for s, k in sorted(keys):
        trail = [g.get("results", {}).get(s, {}).get(k) for g in window]
        lines.append(f"  {f'{s}.{k}':<{name_w}} {_trend_cells(trail)}")
    return "\n".join(lines)
