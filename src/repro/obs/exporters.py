"""Exporters: JSON-lines dump/reload, Prometheus text, metrics tables.

Renderings of the same observability state:

* :func:`write_jsonl` / :func:`read_jsonl` — a lossless line-per-record
  dump of metric samples and trace events, for offline analysis.  The
  reader is the round-trip inverse of the writer.
* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` / cumulative ``le`` histogram buckets,
  escaped label values).
* :func:`render_metrics_table` — a human-readable aligned table for
  terminal output (``repro ... --metrics -``).
* :func:`write_chrome_trace` / :func:`write_collapsed_stacks` — profiler
  timeline exports: Perfetto/``chrome://tracing`` JSON and the collapsed
  stack format flamegraph tools consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import IO, Iterable, List, Tuple

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricSample, MetricsRegistry
from repro.obs.profile import KernelProfiler
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "ObsDump",
    "read_jsonl",
    "record_trace_health",
    "render_metrics_table",
    "render_prometheus",
    "write_chrome_trace",
    "write_collapsed_stacks",
    "write_jsonl",
]


@dataclass(frozen=True)
class ObsDump:
    """Everything :func:`read_jsonl` recovers from a dump."""

    metrics: Tuple[MetricSample, ...]
    events: Tuple[TraceEvent, ...]


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------


def write_jsonl(fp: IO[str], metrics: MetricsRegistry = None,
                tracer: Tracer = None) -> int:
    """Dump metric samples and trace events, one JSON object per line.

    Returns the number of lines written.  Either argument may be None to
    dump only the other half.
    """
    n = 0
    if metrics is not None:
        for s in metrics.collect():
            record = {"type": "metric", **s.to_dict()}
            fp.write(json.dumps(record, sort_keys=True) + "\n")
            n += 1
    if tracer is not None:
        for ev in tracer:
            record = {
                "type": "event",
                "time": ev.time,
                "component": ev.component,
                "kind": ev.kind,
                "fields": ev.fields,
            }
            fp.write(json.dumps(record, sort_keys=True) + "\n")
            n += 1
    return n


def read_jsonl(fp: IO[str]) -> ObsDump:
    """Reload a :func:`write_jsonl` dump; the round-trip is lossless."""
    metrics: List[MetricSample] = []
    events: List[TraceEvent] = []
    for lineno, line in enumerate(fp, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"bad JSONL at line {lineno}: {exc}") from exc
        rtype = record.get("type")
        if rtype == "metric":
            metrics.append(MetricSample.from_dict(record))
        elif rtype == "event":
            events.append(
                TraceEvent(
                    time=record["time"],
                    component=record["component"],
                    kind=record["kind"],
                    fields=record["fields"],
                )
            )
        else:
            raise ObservabilityError(
                f"bad JSONL at line {lineno}: unknown record type {rtype!r}"
            )
    return ObsDump(metrics=tuple(metrics), events=tuple(events))


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _fmt_value(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _escape_label_value(v: str) -> str:
    """Prometheus label-value escaping: backslash, double-quote, newline."""
    return str(v).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(labels: Iterable[Tuple[str, str]], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text format; histogram buckets rendered cumulatively."""
    lines: List[str] = []
    for metric in registry:
        samples = metric.samples()
        if not samples:
            continue
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for s in samples:
            if s.kind == "histogram":
                cum = 0
                for bound, n in zip(s.buckets, s.bucket_counts):
                    cum += n
                    le = _fmt_labels(s.labels, f'le="{_fmt_value(bound)}"')
                    lines.append(f"{s.name}_bucket{le} {cum}")
                le = _fmt_labels(s.labels, 'le="+Inf"')
                lines.append(f"{s.name}_bucket{le} {s.count}")
                lines.append(f"{s.name}_sum{_fmt_labels(s.labels)} {_fmt_value(s.value)}")
                lines.append(f"{s.name}_count{_fmt_labels(s.labels)} {s.count}")
            else:
                lines.append(f"{s.name}{_fmt_labels(s.labels)} {_fmt_value(s.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Trace ring-buffer health
# ---------------------------------------------------------------------------


def record_trace_health(registry: MetricsRegistry, tracer: Tracer) -> None:
    """Publish the tracer's ring-buffer state as ``repro_trace_*`` metrics.

    The counter is levelled against the tracer's lifetime ``dropped``
    count (never decremented), so calling this after every export stays
    idempotent while the buffer keeps evicting.
    """
    events = registry.gauge(
        "repro_trace_events_count",
        "Trace events currently retained in the ring buffer")
    dropped = registry.counter(
        "repro_trace_dropped_total",
        "Trace events evicted by the ring buffer since the run started")
    events.set(len(tracer))
    dropped.inc(max(0.0, tracer.dropped - dropped.value()))


# ---------------------------------------------------------------------------
# Profiler timeline exports
# ---------------------------------------------------------------------------


def write_chrome_trace(fp: IO[str], profiler: KernelProfiler) -> int:
    """Write the profiler timeline as Chrome-trace/Perfetto JSON.

    Returns the number of timeline events exported.  Load the file at
    ``chrome://tracing`` or https://ui.perfetto.dev — events are grouped
    per event type (callback component) with stack paths in ``args``.
    """
    trace = profiler.chrome_trace()
    json.dump(trace, fp, sort_keys=True)
    fp.write("\n")
    return sum(1 for ev in trace["traceEvents"] if ev.get("ph") == "X")


def write_collapsed_stacks(fp: IO[str], profiler: KernelProfiler) -> int:
    """Write self-time-weighted collapsed stacks (flamegraph.pl format).

    One ``frame;frame;frame <self-µs>`` line per distinct stack path;
    returns the line count.
    """
    text = profiler.collapsed_stacks()
    if text:
        fp.write(text + "\n")
    return len(text.splitlines()) if text else 0


# ---------------------------------------------------------------------------
# Terminal table
# ---------------------------------------------------------------------------


def _sparkline(counts: Tuple[int, ...]) -> str:
    """Tiny per-bucket bar using ASCII density characters."""
    peak = max(counts) if counts else 0
    if not peak:
        return ""
    glyphs = " .:-=+*#"
    return "".join(glyphs[min(len(glyphs) - 1, (n * (len(glyphs) - 1) + peak - 1) // peak)]
                   for n in counts)


def render_metrics_table(registry: MetricsRegistry) -> str:
    """Aligned text table of every non-empty sample in the registry."""
    samples = registry.collect()
    if not samples:
        return "metrics: (empty)"
    name_w = max(len(s.name) for s in samples)
    label_w = max((len(_fmt_labels(s.labels)) for s in samples), default=0)
    lines = [f"metrics ({len(samples)} samples):"]
    for s in samples:
        labels = _fmt_labels(s.labels)
        if s.kind == "histogram":
            detail = (
                f"count={s.count} sum={s.value:.6g} mean={s.mean:.6g} "
                f"|{_sparkline(s.bucket_counts)}|"
            )
        else:
            detail = f"{s.value:.6g}"
        lines.append(f"  {s.name:<{name_w}} {labels:<{label_w}} {detail}")
    return "\n".join(lines)
