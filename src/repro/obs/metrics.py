"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is **sim-time-safe**: instruments never read wall clocks or
any other ambient state — every observed value (a duration, a byte count,
a rate) is computed by the caller, usually from kernel time (`sim.now`),
so an instrumented run is bit-identical to an uninstrumented one (see
``docs/invariants.md``).  Profiling, which *does* read the wall clock,
lives in :mod:`repro.obs.profile` and is opt-in separately.

Naming convention (enforced here and by the ``SL401`` lint rule): metric
names are ``snake_case``, start with ``repro_``, and end with a unit
suffix from :data:`UNIT_SUFFIXES` — e.g.
``repro_engine_flows_started_total``, ``repro_api_upload_seconds``.

Instruments support labels::

    uploads = registry.counter("repro_api_uploads_total", "API uploads")
    uploads.inc(provider="gdrive")

A registry constructed with ``enabled=False`` still hands out instrument
objects (so call sites hold stable references), but every mutator is a
near-zero-cost no-op — the benchmark fast path.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "UNIT_SUFFIXES",
    "DURATION_BUCKETS",
    "RATE_BUCKETS",
    "SIZE_BUCKETS",
    "valid_metric_name",
]

#: Allowed unit suffixes; ``_total`` marks unitless event counters.
UNIT_SUFFIXES: Tuple[str, ...] = ("total", "seconds", "bytes", "bps", "ratio", "count")

_NAME_RE = re.compile(
    r"^repro_[a-z0-9]+(?:_[a-z0-9]+)*_(?:" + "|".join(UNIT_SUFFIXES) + r")$"
)

#: Default duration buckets (seconds): spans sub-RTT control exchanges up
#: to the multi-minute transfers of the paper's 1 GB points.
DURATION_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
)

#: Default rate buckets (bits/second): the case study spans ~1 Mbit/s
#: last-mile caps to 10 Gbit/s backbone shares.
RATE_BUCKETS: Tuple[float, ...] = (
    1e5, 5e5, 1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 5e8, 1e9, 1e10,
)

#: Default size buckets (bytes): 1 kB .. 1 GB, the paper's file sweep.
SIZE_BUCKETS: Tuple[float, ...] = (
    1e3, 1e4, 1e5, 1e6, 1e7, 5e7, 1e8, 5e8, 1e9,
)

LabelKey = Tuple[Tuple[str, str], ...]


def valid_metric_name(name: str) -> bool:
    """True when *name* follows the ``repro_*_<unit>`` convention."""
    return bool(_NAME_RE.match(name))


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class MetricSample:
    """One exported time-series point: an instrument at one label set."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: LabelKey
    value: float  # counter/gauge value; histogram: sum of observations
    count: int = 0  # histogram: number of observations
    buckets: Tuple[float, ...] = ()  # histogram: finite upper bounds
    bucket_counts: Tuple[int, ...] = ()  # histogram: per-bucket (non-cumulative,
    # one extra trailing entry for the implicit +inf bucket)

    @property
    def mean(self) -> float:
        return self.value / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON/pipe-safe view; the shape behind the JSONL exporter and
        the campaign worker->parent metric hand-off."""
        record = {
            "name": self.name,
            "kind": self.kind,
            "labels": [list(pair) for pair in self.labels],
            "value": self.value,
        }
        if self.kind == "histogram":
            record["count"] = self.count
            record["buckets"] = list(self.buckets)
            record["bucket_counts"] = list(self.bucket_counts)
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "MetricSample":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=record["name"],
            kind=record["kind"],
            labels=tuple((k, v) for k, v in record["labels"]),
            value=record["value"],
            count=record.get("count", 0),
            buckets=tuple(record.get("buckets", ())),
            bucket_counts=tuple(record.get("bucket_counts", ())),
        )


class _Instrument:
    """Shared bookkeeping for all instrument kinds."""

    kind = "instrument"

    def __init__(self, name: str, help: str, enabled: bool):
        self.name = name
        self.help = help
        self._enabled = enabled
        self._values: Dict[LabelKey, object] = {}

    @property
    def enabled(self) -> bool:
        return self._enabled

    def label_sets(self) -> List[LabelKey]:
        return sorted(self._values)

    def clear(self) -> None:
        self._values.clear()

    def samples(self) -> List[MetricSample]:
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing count (events, bytes, retries)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._enabled:
            return
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return float(self._values.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum over every label set."""
        return float(sum(self._values.values()))

    def merge_sample(self, sample: MetricSample) -> None:
        """Fold another process's sample in: counters add."""
        if not self._enabled:
            return
        key = tuple(sample.labels)
        self._values[key] = self._values.get(key, 0.0) + float(sample.value)

    def samples(self) -> List[MetricSample]:
        return [
            MetricSample(self.name, self.kind, key, float(v))
            for key, v in sorted(self._values.items())
        ]


class Gauge(_Instrument):
    """A value that can go up and down (active flows, an EWMA estimate)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        if not self._enabled:
            return
        self._values[_label_key(labels)] = float(value)

    def add(self, delta: float, **labels: object) -> None:
        if not self._enabled:
            return
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + delta

    def value(self, **labels: object) -> float:
        return float(self._values.get(_label_key(labels), 0.0))

    def merge_sample(self, sample: MetricSample) -> None:
        """Fold another process's sample in: gauges take the last value
        merged (levels like "active flows" do not sum across workers)."""
        if not self._enabled:
            return
        self._values[tuple(sample.labels)] = float(sample.value)

    def samples(self) -> List[MetricSample]:
        return [
            MetricSample(self.name, self.kind, key, float(v))
            for key, v in sorted(self._values.items())
        ]


class Histogram(_Instrument):
    """Fixed-bucket distribution; buckets are finite upper bounds.

    Observations above the last bound land in an implicit +inf bucket.
    Per-bucket counts are stored non-cumulatively; exporters that need
    Prometheus's cumulative ``le`` semantics accumulate at render time.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, enabled: bool,
                 buckets: Sequence[float] = DURATION_BUCKETS):
        super().__init__(name, help, enabled)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObservabilityError(f"histogram {name} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {name} buckets must be strictly increasing: {bounds}"
            )
        if bounds[-1] == float("inf"):
            raise ObservabilityError(
                f"histogram {name}: the +inf bucket is implicit; give finite bounds"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        if not self._enabled:
            return
        key = _label_key(labels)
        state = self._values.get(key)
        if state is None:
            # [per-bucket counts (+1 for +inf), sum, count]
            state = [[0] * (len(self.buckets) + 1), 0.0, 0]
            self._values[key] = state
        state[0][bisect_left(self.buckets, value)] += 1
        state[1] += value
        state[2] += 1

    def count(self, **labels: object) -> int:
        state = self._values.get(_label_key(labels))
        return state[2] if state else 0

    def sum(self, **labels: object) -> float:
        state = self._values.get(_label_key(labels))
        return float(state[1]) if state else 0.0

    def mean(self, **labels: object) -> float:
        state = self._values.get(_label_key(labels))
        return float(state[1]) / state[2] if state and state[2] else 0.0

    def merge_sample(self, sample: MetricSample) -> None:
        """Fold another process's sample in: bucket counts, sum, and
        count add (both sides must agree on the bucket bounds)."""
        if not self._enabled:
            return
        if tuple(sample.buckets) != self.buckets:
            raise ObservabilityError(
                f"histogram {self.name}: cannot merge a sample with buckets "
                f"{tuple(sample.buckets)} into {self.buckets}"
            )
        key = tuple(sample.labels)
        state = self._values.get(key)
        if state is None:
            state = [[0] * (len(self.buckets) + 1), 0.0, 0]
            self._values[key] = state
        for i, n in enumerate(sample.bucket_counts):
            state[0][i] += int(n)
        state[1] += float(sample.value)
        state[2] += int(sample.count)

    def approx_quantile(self, q: float, **labels: object) -> float:
        """Bucket-resolution quantile (linear within the bucket)."""
        if not (0.0 <= q <= 1.0):
            raise ObservabilityError(f"quantile must be in [0,1], got {q}")
        state = self._values.get(_label_key(labels))
        if not state or not state[2]:
            return 0.0
        target = q * state[2]
        seen = 0
        lo = 0.0
        for i, n in enumerate(state[0]):
            hi = self.buckets[i] if i < len(self.buckets) else lo
            if n and seen + n >= target:
                frac = (target - seen) / n
                return lo + (hi - lo) * frac
            seen += n
            lo = hi
        return lo

    def samples(self) -> List[MetricSample]:
        return [
            MetricSample(
                self.name, self.kind, key,
                value=float(state[1]), count=state[2],
                buckets=self.buckets, bucket_counts=tuple(state[0]),
            )
            for key, state in sorted(self._values.items())
        ]


class MetricsRegistry:
    """Named instruments keyed by component; the one handle a World holds.

    Registration is idempotent: asking for an existing name returns the
    same instrument (the kind — and, for histograms, the buckets — must
    match).  Disabled registries register normally but record nothing.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[str, _Instrument] = {}

    # -- registration -----------------------------------------------------

    def _register(self, cls, name: str, help: str, **kwargs) -> _Instrument:
        if not valid_metric_name(name):
            raise ObservabilityError(
                f"bad metric name {name!r}: must be snake_case, start with "
                f"'repro_', and end with a unit suffix {UNIT_SUFFIXES}"
            )
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ObservabilityError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            if kwargs.get("buckets") is not None and isinstance(existing, Histogram):
                if tuple(float(b) for b in kwargs["buckets"]) != existing.buckets:
                    raise ObservabilityError(
                        f"histogram {name!r} re-registered with different buckets"
                    )
            return existing
        instrument = cls(name, help, self.enabled, **kwargs)
        self._metrics[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DURATION_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    # -- access -----------------------------------------------------------

    def get(self, name: str) -> Optional[_Instrument]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[_Instrument]:
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def collect(self) -> List[MetricSample]:
        """Every sample from every instrument, sorted by (name, labels)."""
        out: List[MetricSample] = []
        for metric in self:
            out.extend(metric.samples())
        return out

    def merge_samples(self, samples: Sequence[MetricSample]) -> None:
        """Fold samples from another registry (usually another process) in.

        Instruments are registered on demand with the sample's kind (and,
        for histograms, its buckets).  Counters add, gauges take the last
        value merged, histograms add bucket counts — so a campaign parent
        aggregating its workers in deterministic spec order produces the
        same registry no matter how the cells were scheduled.  A disabled
        registry absorbs nothing, as usual.
        """
        for s in samples:
            if s.kind == "counter":
                self.counter(s.name).merge_sample(s)
            elif s.kind == "gauge":
                self.gauge(s.name).merge_sample(s)
            elif s.kind == "histogram":
                self.histogram(s.name, buckets=s.buckets).merge_sample(s)
            else:
                raise ObservabilityError(
                    f"cannot merge sample of unknown kind {s.kind!r}"
                )

    def clear(self) -> None:
        """Reset all recorded values (registrations survive)."""
        for metric in self._metrics.values():
            metric.clear()
