"""Kernel profiling: hierarchical wall-time attribution for the simulator.

This is the ONE place in the package allowed to read a wall clock
(``time.perf_counter``) — profiling measures the *simulator's* real cost,
not simulated time, so it is exempt from the SL101 determinism rule, and
lint rule SL403 machine-checks that no other ``repro.obs`` module reads
a clock (``repro.obs`` is not a model package; see ``docs/invariants.md``).
Profiling never feeds back into model state: timings are write-only
accumulators rendered after the run.

The v2 profiler keeps the v1 surface (``run_callback`` / ``begin`` /
``end_section`` / ``count``) and adds:

* **hierarchical attribution** — sections opened while a callback (or an
  outer section) is running are charged as its children, so every stack
  path carries *cumulative* and *self* wall time plus a call count;
* **per-event-type rollups** — callback frames aggregated by their
  defining component (``repro.net.engine`` vs ``repro.sim.kernel``), the
  view that says which event types dominate;
* **bytes-touched counters** — ``count_bytes(key, n)`` accumulates how
  much payload a hot section handled, giving bytes/second per section;
* **a lossless timeline** (opt-in: ``timeline=True``) — every frame is
  recorded with its start offset, duration, stack, and the simulated
  time it ran at, exportable as Chrome-trace/Perfetto JSON
  (:meth:`chrome_trace`) or collapsed stacks (:meth:`collapsed_stacks`)
  for flamegraph tooling.

Usage::

    profiler = KernelProfiler(timeline=True)
    sim = Simulator(profiler=profiler)
    ...
    print(profiler.report())
    json.dump(profiler.chrome_trace(), open("trace.json", "w"))
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["KernelProfiler", "TimelineEvent"]

#: A stack path: root frame name first, innermost frame last.
StackPath = Tuple[str, ...]


def _callback_key(fn: Callable[[], None]) -> str:
    """Stable attribution key for a scheduled callback."""
    module = getattr(fn, "__module__", "") or ""
    qual = getattr(fn, "__qualname__", None) or getattr(fn, "__name__", repr(fn))
    # Closures show up as "Outer._method.<locals>.inner"; keep the owner.
    qual = qual.replace(".<locals>", "")
    return f"{module}.{qual}" if module else qual


def _component_of(key: str) -> str:
    """Event-type grouping: the defining module of a callback key.

    ``repro.net.engine.NetworkEngine._complete`` -> ``repro.net.engine``;
    bracketed section names (``net.engine.reallocate``) and other keys
    without CamelCase segments group under their dotted prefix.
    """
    parts = key.split(".")
    for i, part in enumerate(parts):
        bare = part.lstrip("_")  # private classes (_Delay) count too
        if part and (part[0] == "<" or (bare and bare[0].isupper())):
            return ".".join(parts[:i]) or key
    return ".".join(parts[:-1]) or key


class TimelineEvent:
    """One recorded frame occurrence (timeline mode only)."""

    __slots__ = ("stack", "start_s", "duration_s", "sim_time_s")

    def __init__(self, stack: StackPath, start_s: float, duration_s: float,
                 sim_time_s: float):
        self.stack = stack
        self.start_s = start_s
        self.duration_s = duration_s
        self.sim_time_s = sim_time_s

    @property
    def name(self) -> str:
        return self.stack[-1]


class _Node:
    """Per-stack-path accumulator."""

    __slots__ = ("calls", "cum_s", "child_s", "kind")

    def __init__(self) -> None:
        self.calls = 0
        self.cum_s = 0.0
        self.child_s = 0.0
        self.kind = "section"  # "callback" | "section"

    @property
    def self_s(self) -> float:
        return max(0.0, self.cum_s - self.child_s)


class KernelProfiler:
    """Accumulates wall time per stack path, event counts, and bytes.

    ``run_callback`` is the kernel hook: :meth:`Simulator.step` routes
    every event through it (passing the simulated time it fires at) when
    a profiler is attached.  ``begin`` / ``end_section`` bracket named
    hot sections (e.g. the engine's reallocation loop) that aren't whole
    callbacks; sections opened under a live callback frame nest under it.

    Parameters
    ----------
    enabled:
        ``False`` turns every hook into a pass-through no-op.
    timeline:
        Record every frame occurrence for Chrome-trace export.  Costs
        one small object per event; bounded by ``max_timeline_events``
        (overflow drops the *newest* frames and counts them in
        :attr:`timeline_dropped`, keeping the trace prefix contiguous).
    """

    def __init__(self, enabled: bool = True, timeline: bool = False,
                 max_timeline_events: int = 1_000_000):
        self.enabled = enabled
        self.timeline = timeline
        self.max_timeline_events = max_timeline_events
        self._nodes: Dict[StackPath, _Node] = {}
        self._counts: Dict[str, int] = {}
        self._bytes: Dict[str, int] = {}
        self._stack: List[str] = []
        self._events: List[TimelineEvent] = []
        self.timeline_dropped = 0
        self.events_total = 0
        self._epoch: Optional[float] = None  # first perf_counter reading

    # -- frame machinery ---------------------------------------------------

    def _clock(self) -> float:
        t = time.perf_counter()
        if self._epoch is None:
            self._epoch = t
        return t

    def _charge(self, path: StackPath, t0: float, t1: float,
                sim_time_s: float, kind: str) -> None:
        dt = t1 - t0
        node = self._nodes.get(path)
        if node is None:
            node = self._nodes[path] = _Node()
        # A parent node materialised by a child's charge carries the
        # default kind until the parent frame itself closes — stamp it
        # on every charge so the owning frame always wins.
        node.kind = kind
        node.calls += 1
        node.cum_s += dt
        if len(path) > 1:
            parent = self._nodes.get(path[:-1])
            if parent is None:
                parent = self._nodes[path[:-1]] = _Node()
            parent.child_s += dt
        if self.timeline:
            if len(self._events) < self.max_timeline_events:
                self._events.append(
                    TimelineEvent(path, t0 - self._epoch, dt, sim_time_s))
            else:
                self.timeline_dropped += 1

    # -- kernel hook -------------------------------------------------------

    def run_callback(self, fn: Callable[[], None], sim_time_s: float = 0.0) -> None:
        """Execute *fn* and charge its wall time to its definition site.

        *sim_time_s* is the simulated instant the event fires at (the
        kernel passes ``sim.now``); it is carried into the timeline so a
        Chrome trace correlates wall cost with simulated progress.
        """
        if not self.enabled:
            fn()
            return
        self.events_total += 1
        self._stack.append(_callback_key(fn))
        path = tuple(self._stack)
        t0 = self._clock()
        try:
            fn()
        finally:
            t1 = time.perf_counter()
            self._stack.pop()
            self._charge(path, t0, t1, sim_time_s, "callback")

    # -- section accounting ------------------------------------------------

    def begin(self) -> Optional[float]:
        """Start a section clock; returns None when disabled."""
        if not self.enabled:
            return None
        self._stack.append("")  # placeholder; named at end_section time
        return self._clock()

    def end_section(self, key: str, t0: Optional[float],
                    sim_time_s: float = 0.0) -> Optional[float]:
        """Charge wall time since *t0* (from :meth:`begin`) to *key*.

        The section nests under whatever frame was live at ``begin``
        time, so engine sections show up as children of the callback
        that entered them.  Returns the elapsed wall seconds (``None``
        when disabled) so callers outside the profiler — which may not
        read a clock themselves — can export the duration as a metric.
        """
        if t0 is None or not self.enabled:
            return None
        t1 = time.perf_counter()
        self._stack.pop()
        self._charge(tuple(self._stack) + (key,), t0, t1, sim_time_s, "section")
        return t1 - t0

    # -- event / byte counts -----------------------------------------------

    def count(self, key: str, n: int = 1) -> None:
        """Bump a per-component event counter (cheap, count-only)."""
        if not self.enabled:
            return
        self._counts[key] = self._counts.get(key, 0) + n

    def count_bytes(self, key: str, nbytes: float) -> None:
        """Accumulate payload bytes touched under *key*."""
        if not self.enabled:
            return
        self._bytes[key] = self._bytes.get(key, 0) + int(nbytes)

    # -- access ------------------------------------------------------------

    def stack_stats(self) -> List[Tuple[StackPath, int, float, float]]:
        """``(path, calls, cum_seconds, self_seconds)`` by cum time desc."""
        return sorted(
            ((path, n.calls, n.cum_s, n.self_s) for path, n in self._nodes.items()),
            key=lambda row: (-row[2], row[0]),
        )

    def callback_stats(self) -> List[Tuple[str, int, float]]:
        """``(key, calls, wall_seconds)`` for root (callback) frames,
        sorted by wall time descending — the v1 view."""
        agg: Dict[str, List[float]] = {}
        for path, node in self._nodes.items():
            if len(path) != 1 or node.kind != "callback":
                continue
            cell = agg.setdefault(path[0], [0, 0.0])
            cell[0] += node.calls
            cell[1] += node.cum_s
        return sorted(((k, int(c), w) for k, (c, w) in agg.items()),
                      key=lambda row: (-row[2], row[0]))

    def component_stats(self) -> List[Tuple[str, int, float]]:
        """``(component, events, wall_seconds)`` — root frames grouped by
        defining module: the per-event-type attribution."""
        agg: Dict[str, List[float]] = {}
        for key, calls, wall in self.callback_stats():
            cell = agg.setdefault(_component_of(key), [0, 0.0])
            cell[0] += calls
            cell[1] += wall
        return sorted(((k, int(c), w) for k, (c, w) in agg.items()),
                      key=lambda row: (-row[2], row[0]))

    def section_stats(self) -> List[Tuple[str, int, float]]:
        """``(key, enters, cum_seconds)`` for section frames, aggregated
        over every stack they appear under — the v1 view."""
        agg: Dict[str, List[float]] = {}
        for path, node in self._nodes.items():
            if node.kind != "section":
                continue
            cell = agg.setdefault(path[-1], [0, 0.0])
            cell[0] += node.calls
            cell[1] += node.cum_s
        return sorted(((k, int(c), w) for k, (c, w) in agg.items()),
                      key=lambda row: (-row[2], row[0]))

    def counts(self) -> List[Tuple[str, int]]:
        return sorted(self._counts.items())

    def bytes_counts(self) -> List[Tuple[str, int]]:
        return sorted(self._bytes.items())

    @property
    def timeline_events(self) -> List[TimelineEvent]:
        return list(self._events)

    # -- exports -----------------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        """The timeline as a Chrome-trace / Perfetto JSON object.

        Complete (``"ph": "X"``) events on one pid/tid, timestamps in
        microseconds from the profiler's first clock reading, each event
        carrying its simulated time and stack in ``args``.  Aggregate
        per-event-type counters ride along as named metadata.  Requires
        ``timeline=True``; without it only the metadata is emitted.
        """
        trace_events: List[Dict[str, Any]] = [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 1,
             "args": {"name": "repro simulator"}},
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
             "args": {"name": "kernel event loop"}},
        ]
        for ev in self._events:
            trace_events.append({
                "name": ev.name,
                "cat": _component_of(ev.name),
                "ph": "X",
                "ts": round(ev.start_s * 1e6, 3),
                "dur": round(ev.duration_s * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": {"sim_time_s": round(ev.sim_time_s, 9),
                         "stack": ";".join(ev.stack)},
            })
        return {
            "displayTimeUnit": "ms",
            "traceEvents": trace_events,
            "otherData": {
                "events_total": self.events_total,
                "timeline_dropped": self.timeline_dropped,
                "component_wall_ms": {
                    comp: round(wall * 1e3, 3)
                    for comp, _, wall in self.component_stats()
                },
            },
        }

    def collapsed_stacks(self) -> str:
        """Accumulated stacks in collapsed (flamegraph.pl / speedscope)
        format: one ``frame;frame;frame <self-microseconds>`` per line,
        sorted by stack for deterministic output."""
        lines = []
        for path in sorted(self._nodes):
            us = int(round(self._nodes[path].self_s * 1e6))
            if us > 0:
                lines.append(f"{';'.join(path)} {us}")
        return "\n".join(lines)

    # -- report ------------------------------------------------------------

    def report(self, limit: int = 15) -> str:
        """ASCII profile: event types, top stacks by cum time, counts."""
        lines = [f"kernel profile: {self.events_total} events"]
        roots = self.callback_stats()
        total_wall = sum(w for _, _, w in roots)
        lines.append(f"  total callback wall time: {total_wall * 1e3:.1f} ms")
        components = self.component_stats()
        if components:
            lines.append(f"  {'event type (component)':<52} {'events':>8} "
                         f"{'wall ms':>9} {'%':>6}")
            for comp, calls, wall in components:
                pct = 100.0 * wall / total_wall if total_wall else 0.0
                lines.append(f"  {comp:<52} {calls:>8} {wall * 1e3:>9.2f} "
                             f"{pct:>5.1f}%")
        stacks = self.stack_stats()
        if stacks:
            lines.append(f"  {'stack (indent = depth)':<52} {'calls':>8} "
                         f"{'cum ms':>9} {'self ms':>9}")
            shown = 0
            for path, calls, cum, self_s in stacks:
                if shown >= limit:
                    rest = len(stacks) - shown
                    lines.append(f"  {'(' + str(rest) + ' more)':<52}")
                    break
                label = "  " * (len(path) - 1) + path[-1]
                lines.append(f"  {label:<52} {calls:>8} {cum * 1e3:>9.2f} "
                             f"{self_s * 1e3:>9.2f}")
                shown += 1
        counts = self.counts()
        if counts:
            lines.append(f"  {'event count':<52} {'n':>8}")
            for key, n in counts:
                lines.append(f"  {key:<52} {n:>8}")
        nbytes = self.bytes_counts()
        if nbytes:
            lines.append(f"  {'bytes touched':<52} {'bytes':>14}")
            for key, n in nbytes:
                lines.append(f"  {key:<52} {n:>14}")
        if self.timeline_dropped:
            lines.append(f"  timeline: {self.timeline_dropped} event(s) "
                         f"dropped beyond max_timeline_events="
                         f"{self.max_timeline_events}")
        return "\n".join(lines)

    def clear(self) -> None:
        self._nodes.clear()
        self._counts.clear()
        self._bytes.clear()
        self._stack.clear()
        self._events.clear()
        self.timeline_dropped = 0
        self.events_total = 0
        self._epoch = None
