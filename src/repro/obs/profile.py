"""Kernel profiling: per-callback wall-time and per-component event counts.

This is the ONE place in the package allowed to read a wall clock
(``time.perf_counter``) — profiling measures the *simulator's* real cost,
not simulated time, so it is exempt from the SL101 determinism rule
(``repro.obs`` is not a model package; see ``docs/invariants.md``).
Profiling never feeds back into model state: timings are write-only
accumulators rendered after the run.

Usage::

    profiler = KernelProfiler()
    sim = Simulator(profiler=profiler)
    ...
    print(profiler.report())
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["KernelProfiler"]


def _callback_key(fn: Callable[[], None]) -> str:
    """Stable attribution key for a scheduled callback."""
    module = getattr(fn, "__module__", "") or ""
    qual = getattr(fn, "__qualname__", None) or getattr(fn, "__name__", repr(fn))
    # Closures show up as "Outer._method.<locals>.inner"; keep the owner.
    qual = qual.replace(".<locals>", "")
    return f"{module}.{qual}" if module else qual


class KernelProfiler:
    """Accumulates wall-time per callback site and event counts per key.

    ``run_callback`` is the kernel hook: :meth:`Simulator.step` routes
    every event through it when a profiler is attached.  ``begin`` /
    ``end_section`` bracket named hot sections (e.g. the engine's
    reallocation loop) that aren't whole callbacks.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        # key -> [calls, wall_seconds]
        self._callbacks: Dict[str, List[float]] = {}
        self._sections: Dict[str, List[float]] = {}
        self._counts: Dict[str, int] = {}
        self.events_total = 0

    # -- kernel hook -------------------------------------------------------

    def run_callback(self, fn: Callable[[], None]) -> None:
        """Execute *fn* and charge its wall time to its definition site."""
        if not self.enabled:
            fn()
            return
        self.events_total += 1
        t0 = time.perf_counter()
        try:
            fn()
        finally:
            dt = time.perf_counter() - t0
            key = _callback_key(fn)
            cell = self._callbacks.get(key)
            if cell is None:
                self._callbacks[key] = [1, dt]
            else:
                cell[0] += 1
                cell[1] += dt

    # -- section accounting ------------------------------------------------

    def begin(self) -> Optional[float]:
        """Start a section clock; returns None when disabled."""
        return time.perf_counter() if self.enabled else None

    def end_section(self, key: str, t0: Optional[float]) -> None:
        """Charge wall time since *t0* (from :meth:`begin`) to *key*."""
        if t0 is None or not self.enabled:
            return
        dt = time.perf_counter() - t0
        cell = self._sections.get(key)
        if cell is None:
            self._sections[key] = [1, dt]
        else:
            cell[0] += 1
            cell[1] += dt

    # -- event counts ------------------------------------------------------

    def count(self, key: str, n: int = 1) -> None:
        """Bump a per-component event counter (cheap, count-only)."""
        if not self.enabled:
            return
        self._counts[key] = self._counts.get(key, 0) + n

    # -- access ------------------------------------------------------------

    def callback_stats(self) -> List[Tuple[str, int, float]]:
        """``(key, calls, wall_seconds)`` sorted by wall time descending."""
        return sorted(
            ((k, int(c), w) for k, (c, w) in self._callbacks.items()),
            key=lambda row: (-row[2], row[0]),
        )

    def section_stats(self) -> List[Tuple[str, int, float]]:
        return sorted(
            ((k, int(c), w) for k, (c, w) in self._sections.items()),
            key=lambda row: (-row[2], row[0]),
        )

    def counts(self) -> List[Tuple[str, int]]:
        return sorted(self._counts.items())

    def report(self, limit: int = 15) -> str:
        """ASCII profile: top callbacks by wall time, sections, counts."""
        lines = [f"kernel profile: {self.events_total} events"]
        rows = self.callback_stats()
        total_wall = sum(w for _, _, w in rows)
        lines.append(f"  total callback wall time: {total_wall * 1e3:.1f} ms")
        if rows:
            lines.append(f"  {'callback':<52} {'calls':>8} {'wall ms':>9} {'%':>6}")
            for key, calls, wall in rows[:limit]:
                pct = 100.0 * wall / total_wall if total_wall else 0.0
                lines.append(f"  {key:<52} {calls:>8} {wall * 1e3:>9.2f} {pct:>5.1f}%")
            if len(rows) > limit:
                rest = sum(w for _, _, w in rows[limit:])
                lines.append(
                    f"  {'(' + str(len(rows) - limit) + ' more)':<52} "
                    f"{'':>8} {rest * 1e3:>9.2f}"
                )
        sections = self.section_stats()
        if sections:
            lines.append(f"  {'section':<52} {'enters':>8} {'wall ms':>9}")
            for key, calls, wall in sections:
                lines.append(f"  {key:<52} {calls:>8} {wall * 1e3:>9.2f}")
        counts = self.counts()
        if counts:
            lines.append(f"  {'event count':<52} {'n':>8}")
            for key, n in counts:
                lines.append(f"  {key:<52} {n:>8}")
        return "\n".join(lines)

    def clear(self) -> None:
        self._callbacks.clear()
        self._sections.clear()
        self._counts.clear()
        self.events_total = 0
