"""Span tracing layered on the event :class:`~repro.sim.trace.Tracer`.

A *span* is a named interval of simulated time.  Entering the context
manager emits a ``span_begin`` trace event; leaving it emits a matched
``span_end`` carrying the sim-time duration.  Spans nest — a transfer
decomposes into ``plan -> leg -> chunk`` — and the nesting is recorded
via parent ids so :func:`extract_span_records` can rebuild the tree.

Always use the context manager::

    with spans.span("core.executor", "plan:direct", provider="gdrive"):
        ...  # yields inside the body are fine: generators keep the
             # with-block suspended along with the frame

Hand-emitting ``span_begin``/``span_end`` events is forbidden outside
this module (lint rule ``SL402``) — unpaired events corrupt timelines.

Parenting uses a single stack per :class:`SpanTracer`.  The repo's
workloads open spans in straight-line coroutine code (one logical
transfer at a time), so this is exact for them; if two *concurrent*
processes interleave spans on one tracer, parent attribution follows
stack order, not process identity — timelines stay well-formed but a
span may claim the other process's open span as its parent.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.sim.trace import Tracer

__all__ = ["Span", "SpanRecord", "SpanTracer", "extract_span_records"]


class _NullSpan:
    """Shared no-op span returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **fields: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """One live span; emits its paired events on enter/exit."""

    __slots__ = ("_tracer", "span_id", "component", "name", "fields", "start")

    def __init__(self, tracer: "SpanTracer", component: str, name: str,
                 fields: Dict[str, Any]):
        self._tracer = tracer
        self.span_id = next(tracer._ids)
        self.component = component
        self.name = name
        self.fields = fields
        self.start = 0.0

    def annotate(self, **fields: Any) -> None:
        """Attach extra fields; they appear on the ``span_end`` event."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        t = self._tracer
        self.start = t.sim.now
        parent = t._stack[-1].span_id if t._stack else 0
        t._stack.append(self)
        t._emit_pair_event(
            self.start, self.component, "span_begin",
            span=self.span_id, parent=parent, name=self.name, **self.fields,
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t = self._tracer
        # Exiting out of order (an exception unwound nested spans) still
        # removes *this* span, keeping the stack consistent.
        if t._stack and t._stack[-1] is self:
            t._stack.pop()
        elif self in t._stack:
            t._stack.remove(self)
        now = t.sim.now
        fields = dict(self.fields)
        if exc_type is not None:
            fields["error"] = exc_type.__name__
        t._emit_pair_event(
            now, self.component, "span_end",
            span=self.span_id, name=self.name,
            duration_s=now - self.start, **fields,
        )
        return False


class SpanTracer:
    """Factory for spans bound to one simulator clock and one tracer."""

    def __init__(self, sim: Any, tracer: Tracer):
        self.sim = sim
        self.tracer = tracer
        self._ids = itertools.count(1)
        self._stack: List[Span] = []

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def span(self, component: str, name: str, **fields: Any):
        """Open a span; returns a context manager.

        When the underlying tracer is disabled this returns a shared
        null object — no allocation, no id consumption — so disabled
        runs stay bit-identical to uninstrumented ones.
        """
        if not self.tracer.enabled:
            return _NULL_SPAN
        return Span(self, component, name, dict(fields))

    def _emit_pair_event(self, time: float, component: str, kind: str,
                         **fields: Any) -> None:
        self.tracer.emit(time, component, kind, **fields)

    @property
    def depth(self) -> int:
        """Number of currently-open spans (0 outside any span)."""
        return len(self._stack)


@dataclass(frozen=True)
class SpanRecord:
    """A completed span reconstructed from its begin/end event pair."""

    span_id: int
    parent_id: int
    component: str
    name: str
    start: float
    end: float
    fields: Tuple[Tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def field(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default


def extract_span_records(tracer: Tracer) -> List[SpanRecord]:
    """Pair ``span_begin``/``span_end`` events into :class:`SpanRecord`s.

    Unfinished spans (begin without end) are dropped; orphan ends are
    ignored.  Records come back sorted by ``(start, span_id)`` so nested
    spans follow their parents.
    """
    begins: Dict[int, Any] = {}
    records: List[SpanRecord] = []
    for ev in tracer:
        if ev.kind == "span_begin":
            begins[ev.fields["span"]] = ev
        elif ev.kind == "span_end":
            begin = begins.pop(ev.fields["span"], None)
            if begin is None:
                continue
            merged = dict(begin.fields)
            merged.update(ev.fields)
            extras = tuple(
                sorted(
                    (k, v) for k, v in merged.items()
                    if k not in ("span", "parent", "name", "duration_s")
                )
            )
            records.append(
                SpanRecord(
                    span_id=begin.fields["span"],
                    parent_id=begin.fields.get("parent", 0),
                    component=begin.component,
                    name=begin.fields["name"],
                    start=begin.time,
                    end=ev.time,
                    fields=extras,
                )
            )
    records.sort(key=lambda r: (r.start, r.span_id))
    return records


def span_depths(records: List[SpanRecord]) -> Dict[int, int]:
    """Nesting depth per span id (roots at 0), by walking parent links."""
    by_id = {r.span_id: r for r in records}
    depths: Dict[int, int] = {}

    def depth_of(span_id: int) -> int:
        if span_id in depths:
            return depths[span_id]
        rec = by_id.get(span_id)
        if rec is None or rec.parent_id == 0 or rec.parent_id not in by_id:
            depths[span_id] = 0
        else:
            depths[span_id] = depth_of(rec.parent_id) + 1
        return depths[span_id]

    for r in records:
        depth_of(r.span_id)
    return depths
