"""Campaign telemetry: the pool's cell-lifecycle event stream.

The campaign engine (``repro.campaign``) emits one :class:`TelemetryEvent`
per cell-lifecycle transition — started, finished, retried, quarantined,
answered-from-store — tagged with the pool's queue depth, the number of
in-flight workers, and the cell's wall time as measured *inside* the
worker (it rides the existing result pipe, so the parent never reads a
clock on the cell's behalf).  This module is sim-time/wall-clock free:
every timestamp in an event was measured by the campaign layer, which is
the sanctioned orchestration-side clock reader (lint rule SL403 pins
``repro.obs.profile`` as the only obs module allowed to read a clock).

:class:`TelemetryAggregator` folds the stream into ``repro_campaign_*``
metrics on a shared :class:`~repro.obs.metrics.MetricsRegistry` and keeps
a running :class:`ProgressSnapshot` that :func:`render_progress` turns
into the one-line view behind ``repro campaign status --watch`` and
``repro campaign run --progress``.

Telemetry is strictly observational: a campaign run with no sink attached
performs byte-identical work (enforced by ``tests/test_obs_overhead.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.metrics import DURATION_BUCKETS, MetricsRegistry

__all__ = [
    "EVENT_KINDS",
    "ProgressSnapshot",
    "TelemetryAggregator",
    "TelemetryEvent",
    "render_event",
    "render_progress",
]

#: Every lifecycle transition a campaign cell can go through.
EVENT_KINDS: Tuple[str, ...] = (
    "cell_started",      # an attempt began executing (serial or worker)
    "cell_finished",     # an attempt produced a payload (ok or model error)
    "cell_retried",      # a crash/timeout consumed one retry
    "cell_quarantined",  # crash/timeout budget exhausted; error record
    "cell_cached",       # answered from the result store, nothing ran
    "shard_warmed",      # a shard run preloaded a published snapshot
    "shard_published",   # a shard worker published a site report/snapshot
    "shard_merged",      # a shard merge published the fleet's directory
)


@dataclass(frozen=True)
class TelemetryEvent:
    """One cell-lifecycle transition, as seen by the campaign engine.

    ``index`` is the cell's position in spec order; ``wall_s`` is the
    worker-measured wall time of the finished attempt (0 otherwise);
    ``queue_depth`` / ``running`` are the pool's backlog and in-flight
    counts at the instant the event fired; ``worker`` is the OS pid of
    the worker process (0 on the in-process serial path).
    """

    kind: str
    cell: str
    index: int
    attempt: int = 1
    status: str = ""      # cell_finished: "ok" | "error"
    error_kind: str = ""  # retried/quarantined/model-error detail
    wall_s: float = 0.0
    queue_depth: int = 0
    running: int = 0
    worker: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ObservabilityError(
                f"unknown telemetry event kind {self.kind!r}; "
                f"have {EVENT_KINDS}")

    def to_dict(self) -> dict:
        """Pipe/JSON-safe view (primitives only)."""
        return {
            "kind": self.kind, "cell": self.cell, "index": self.index,
            "attempt": self.attempt, "status": self.status,
            "error_kind": self.error_kind, "wall_s": self.wall_s,
            "queue_depth": self.queue_depth, "running": self.running,
            "worker": self.worker,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "TelemetryEvent":
        return cls(**record)


#: A telemetry sink: anything accepting one event per call.
TelemetrySink = Callable[[TelemetryEvent], None]


def as_sink(telemetry) -> Optional[TelemetrySink]:
    """Normalize a sink argument: None, a callable, or an aggregator."""
    if telemetry is None:
        return None
    emit = getattr(telemetry, "emit", None)
    if emit is not None:
        return emit
    if callable(telemetry):
        return telemetry
    raise ObservabilityError(
        f"telemetry sink must be callable or have .emit, got {telemetry!r}")


def reindexed(sink: TelemetrySink, index_map) -> TelemetrySink:
    """Wrap *sink* so pool-local indexes are rewritten to spec order."""

    def remap(ev: TelemetryEvent) -> None:
        sink(replace(ev, index=index_map[ev.index]))

    return remap


@dataclass(frozen=True)
class ProgressSnapshot:
    """Where a campaign stands, folded from the event stream."""

    total: int = 0        # expected cells (0 = unknown)
    started: int = 0      # attempts begun (retries count again)
    finished_ok: int = 0
    finished_error: int = 0
    retried: int = 0
    quarantined: int = 0
    cached: int = 0
    running: int = 0
    queue_depth: int = 0
    wall_s_total: float = 0.0
    last_cell: str = ""

    @property
    def done(self) -> int:
        """Cells with a final answer (ok, model-error, infra, or cached)."""
        return (self.finished_ok + self.finished_error
                + self.quarantined + self.cached)

    @property
    def errors(self) -> int:
        return self.finished_error + self.quarantined


class TelemetryAggregator:
    """Folds the event stream into metrics and a progress snapshot.

    Parameters
    ----------
    metrics:
        Registry receiving the ``repro_campaign_*`` series; a fresh
        enabled registry by default.  Instrument names are disjoint from
        the runner's own cell counters, so sharing the runner's registry
        never double-counts.
    on_event:
        Optional callback invoked after each event is folded — the live
        streaming hook (``campaign run --progress`` prints from here).
    keep_events:
        Retain the last N raw events for inspection/export (0 = none).
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 on_event: Optional[TelemetrySink] = None,
                 keep_events: int = 0):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.on_event = on_event
        self.keep_events = keep_events
        self.events: List[TelemetryEvent] = []
        self._snap = ProgressSnapshot()
        m = self.metrics
        self._m_events = m.counter(
            "repro_campaign_events_total",
            "Campaign telemetry events by lifecycle kind")
        self._m_wall = m.histogram(
            "repro_campaign_cell_wall_seconds",
            "Worker-measured wall time per finished cell attempt",
            buckets=DURATION_BUCKETS)
        self._m_queue = m.gauge(
            "repro_campaign_queue_depth_count",
            "Cells waiting for a pool slot at the last event")
        self._m_running = m.gauge(
            "repro_campaign_running_count",
            "Cell attempts in flight at the last event")
        self._m_hits = m.counter(
            "repro_campaign_store_hits_total",
            "Cells answered from the result store")
        self._m_misses = m.counter(
            "repro_campaign_store_misses_total",
            "Cells the store could not answer (first attempts executed)")

    def expect(self, total: int) -> None:
        """Declare how many cells the campaign will resolve in total."""
        self._snap = replace(self._snap, total=total)

    def emit(self, ev: TelemetryEvent) -> None:
        """Fold one event; safe to use directly as the pool sink."""
        s = self._snap
        kw = dict(running=ev.running, queue_depth=ev.queue_depth,
                  last_cell=ev.cell)
        if ev.kind == "cell_started":
            kw["started"] = s.started + 1
            if ev.attempt == 1:
                self._m_misses.inc()
        elif ev.kind == "cell_finished":
            if ev.status == "ok":
                kw["finished_ok"] = s.finished_ok + 1
            else:
                kw["finished_error"] = s.finished_error + 1
            kw["wall_s_total"] = s.wall_s_total + ev.wall_s
            self._m_wall.observe(ev.wall_s)
        elif ev.kind == "cell_retried":
            kw["retried"] = s.retried + 1
        elif ev.kind == "cell_quarantined":
            kw["quarantined"] = s.quarantined + 1
        elif ev.kind == "cell_cached":
            kw["cached"] = s.cached + 1
            self._m_hits.inc()
        self._snap = replace(s, **kw)
        self._m_events.inc(kind=ev.kind)
        self._m_queue.set(ev.queue_depth)
        self._m_running.set(ev.running)
        if self.keep_events:
            self.events.append(ev)
            if len(self.events) > self.keep_events:
                del self.events[:len(self.events) - self.keep_events]
        if self.on_event is not None:
            self.on_event(ev)

    def snapshot(self) -> ProgressSnapshot:
        return self._snap


def render_event(ev: TelemetryEvent) -> str:
    """One streaming log line per event (``campaign run --progress``)."""
    bits = [f"{ev.kind[5:]:<11}", f"#{ev.index:<3}"]
    if ev.attempt > 1:
        bits.append(f"attempt {ev.attempt}")
    if ev.kind == "cell_finished":
        bits.append(f"{ev.status or 'ok'} in {ev.wall_s:.2f}s")
    elif ev.kind in ("cell_retried", "cell_quarantined") and ev.error_kind:
        bits.append(ev.error_kind)
    if ev.queue_depth or ev.running:
        bits.append(f"[{ev.running} running, {ev.queue_depth} queued]")
    bits.append(ev.cell)
    return " ".join(bits)


def render_progress(snap: ProgressSnapshot, width: int = 30) -> str:
    """One-line progress view: bar, resolved counts, pool state."""
    total = snap.total or snap.done
    frac = snap.done / total if total else 0.0
    filled = int(round(frac * width))
    bar = "#" * filled + "." * (width - filled)
    line = (f"campaign [{bar}] {snap.done}/{total or '?'}"
            f"  ok {snap.finished_ok} err {snap.errors} cached {snap.cached}")
    if snap.running or snap.queue_depth:
        line += f"  | {snap.running} running, {snap.queue_depth} queued"
    if snap.wall_s_total:
        line += f"  | cell wall {snap.wall_s_total:.1f}s"
    return line
