"""Overlay-network context: RON-style probing and TIV cataloging.

The paper frames routing detours within the resilient-overlay-network
(RON [1]) lineage and observes that triangle-inequality violations (TIV),
long known for latency, also exist for *bandwidth* to cloud providers.
This package provides the overlay substrate: a probing mesh with EWMA
link estimates, single-hop indirection path selection (RON's key idea),
and a TIV catalog over both metrics.
"""

from repro.overlay.probing import LinkEstimate, ProbeMesh
from repro.overlay.ron import OverlayPath, ResilientOverlay
from repro.overlay.tiv import TivRecord, bandwidth_tiv, catalog_tivs, latency_tiv

__all__ = [
    "LinkEstimate",
    "OverlayPath",
    "ProbeMesh",
    "ResilientOverlay",
    "TivRecord",
    "bandwidth_tiv",
    "catalog_tivs",
    "latency_tiv",
]
