"""Overlay probe mesh: pairwise latency/bandwidth estimation.

Overlay members periodically probe each other (small RTT pings and short
bulk transfers) and keep EWMA-smoothed estimates per directed pair — the
measurement substrate under RON-style path selection and the future-work
"dynamic network monitoring" the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.core.world import World
from repro.errors import SelectionError
from repro.net.tcp import TcpPathParams
from repro.transfer.files import FileSpec
from repro.transfer.rsync import RsyncSession

__all__ = ["LinkEstimate", "ProbeMesh"]


@dataclass
class LinkEstimate:
    """EWMA state for one directed overlay pair."""

    rtt_s: Optional[float] = None
    bandwidth_bps: Optional[float] = None
    samples: int = 0
    last_update: float = 0.0

    def observe(self, rtt_s: float, bandwidth_bps: float, now: float, alpha: float) -> None:
        if self.samples == 0:
            self.rtt_s = rtt_s
            self.bandwidth_bps = bandwidth_bps
        else:
            self.rtt_s = (1 - alpha) * self.rtt_s + alpha * rtt_s
            self.bandwidth_bps = (1 - alpha) * self.bandwidth_bps + alpha * bandwidth_bps
        self.samples += 1
        self.last_update = now

    def mark_unreachable(self, now: float) -> None:
        """Record a failed probe: the pair currently has no usable path.

        Zero bandwidth makes path selection skip this pair (RON treats it
        as down until a later probe succeeds).
        """
        self.bandwidth_bps = 0.0
        self.samples += 1
        self.last_update = now


class ProbeMesh:
    """All-pairs probing among overlay member hosts.

    Members are topology host-node names.  ``probe_round`` sweeps every
    ordered pair serially (a real mesh staggers probes; serial keeps the
    simulated load honest and the code simple).
    """

    def __init__(
        self,
        world: World,
        members: Sequence[str],
        probe_bytes: int = 500_000,
        alpha: float = 0.3,
    ):
        if len(members) < 2:
            raise SelectionError("a probe mesh needs at least two members")
        if len(set(members)) != len(members):
            raise SelectionError("duplicate mesh members")
        if probe_bytes <= 0:
            raise SelectionError("probe size must be positive")
        if not (0 < alpha <= 1):
            raise SelectionError("alpha must be in (0, 1]")
        for m in members:
            world.topology.node(m)  # validate
        self.world = world
        self.members = tuple(members)
        self.probe_bytes = probe_bytes
        self.alpha = alpha
        self._estimates: Dict[Tuple[str, str], LinkEstimate] = {}
        self._serial = 0

    # -- estimates --------------------------------------------------------

    def estimate(self, src: str, dst: str) -> LinkEstimate:
        """Current estimate for the directed pair (may be empty)."""
        return self._estimates.setdefault((src, dst), LinkEstimate())

    def pairs(self) -> List[Tuple[str, str]]:
        return [(a, b) for a in self.members for b in self.members if a != b]

    def coverage(self) -> float:
        """Fraction of ordered pairs with at least one sample."""
        pairs = self.pairs()
        seen = sum(1 for p in pairs if self.estimate(*p).samples > 0)
        return seen / len(pairs)

    # -- probing --------------------------------------------------------------

    def probe_pair(self, src: str, dst: str):
        """Coroutine: one RTT ping + one short bulk probe for (src, dst).

        An unroutable pair (link failure, withdrawn route) is recorded as
        unreachable rather than raised — losing a path is a measurement,
        not a crash.
        """
        from repro.errors import RoutingError

        world = self.world
        try:
            path = world.router.resolve(src, dst)
        except RoutingError:
            self.estimate(src, dst).mark_unreachable(world.sim.now)
            return 0.0
        params = TcpPathParams(rtt_s=path.rtt_s, loss=path.loss)
        # ping: one round trip
        yield params.rtt_s
        # bulk probe: a small rsync-style transfer
        self._serial += 1
        session = RsyncSession(world.engine, world.router, world.tcp)
        start = world.sim.now
        yield from session.push(src, dst, FileSpec(f"mesh-probe-{self._serial}", self.probe_bytes))
        elapsed = world.sim.now - start
        bandwidth = units.throughput_bps(self.probe_bytes, elapsed)
        self.estimate(src, dst).observe(path.rtt_s, bandwidth, world.sim.now, self.alpha)
        return bandwidth

    def probe_round(self):
        """Coroutine: probe every ordered pair once."""
        for src, dst in self.pairs():
            yield from self.probe_pair(src, dst)
        return self.coverage()

    def run_periodic(self, interval_s: float = 60.0):
        """Spawn a background process probing forever every *interval_s*."""
        if interval_s <= 0:
            raise SelectionError("probe interval must be positive")

        def loop():
            while True:
                yield from self.probe_round()
                yield interval_s

        return self.world.sim.process(loop(), name="probe-mesh")
