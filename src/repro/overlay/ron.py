"""Resilient-overlay (RON-style) single-hop indirection.

RON's central result is that one level of indirection through an overlay
member recovers most of the routing-inefficiency losses; the paper's
detours are the cloud-storage instance of the same idea.  Given a probe
mesh, :class:`ResilientOverlay` selects the best direct-or-one-hop path
between overlay members by predicted transfer time, and can execute
transfers over the selected path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import units
from repro.errors import SelectionError
from repro.overlay.probing import ProbeMesh
from repro.transfer.files import FileSpec
from repro.transfer.rsync import RsyncSession

__all__ = ["OverlayPath", "ResilientOverlay"]


@dataclass(frozen=True)
class OverlayPath:
    """A selected overlay path: direct or via one relay member."""

    src: str
    dst: str
    relay: Optional[str]
    predicted_s: float

    @property
    def is_direct(self) -> bool:
        return self.relay is None

    def hops(self) -> List[Tuple[str, str]]:
        if self.relay is None:
            return [(self.src, self.dst)]
        return [(self.src, self.relay), (self.relay, self.dst)]

    def describe(self) -> str:
        route = "direct" if self.relay is None else f"via {self.relay}"
        return f"{self.src} -> {self.dst} [{route}] predicted {self.predicted_s:.2f}s"


class ResilientOverlay:
    """Path selection + execution over a probed overlay mesh."""

    def __init__(self, mesh: ProbeMesh, per_hop_overhead_s: float = 1.0):
        if per_hop_overhead_s < 0:
            raise SelectionError("per-hop overhead cannot be negative")
        self.mesh = mesh
        #: fixed cost charged per store-and-forward hop (handshakes etc.)
        self.per_hop_overhead_s = per_hop_overhead_s

    # -- prediction --------------------------------------------------------

    def _hop_time(self, src: str, dst: str, size_bytes: int) -> Optional[float]:
        est = self.mesh.estimate(src, dst)
        if est.samples == 0 or not est.bandwidth_bps:
            return None
        return self.per_hop_overhead_s + units.transfer_seconds(size_bytes, est.bandwidth_bps)

    def predict(self, src: str, dst: str, size_bytes: int,
                relay: Optional[str]) -> Optional[float]:
        """Predicted store-and-forward time; None without probe data."""
        if relay is None:
            return self._hop_time(src, dst, size_bytes)
        t1 = self._hop_time(src, relay, size_bytes)
        t2 = self._hop_time(relay, dst, size_bytes)
        if t1 is None or t2 is None:
            return None
        return t1 + t2

    def select_path(self, src: str, dst: str, size_bytes: int) -> OverlayPath:
        """Best direct-or-one-hop path by predicted time."""
        if src == dst:
            raise SelectionError("src and dst are the same overlay member")
        for member in (src, dst):
            if member not in self.mesh.members:
                raise SelectionError(f"{member!r} is not an overlay member")
        candidates: List[OverlayPath] = []
        direct = self.predict(src, dst, size_bytes, relay=None)
        if direct is not None:
            candidates.append(OverlayPath(src, dst, None, direct))
        for relay in self.mesh.members:
            if relay in (src, dst):
                continue
            pred = self.predict(src, dst, size_bytes, relay)
            if pred is not None:
                candidates.append(OverlayPath(src, dst, relay, pred))
        if not candidates:
            raise SelectionError(
                f"no probe data for {src}->{dst}; run mesh.probe_round() first"
            )
        return min(candidates, key=lambda p: (p.predicted_s, p.relay or ""))

    # -- execution -----------------------------------------------------------

    def transfer(self, path: OverlayPath, spec: FileSpec):
        """Coroutine: execute *spec* over *path* (rsync store-and-forward).

        Returns (elapsed_s, per-hop durations).
        """
        world = self.mesh.world
        session = RsyncSession(world.engine, world.router, world.tcp)
        start = world.sim.now
        hop_times: List[float] = []
        for src, dst in path.hops():
            hop_start = world.sim.now
            yield from session.push(src, dst, spec)
            hop_times.append(world.sim.now - hop_start)
        return world.sim.now - start, hop_times

    def send(self, src: str, dst: str, spec: FileSpec):
        """Coroutine: select the best path and transfer over it.

        Returns (OverlayPath, elapsed_s).
        """
        path = self.select_path(src, dst, spec.size_bytes)
        elapsed, _ = yield from self.transfer(path, spec)
        return path, elapsed
