"""Triangle-inequality-violation (TIV) cataloging.

Prior work (paper refs [20]-[22]) documents latency TIVs: d(a,c) >
d(a,b) + d(b,c).  The paper's contribution is observing the *bandwidth*
analogue for cloud-storage traffic: a relay path whose end-to-end
throughput exceeds the direct path's.  These helpers detect and catalog
both, from either a probe mesh or resolved-path ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.world import World
from repro.errors import SelectionError
from repro.overlay.probing import ProbeMesh

__all__ = ["TivRecord", "latency_tiv", "bandwidth_tiv", "catalog_tivs"]


@dataclass(frozen=True)
class TivRecord:
    """One detected violation."""

    kind: str  # "latency" | "bandwidth"
    src: str
    relay: str
    dst: str
    direct_value: float
    via_value: float

    @property
    def severity(self) -> float:
        """How much better the relay path is (ratio > 1)."""
        if self.kind == "latency":
            return self.direct_value / self.via_value
        return self.via_value / self.direct_value

    def describe(self) -> str:
        unit = "s RTT" if self.kind == "latency" else "bps"
        return (
            f"{self.kind} TIV {self.src}->{self.dst} via {self.relay}: "
            f"direct {self.direct_value:.4g}{unit}, via {self.via_value:.4g}{unit} "
            f"({self.severity:.2f}x)"
        )


def latency_tiv(rtt_direct_s: float, rtt_leg1_s: float, rtt_leg2_s: float,
                margin: float = 1.0) -> bool:
    """Is the two-leg RTT shorter than the direct RTT (by > margin ratio)?"""
    if min(rtt_direct_s, rtt_leg1_s, rtt_leg2_s) <= 0:
        raise SelectionError("RTTs must be positive")
    return rtt_direct_s > margin * (rtt_leg1_s + rtt_leg2_s)


def bandwidth_tiv(bw_direct_bps: float, bw_leg1_bps: float, bw_leg2_bps: float,
                  margin: float = 1.0) -> bool:
    """Does the relay path sustain more throughput than the direct path?

    A store-and-forward relay path's throughput for large files is the
    harmonic composition ``1 / (1/b1 + 1/b2)`` (time adds); a pipelined
    relay achieves ``min(b1, b2)``.  We use the pipelined bound — the
    strongest claim — matching how TIV severity is usually reported.
    """
    if min(bw_direct_bps, bw_leg1_bps, bw_leg2_bps) <= 0:
        raise SelectionError("bandwidths must be positive")
    return min(bw_leg1_bps, bw_leg2_bps) > margin * bw_direct_bps


def catalog_tivs(
    mesh: ProbeMesh,
    margin: float = 1.05,
    kinds: Sequence[str] = ("latency", "bandwidth"),
) -> List[TivRecord]:
    """Scan a probed mesh for all (src, relay, dst) violations.

    ``margin`` filters out noise-level violations (default: relay must be
    5% better).  Pairs without probe data are skipped.
    """
    records: List[TivRecord] = []
    members = mesh.members
    for src in members:
        for dst in members:
            if src == dst:
                continue
            direct = mesh.estimate(src, dst)
            if direct.samples == 0:
                continue
            for relay in members:
                if relay in (src, dst):
                    continue
                leg1 = mesh.estimate(src, relay)
                leg2 = mesh.estimate(relay, dst)
                if leg1.samples == 0 or leg2.samples == 0:
                    continue
                if "latency" in kinds and latency_tiv(
                        direct.rtt_s, leg1.rtt_s, leg2.rtt_s, margin):
                    records.append(TivRecord(
                        "latency", src, relay, dst,
                        direct.rtt_s, leg1.rtt_s + leg2.rtt_s))
                if "bandwidth" in kinds and bandwidth_tiv(
                        direct.bandwidth_bps, leg1.bandwidth_bps,
                        leg2.bandwidth_bps, margin):
                    records.append(TivRecord(
                        "bandwidth", src, relay, dst,
                        direct.bandwidth_bps,
                        min(leg1.bandwidth_bps, leg2.bandwidth_bps)))
    records.sort(key=lambda r: -r.severity)
    return records
