"""repro.shard — sharded fleet execution with a shared route directory.

Million-upload fleets don't fit one process, so this layer splits a
fleet plan into shard cells (stable-hash site partition, independent of
job count), executes them through the :mod:`repro.campaign` pool with
content-addressed resume, exchanges route recommendations between
workers via published :class:`~repro.broker.directory.DirectorySnapshot`
documents behind a two-tier :class:`SharedDirectoryService` cache, and
streams everything back together with a :class:`FleetAggregator` in
O(sites) memory.  The merged score is byte-identical for any shard
count — see ``docs/SHARDING.md`` for the determinism contract.
"""

from repro.shard.aggregate import FleetAggregator
from repro.shard.plan import ShardCell, ShardPlan
from repro.shard.runner import (
    ShardMergeResult,
    ShardRunResult,
    merge_sharded,
    run_sharded,
    shard_status,
)
from repro.shard.service import (
    DirectoryFileTier,
    SharedDirectoryService,
    SiteReport,
)

__all__ = [
    "DirectoryFileTier",
    "FleetAggregator",
    "ShardCell",
    "ShardMergeResult",
    "ShardPlan",
    "ShardRunResult",
    "SharedDirectoryService",
    "SiteReport",
    "merge_sharded",
    "run_sharded",
    "shard_status",
]
