"""Streaming fleet aggregation: fold shard outputs in O(sites) memory.

``merge_sharded`` never holds a fleet's upload records in memory — it
slices each shard cell's stored measurement back into per-site duration
streams and folds them through a :class:`FleetAggregator`, one site at a
time.  The aggregator keeps exactly ``sites x (modes + 1)`` accumulator
cells (one ``[sum, regret, n]`` triple per (mode, site), one oracle
``[sum, n]`` pair per site) plus an O(modes) rollup of report counters —
so a million-upload fleet merges in the memory footprint of its site
list, which the scale benchmark asserts.

Determinism: :meth:`FleetAggregator.score` reduces the per-site cells in
the *caller's* site order (the plan order), and every upload's numbers
entered its site's cells in schedule order — so the merged
:class:`~repro.broker.fleet.FleetScore` is a pure function of the plan,
independent of shard count, job count, and fold arrival order.
"""

from __future__ import annotations

from itertools import zip_longest
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.broker.fleet import FleetScore
from repro.errors import ShardError

from repro.shard.service import SiteReport

__all__ = ["FleetAggregator"]

#: The per-mode counters a rollup aggregates from site reports.
_REPORT_FIELDS = ("n_uploads", "probes_issued", "directory_hits",
                  "directory_misses", "directory_evictions",
                  "directory_warm_hits", "invalidations", "admission_spills")


class FleetAggregator:
    """Fold per-site duration streams and reports into fleet aggregates."""

    def __init__(self, modes: Sequence[str]):
        if not modes:
            raise ShardError("aggregator needs at least one mode")
        if len(set(modes)) != len(modes):
            raise ShardError(f"aggregator modes repeat: {list(modes)}")
        self.modes: Tuple[str, ...] = tuple(modes)
        #: (mode, site) -> [duration sum, regret sum, uploads]
        self._cells: Dict[Tuple[str, str], List[float]] = {}
        #: site -> [oracle duration sum, uploads]
        self._oracle: Dict[str, List[float]] = {}
        #: mode -> summed report counters
        self._rollup: Dict[str, Dict[str, int]] = {
            m: {f: 0 for f in _REPORT_FIELDS} for m in self.modes}
        self._records = 0

    # -- introspection (the benchmark asserts on these) --------------------

    @property
    def sites_folded(self) -> int:
        return len(self._oracle)

    @property
    def records_folded(self) -> int:
        """Upload records consumed so far (across all modes)."""
        return self._records

    @property
    def state_cells(self) -> int:
        """Live accumulator cells — the aggregator's whole O(sites) state."""
        return len(self._cells) + len(self._oracle)

    # -- folding ------------------------------------------------------------

    def fold_site(self, site: str,
                  durations: Mapping[str, Iterable[float]]) -> int:
        """Consume one site's per-mode duration streams; returns uploads.

        *durations* maps every plan mode to that site's realized upload
        durations in schedule order (any iterable — including a one-shot
        generator; streams are consumed in lockstep, never materialized).
        The per-upload oracle is the fastest duration any mode realized,
        exactly as :func:`~repro.broker.fleet.score_fleet` defines it.
        """
        if site in self._oracle:
            raise ShardError(f"site {site!r} folded twice")
        missing = [m for m in self.modes if m not in durations]
        extra = sorted(set(durations) - set(self.modes))
        if missing or extra:
            raise ShardError(
                f"site {site!r} duration streams do not match the plan "
                f"modes (missing {missing}, unexpected {extra})")
        streams = [iter(durations[m]) for m in self.modes]
        cells = [self._cells.setdefault((m, site), [0.0, 0.0, 0.0])
                 for m in self.modes]
        oracle_cell = self._oracle.setdefault(site, [0.0, 0.0])
        n = 0
        for row in zip_longest(*streams, fillvalue=None):
            if any(d is None for d in row):
                raise ShardError(
                    f"site {site!r} duration streams disagree on upload count")
            oracle = min(row)
            oracle_cell[0] += oracle
            oracle_cell[1] += 1.0
            n += 1
            for cell, duration in zip(cells, row):
                cell[0] += duration
                cell[1] += duration - oracle
                cell[2] += 1.0
        if n == 0:
            raise ShardError(f"site {site!r} duration streams are empty")
        self._records += n * len(self.modes)
        return n

    def fold_report(self, report: SiteReport) -> None:
        """Accumulate one site report's counters into the mode rollup."""
        if report.mode not in self._rollup:
            raise ShardError(
                f"report for site {report.site!r} carries mode "
                f"{report.mode!r}, not one of {list(self.modes)}")
        bucket = self._rollup[report.mode]
        for field in _REPORT_FIELDS:
            bucket[field] += int(getattr(report, field))

    # -- reduction -----------------------------------------------------------

    def score(self, sites: Sequence[str]) -> FleetScore:
        """Reduce the folded cells, summing in the given (plan) site order.

        *sites* must be exactly the folded sites; the explicit order is
        what makes the reduction independent of fold arrival order.
        """
        unfolded = [s for s in sites if s not in self._oracle]
        surplus = sorted(set(self._oracle) - set(sites))
        if unfolded or surplus:
            raise ShardError(
                f"cannot score: sites never folded {unfolded}, folded but "
                f"not requested {surplus}")
        oracle_sum = 0.0
        n = 0
        mode_sums: Dict[str, List[float]] = {m: [0.0, 0.0] for m in self.modes}
        by_site: Dict[Tuple[str, str], Tuple[float, float]] = {}
        for site in sites:
            o_sum, o_n = self._oracle[site]
            oracle_sum += o_sum
            n += int(o_n)
            for mode in self.modes:
                dur_sum, regret_sum, cell_n = self._cells[(mode, site)]
                mode_sums[mode][0] += dur_sum
                mode_sums[mode][1] += regret_sum
                by_site[(mode, site)] = (dur_sum / cell_n,
                                         regret_sum / cell_n)
        if n == 0:
            raise ShardError("cannot score an empty aggregator")
        by_mode = {m: (mode_sums[m][0] / n, mode_sums[m][1] / n)
                   for m in sorted(self.modes)}
        return FleetScore(
            n_uploads=n,
            oracle_mean_s=oracle_sum / n,
            by_mode=by_mode,
            by_site={k: by_site[k] for k in sorted(by_site)},
        )

    def rollup(self) -> Dict[str, Dict[str, float]]:
        """Per-mode directory/probe aggregates from the folded reports."""
        out: Dict[str, Dict[str, float]] = {}
        for mode in self.modes:
            bucket = self._rollup[mode]
            uploads = bucket["n_uploads"]
            looked = bucket["directory_hits"] + bucket["directory_misses"]
            out[mode] = {
                "uploads": float(uploads),
                "probes_issued": float(bucket["probes_issued"]),
                "probes_per_upload": (bucket["probes_issued"] / uploads
                                      if uploads else 0.0),
                "directory_hits": float(bucket["directory_hits"]),
                "directory_misses": float(bucket["directory_misses"]),
                "hit_rate": (bucket["directory_hits"] / looked
                             if looked else 0.0),
                "warm_hits": float(bucket["directory_warm_hits"]),
                "warm_hit_rate": (bucket["directory_warm_hits"] / looked
                                  if looked else 0.0),
                "evictions": float(bucket["directory_evictions"]),
                "invalidations": float(bucket["invalidations"]),
                "admission_spills": float(bucket["admission_spills"]),
            }
        return out
