"""Shard planning: a fleet workload split into deterministic cells.

A :class:`ShardPlan` names a whole fleet — sites, policies, workload
shape, seed, optionally a generated world — and partitions the sites
into ``n_shards`` buckets by **stable hash**: a site lands in shard
``derive_seed(seed, "shard:<site>") % n_shards`` (the same sha256
derivation :class:`~repro.sim.rng.RngRegistry` streams use), so the
partition depends only on the plan, never on job count, enumeration
order, or which shards have already run.

Each (non-empty shard, policy) pair becomes a :class:`ShardCell` — a
campaign cell (content-addressed identity, ``run_measurement``) the
:mod:`repro.campaign` pool executes and the result store resumes.  A
cell runs its sites as **independent single-site fleet units**: each
site gets its own world (seeded from the site workload, excluding both
the policy and the partition) and its own single-site schedule (which
:func:`~repro.workloads.generator.fleet_population_schedule` derives
per-site, so it equals that site's slice of the full-fleet schedule).
That independence is the sharding determinism contract: a site's
numbers are identical whether it ran alone, in a 4-shard run, or in a
single shard holding the whole fleet — which is what makes ``shards=4``
byte-identical to ``shards=1`` after the merge.

Broker-kind cells can carry a warm :class:`~repro.broker.directory.DirectorySnapshot`
(identity records only its content hash, so store records stay small)
and publish per-site :class:`~repro.shard.service.SiteReport` documents
— stats plus the unit's final directory — to the shared file tier under
partition-independent names.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.broker.config import BrokerConfig
from repro.broker.directory import DirectorySnapshot
from repro.broker.fleet import FleetResult, parse_mode
from repro.campaign.store import register_cell_type
from repro.errors import CampaignError, ShardError
from repro.measure.harness import (ExperimentProtocol, Measurement,
                                   experiment_seed)
from repro.measure.stats import summarize
from repro.obs.metrics import MetricSample, MetricsRegistry
from repro.sim.rng import derive_seed
from repro.topo.spec import TopoSpec

from repro.shard.service import DirectoryFileTier, SiteReport

__all__ = ["ShardPlan", "ShardCell", "site_report_name"]

SHARD_CELL_TYPE = "shard-fleet"

#: Bump when a change to the shard execution path invalidates stored cells.
SHARD_CELL_VERSION = 1


def _site_unit_identity(
    site: str,
    provider: str,
    mode: str,
    n_uploads_per_site: int,
    mean_interarrival_s: float,
    mean_size_mb: float,
    size_dist: str,
    seed: int,
    cross_traffic: bool,
    config: Optional[BrokerConfig],
    topo: Optional[TopoSpec],
    warm_hash: str,
) -> Dict[str, object]:
    """The identity of one (site, policy) fleet unit.

    Deliberately partition-free: no shard index, no shard count, no
    sibling sites — so the unit's published report name is the same for
    every sharding of the same plan.
    """
    ident: Dict[str, object] = {
        "unit": "shard-site",
        "version": SHARD_CELL_VERSION,
        "site": site,
        "provider": provider,
        "mode": mode,
        "n_uploads_per_site": int(n_uploads_per_site),
        "mean_interarrival_s": float(mean_interarrival_s),
        "mean_size_mb": float(mean_size_mb),
        "size_dist": size_dist,
        "seed": int(seed),
        "cross_traffic": bool(cross_traffic),
        "config": None if config is None else asdict(config),
        "warm_hash": warm_hash,
    }
    if topo is not None:
        ident["topo"] = topo.content_hash()
    return ident


def site_report_name(**unit_kwargs) -> str:
    """Content name of one site unit's published report (``site-<hash>``)."""
    ident = _site_unit_identity(**unit_kwargs)
    blob = json.dumps(ident, sort_keys=True, separators=(",", ":"))
    return "site-" + hashlib.sha256(blob.encode()).hexdigest()[:24]


def _with_site_label(samples: Sequence[MetricSample],
                     site: str) -> List[MetricSample]:
    """Stamp a ``site`` label onto every sample that lacks one.

    Each single-site unit runs against its own registry, so after
    stamping, every (name, labels) series originates from exactly one
    unit — which is why merging units in any order yields the same
    aggregate registry.
    """
    out: List[MetricSample] = []
    pair = ("site", site)
    for s in samples:
        if any(k == "site" for k, _v in s.labels):
            out.append(s)
        else:
            out.append(replace(s, labels=tuple(sorted(s.labels + (pair,)))))
    return out


@dataclass(frozen=True)
class ShardCell:
    """One shard of the fleet under one policy, as a campaign cell."""

    sites: Tuple[str, ...]
    provider: str
    mode: str  # "direct" | "broker" | "static:<route>"
    n_uploads_per_site: int
    mean_interarrival_s: float
    mean_size_mb: float
    size_dist: str = "lognormal"
    seed: int = 0
    shard_index: int = 0
    n_shards: int = 1
    cross_traffic: bool = True
    config: Optional[BrokerConfig] = None
    topo: Optional[TopoSpec] = None
    #: content hash of the warm snapshot ("" = cold start); part of the
    #: identity so warm and cold runs never collide in the store
    warm_hash: str = ""
    #: the warm snapshot itself — carried to the worker, never stored
    warm: Optional[DirectorySnapshot] = field(default=None, compare=False)
    #: file-tier root the worker publishes site reports to (optional)
    publish_root: Optional[str] = field(default=None, compare=False)
    #: route-cache directory for generated worlds (optional)
    cache_dir: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.sites:
            raise ShardError("shard cell needs at least one site")
        if not 0 <= self.shard_index < self.n_shards:
            raise ShardError(
                f"shard index {self.shard_index} outside 0..{self.n_shards - 1}")
        parse_mode(self.mode)  # fail fast on unknown policies

    # -- campaign cell protocol --------------------------------------------

    @property
    def n_uploads(self) -> int:
        return self.n_uploads_per_site * len(self.sites)

    @property
    def label(self) -> str:
        world = ("" if self.topo is None
                 else f"@{self.topo.content_hash()[:12]}")
        warm = f" warm={self.warm_hash[:8]}" if self.warm_hash else ""
        return (f"shard {self.shard_index + 1}/{self.n_shards}{world} "
                f"{'+'.join(self.sites)}->{self.provider} "
                f"{self.n_uploads}x~{self.mean_size_mb:g}MB "
                f"{self.size_dist} [{self.mode}]{warm}")

    @property
    def protocol(self) -> ExperimentProtocol:
        """One 'run' per upload, nothing discarded (mirrors fleet cells)."""
        return ExperimentProtocol(total_runs=self.n_uploads, discard_runs=0,
                                  inter_run_gap_s=0.0)

    def identity(self) -> Dict[str, object]:
        ident: Dict[str, object] = {
            "cell_type": SHARD_CELL_TYPE,
            "version": SHARD_CELL_VERSION,
            "sites": list(self.sites),
            "provider": self.provider,
            "mode": self.mode,
            "n_uploads_per_site": int(self.n_uploads_per_site),
            "mean_interarrival_s": float(self.mean_interarrival_s),
            "mean_size_mb": float(self.mean_size_mb),
            "size_dist": self.size_dist,
            "seed": int(self.seed),
            "shard_index": int(self.shard_index),
            "n_shards": int(self.n_shards),
            "cross_traffic": bool(self.cross_traffic),
            "config": None if self.config is None else asdict(self.config),
            "warm_hash": self.warm_hash,
        }
        if self.topo is not None:
            ident["topo"] = {"hash": self.topo.content_hash(),
                             "spec": self.topo.canonical_dict()}
        return ident

    @property
    def key(self) -> str:
        blob = json.dumps(self.identity(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    @classmethod
    def from_identity(cls, ident: Dict[str, object]) -> "ShardCell":
        if ident.get("cell_type") != SHARD_CELL_TYPE:
            raise CampaignError(f"not a {SHARD_CELL_TYPE} identity: {ident!r}")
        version = ident.get("version")
        if version != SHARD_CELL_VERSION:
            raise CampaignError(
                f"shard cell identity version {version!r} is not the "
                f"supported {SHARD_CELL_VERSION}")
        config = ident["config"]
        if config is not None:
            config = dict(config)
            config["size_class_edges_mb"] = tuple(config["size_class_edges_mb"])
            config = BrokerConfig(**config)
        topo_ident = ident.get("topo")
        topo = None
        if topo_ident is not None:
            topo = TopoSpec.from_dict(topo_ident["spec"])
            if topo.content_hash() != topo_ident["hash"]:
                raise CampaignError(
                    f"shard cell topo hash {topo_ident['hash']!r} does not "
                    f"match its spec (got {topo.content_hash()!r})")
        return cls(
            sites=tuple(ident["sites"]),
            provider=ident["provider"],
            mode=ident["mode"],
            n_uploads_per_site=int(ident["n_uploads_per_site"]),
            mean_interarrival_s=float(ident["mean_interarrival_s"]),
            mean_size_mb=float(ident["mean_size_mb"]),
            size_dist=ident["size_dist"],
            seed=int(ident["seed"]),
            shard_index=int(ident["shard_index"]),
            n_shards=int(ident["n_shards"]),
            cross_traffic=bool(ident["cross_traffic"]),
            config=config,
            topo=topo,
            warm_hash=ident["warm_hash"],
        )

    def describe(self) -> str:
        return f"{self.label} seed={self.seed}"

    # -- execution ----------------------------------------------------------

    def site_workload_label(self, site: str) -> str:
        """The per-site world identity — shared by every policy and by
        every partitioning of the plan (mode and shard excluded)."""
        world = ("" if self.topo is None
                 else f"@{self.topo.content_hash()[:12]}")
        return (f"shardsite{world} {site}->{self.provider} "
                f"{self.n_uploads_per_site}x~{self.mean_size_mb:g}MB "
                f"{self.size_dist}")

    def site_world_seed(self, site: str) -> int:
        return experiment_seed(self.seed, self.site_workload_label(site))

    def site_report_name(self, site: str) -> str:
        return site_report_name(
            site=site, provider=self.provider, mode=self.mode,
            n_uploads_per_site=self.n_uploads_per_site,
            mean_interarrival_s=self.mean_interarrival_s,
            mean_size_mb=self.mean_size_mb, size_dist=self.size_dist,
            seed=self.seed, cross_traffic=self.cross_traffic,
            config=self.config, topo=self.topo, warm_hash=self.warm_hash)

    def _build_world(self, site: str, metrics: MetricsRegistry):
        if self.topo is not None:
            from repro.topo.materialize import compile_spec, materialize

            compiled = compile_spec(self.topo, cache_dir=self.cache_dir,
                                    routes=True)
            return materialize(compiled, seed=self.site_world_seed(site),
                               metrics=metrics)
        from repro.testbed.build import build_case_study

        return build_case_study(seed=self.site_world_seed(site),
                                cross_traffic=self.cross_traffic,
                                metrics=metrics, cache_dir=self.cache_dir)

    def _run_site(self, site: str):
        """One single-site fleet unit: ``(result, report)``."""
        from repro.broker.service import DetourBroker
        from repro.broker.fleet import FleetRunner
        from repro.workloads.generator import fleet_population_schedule

        kind, _static = parse_mode(self.mode)
        if kind == "broker" and self.warm_hash and self.warm is None:
            raise ShardError(
                f"shard cell {self.describe()!r} was planned against warm "
                f"snapshot {self.warm_hash} but carries no snapshot object; "
                f"re-expand the plan with ShardPlan.expand(warm=...)")
        site_metrics = MetricsRegistry()
        world = self._build_world(site, site_metrics)
        if site not in world.hosts:
            raise ShardError(
                f"shard site {site!r} not in the world's host map "
                f"(world has {len(world.hosts)} hosts)")
        schedule = fleet_population_schedule(
            (site,), self.provider, self.n_uploads_per_site,
            self.mean_interarrival_s, self.mean_size_mb, seed=self.seed,
            size_dist=self.size_dist)
        broker = None
        if kind == "broker":
            broker = DetourBroker(world, pairs=[(site, self.provider)],
                                  config=self.config, warm=self.warm)
        result: FleetResult = FleetRunner(world, schedule, mode=self.mode,
                                          broker=broker).run()
        report = SiteReport(
            site=site,
            mode=self.mode,
            seed=self.seed,
            warm_hash=self.warm_hash,
            n_uploads=len(result.records),
            probes_issued=result.probes_issued,
            directory_hits=result.directory_hits,
            directory_misses=result.directory_misses,
            directory_evictions=result.directory_evictions,
            directory_warm_hits=(broker.directory.warm_hits
                                 if broker is not None else 0),
            invalidations=(broker.directory.invalidations
                           if broker is not None else 0),
            admission_spills=result.admission_spills,
            snapshot=(broker.directory.snapshot()
                      if broker is not None else None),
        )
        return result, report, site_metrics

    def run_measurement(self, metrics: Optional[MetricsRegistry] = None
                        ) -> Measurement:
        """Execute every site unit of this shard, in plan site order.

        Per-upload durations concatenate **site-major** (sites in cell
        order, uploads in schedule order within each site), so the
        merge can slice the stored measurement back into per-site
        streams.  Each unit's metric samples are stamped with its
        ``site`` label before merging into *metrics*, and its report is
        published to the file tier when ``publish_root`` is set.
        """
        tier = (DirectoryFileTier(self.publish_root)
                if self.publish_root is not None else None)
        durations: List[float] = []
        for site in self.sites:
            result, report, site_metrics = self._run_site(site)
            durations.extend(result.durations_s)
            if metrics is not None:
                metrics.merge_samples(
                    _with_site_label(site_metrics.collect(), site))
            if tier is not None:
                tier.publish(self.site_report_name(site), report.to_dict())
        return Measurement(label=self.label, all_durations_s=tuple(durations),
                           kept=summarize(durations), results=())


register_cell_type(SHARD_CELL_TYPE, ShardCell)


@dataclass(frozen=True)
class ShardPlan:
    """A fleet workload and its deterministic partition into shards."""

    sites: Tuple[str, ...]
    provider: str = "gdrive"
    modes: Tuple[str, ...] = ("direct", "broker")
    n_shards: int = 1
    n_uploads_per_site: int = 20
    mean_interarrival_s: float = 60.0
    mean_size_mb: float = 40.0
    size_dist: str = "lognormal"
    seed: int = 0
    cross_traffic: bool = True
    config: Optional[BrokerConfig] = None
    #: run the fleet on this (typically generated) world instead of the
    #: calibrated case study; referenced by content hash everywhere
    topo: Optional[TopoSpec] = None

    def __post_init__(self) -> None:
        if not self.sites:
            raise ShardError("shard plan needs at least one site")
        if len(set(self.sites)) != len(self.sites):
            raise ShardError(f"shard plan sites repeat: {list(self.sites)}")
        if not self.modes:
            raise ShardError("shard plan needs at least one mode")
        if self.n_shards < 1:
            raise ShardError(f"n_shards must be >= 1, got {self.n_shards}")
        for mode in self.modes:
            parse_mode(mode)

    # -- the partition ------------------------------------------------------

    def shard_of(self, site: str) -> int:
        """The shard *site* belongs to — a pure function of (seed, site).

        Derived through the same sha256 path as RngRegistry stream
        seeds, so the partition is stable across processes, platforms,
        and job counts; it never depends on the order sites are listed
        or on which shards have already executed.
        """
        return derive_seed(self.seed, f"shard:{site}") % self.n_shards

    def shards(self) -> Tuple[Tuple[str, ...], ...]:
        """Per-shard site tuples (plan site order within each shard)."""
        buckets: List[List[str]] = [[] for _ in range(self.n_shards)]
        for site in self.sites:
            buckets[self.shard_of(site)].append(site)
        return tuple(tuple(b) for b in buckets)

    # -- identity -----------------------------------------------------------

    def canonical_dict(self) -> Dict[str, object]:
        """JSON-able plan identity (round-trips via :meth:`from_dict`)."""
        d: Dict[str, object] = {
            "sites": list(self.sites),
            "provider": self.provider,
            "modes": list(self.modes),
            "n_shards": int(self.n_shards),
            "n_uploads_per_site": int(self.n_uploads_per_site),
            "mean_interarrival_s": float(self.mean_interarrival_s),
            "mean_size_mb": float(self.mean_size_mb),
            "size_dist": self.size_dist,
            "seed": int(self.seed),
            "cross_traffic": bool(self.cross_traffic),
            "config": None if self.config is None else asdict(self.config),
        }
        if self.topo is not None:
            d["topo"] = {"hash": self.topo.content_hash(),
                         "spec": self.topo.canonical_dict()}
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ShardPlan":
        config = d["config"]
        if config is not None:
            config = dict(config)
            config["size_class_edges_mb"] = tuple(config["size_class_edges_mb"])
            config = BrokerConfig(**config)
        topo_ident = d.get("topo")
        topo = None
        if topo_ident is not None:
            topo = TopoSpec.from_dict(topo_ident["spec"])
            if topo.content_hash() != topo_ident["hash"]:
                raise ShardError(
                    f"shard plan topo hash {topo_ident['hash']!r} does not "
                    f"match its spec (got {topo.content_hash()!r})")
        return cls(
            sites=tuple(d["sites"]),
            provider=d["provider"],
            modes=tuple(d["modes"]),
            n_shards=int(d["n_shards"]),
            n_uploads_per_site=int(d["n_uploads_per_site"]),
            mean_interarrival_s=float(d["mean_interarrival_s"]),
            mean_size_mb=float(d["mean_size_mb"]),
            size_dist=d["size_dist"],
            seed=int(d["seed"]),
            cross_traffic=bool(d["cross_traffic"]),
            config=config,
            topo=topo,
        )

    @property
    def plan_key(self) -> str:
        blob = json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    @property
    def merged_snapshot_name(self) -> str:
        """Where :func:`~repro.shard.runner.merge_sharded` publishes the
        fleet's merged directory."""
        return f"merged-{self.plan_key}"

    @property
    def n_uploads(self) -> int:
        return self.n_uploads_per_site * len(self.sites)

    def describe(self) -> str:
        cells = sum(1 for s in self.shards() if s) * len(self.modes)
        world = ("" if self.topo is None
                 else f" @{self.topo.content_hash()[:12]}")
        return (f"sharded fleet{world} {len(self.sites)} site(s) -> "
                f"{self.provider}: {len(self.modes)} polic(ies) x "
                f"{self.n_shards} shard(s) = {cells} cells, "
                f"{self.n_uploads} uploads/policy")

    # -- expansion ----------------------------------------------------------

    def site_report_name(self, site: str, mode: str,
                         warm_hash: str = "") -> str:
        """The report name a worker publishes for *(site, mode)*.

        Non-broker policies never warm, so their names always carry an
        empty ``warm_hash`` — matching what :meth:`expand` plants on the
        cells.
        """
        is_broker = parse_mode(mode)[0] == "broker"
        return site_report_name(
            site=site, provider=self.provider, mode=mode,
            n_uploads_per_site=self.n_uploads_per_site,
            mean_interarrival_s=self.mean_interarrival_s,
            mean_size_mb=self.mean_size_mb, size_dist=self.size_dist,
            seed=self.seed, cross_traffic=self.cross_traffic,
            config=self.config, topo=self.topo,
            warm_hash=warm_hash if is_broker else "")

    def expand(self, warm: Optional[DirectorySnapshot] = None,
               warm_hash: Optional[str] = None,
               publish_root: Optional[str] = None,
               cache_dir: Optional[str] = None) -> List[ShardCell]:
        """The plan's cells: shard-major, then mode (modes as given).

        Empty shards are skipped.  *warm* rides only on broker-kind
        cells (a warm snapshot cannot change a broker-less policy, and
        keeping direct cells warm-free lets the store reuse them across
        warm generations).  Passing *warm_hash* without the snapshot
        builds identity-only cells — enough for store lookups and
        report names, not executable.
        """
        if warm is not None:
            warm_hash = warm.content_hash()[:24]
        elif warm_hash is None:
            warm_hash = ""
        cells: List[ShardCell] = []
        for index, shard_sites in enumerate(self.shards()):
            if not shard_sites:
                continue
            for mode in self.modes:
                is_broker = parse_mode(mode)[0] == "broker"
                cells.append(ShardCell(
                    sites=shard_sites,
                    provider=self.provider,
                    mode=mode,
                    n_uploads_per_site=self.n_uploads_per_site,
                    mean_interarrival_s=self.mean_interarrival_s,
                    mean_size_mb=self.mean_size_mb,
                    size_dist=self.size_dist,
                    seed=self.seed,
                    shard_index=index,
                    n_shards=self.n_shards,
                    cross_traffic=self.cross_traffic,
                    config=self.config,
                    topo=self.topo,
                    warm_hash=warm_hash if is_broker else "",
                    warm=warm if is_broker else None,
                    publish_root=publish_root,
                    cache_dir=cache_dir,
                ))
        return cells
