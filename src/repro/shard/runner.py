"""Sharded fleet execution: run, resume, and merge under one root.

``run_sharded`` is the one-call path: expand the plan into shard cells,
warm them from a published directory snapshot (optional), execute them
through the :mod:`repro.campaign` pool against a content-addressed store
under ``<root>/cells``, then fold everything with ``merge_sharded``.
Resume is inherited from the store: a run killed mid-flight (including
``SIGKILL``, which skips all cleanup) re-executes only the cells whose
records never landed — completed shards are answered from the store
byte-identically.

The run root's layout is fixed::

    <root>/shardrun.json   the plan + warm provenance (written *before*
                           execution, so status/merge work after a crash)
    <root>/cells/          campaign result store (one JSON per cell)
    <root>/directory/      shared-directory file tier: per-site reports,
                           published snapshots (incl. the merged one)
    <root>/topo-cache/     route cache for generated worlds

``merge_sharded`` never rebuilds worlds and never re-reads upload
records into memory: it slices each cell's stored durations back into
per-site streams (site-major, the order ``ShardCell.run_measurement``
wrote them), folds them through a :class:`~repro.shard.aggregate.FleetAggregator`
in O(sites) state, folds the published site reports into the rollup, and
merges the per-site directory snapshots freshest-wins **in plan site
order** — so the merged score, rollup, and snapshot are pure functions
of the plan, whatever the shard or job count was.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.broker.directory import DirectorySnapshot
from repro.broker.fleet import FleetScore
from repro.campaign.pool import PoolConfig
from repro.campaign.runner import CampaignRunner, campaign_status
from repro.campaign.store import ResultStore
from repro.core.atomic import atomic_write_json
from repro.errors import ShardError
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryEvent, as_sink

from repro.shard.aggregate import FleetAggregator
from repro.shard.plan import ShardCell, ShardPlan
from repro.shard.service import SharedDirectoryService

__all__ = ["ShardMergeResult", "ShardRunResult", "run_sharded",
           "merge_sharded", "shard_status", "read_run_file", "write_run_file"]

RUN_FILE = "shardrun.json"
RUN_FILE_VERSION = 1


class _ShardSpec:
    """A fixed cell list wearing the campaign spec protocol."""

    def __init__(self, cells: List[ShardCell], plan: ShardPlan):
        self._cells = cells
        self._plan = plan

    def expand(self) -> List[ShardCell]:
        return list(self._cells)

    def describe(self) -> str:
        return self._plan.describe()


@dataclass(frozen=True)
class ShardMergeResult:
    """What one merge produced: the fleet score and its provenance."""

    score: FleetScore
    #: mode -> directory/probe aggregates (see ``FleetAggregator.rollup``)
    rollup: Dict[str, Dict[str, float]]
    merged_snapshot_name: str
    merged_snapshot_hash: str
    merged_entries: int
    #: live accumulator cells the aggregator ended with — the O(sites)
    #: memory claim, asserted by the scale benchmark
    aggregator_cells: int
    records_folded: int

    def render(self, per_site: bool = False) -> str:
        lines = [self.score.render(per_site=per_site)]
        for mode in sorted(self.rollup):
            r = self.rollup[mode]
            lines.append(
                f"  {mode}: {r['probes_issued']:g} probes "
                f"({r['probes_per_upload']:.2f}/upload), "
                f"hit rate {r['hit_rate']:.0%} "
                f"(warm {r['warm_hit_rate']:.0%}), "
                f"{r['evictions']:g} evictions, "
                f"{r['invalidations']:g} invalidations, "
                f"{r['admission_spills']:g} spills")
        lines.append(f"merged directory: {self.merged_entries} entries as "
                     f"{self.merged_snapshot_name} "
                     f"({self.merged_snapshot_hash[:12]})")
        return "\n".join(lines)


@dataclass(frozen=True)
class ShardRunResult:
    """What one ``run_sharded`` invocation did."""

    plan: ShardPlan
    executed: int
    cached: int
    warm_from: Optional[str]
    warm_entries: int
    merge: ShardMergeResult


def write_run_file(root: Union[str, Path], plan: ShardPlan,
                   warm_from: Optional[str], warm_hash: str,
                   warm_entries: int) -> Path:
    """Persist the run's provenance (atomically) under the run root."""
    payload = {
        "version": RUN_FILE_VERSION,
        "plan": plan.canonical_dict(),
        "warm_from": warm_from,
        "warm_hash": warm_hash,
        "warm_entries": int(warm_entries),
    }
    return atomic_write_json(Path(root) / RUN_FILE, payload,
                             sort_keys=True, indent=1, mkdir=True)


def read_run_file(root: Union[str, Path]) -> Dict[str, object]:
    """The run root's provenance document (plan dict + warm lineage)."""
    path = Path(root) / RUN_FILE
    if not path.is_file():
        raise ShardError(
            f"no shard run at {Path(root)} (missing {RUN_FILE}; "
            f"start one with run_sharded / `repro shard run`)")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ShardError(f"corrupt shard run file {path}: {exc}") from exc
    if payload.get("version") != RUN_FILE_VERSION:
        raise ShardError(
            f"unsupported shard run file version {payload.get('version')!r}")
    return payload


def _layout(root: Union[str, Path]) -> Tuple[Path, Path, Path, Path]:
    root = Path(root)
    return root, root / "cells", root / "directory", root / "topo-cache"


def run_sharded(
    plan: ShardPlan,
    root: Union[str, Path],
    jobs: int = 1,
    warm_from: Optional[str] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    metrics: Optional[MetricsRegistry] = None,
    telemetry=None,
) -> ShardRunResult:
    """Execute (or resume) *plan* under *root*, then merge.

    *warm_from* names a snapshot published in the run root's directory
    tier (e.g. a previous generation's ``merged-<plan key>``); every
    broker-kind cell preloads it.  A missing name is an error — silently
    running cold would store cells under a different identity than the
    caller asked for.
    """
    root, cells_dir, dir_root, cache_dir = _layout(root)
    registry = metrics if metrics is not None else MetricsRegistry(enabled=False)
    service = SharedDirectoryService(dir_root, metrics=metrics)
    sink = as_sink(telemetry)

    warm = None
    warm_hash = ""
    if warm_from is not None:
        warm = service.fetch_snapshot(warm_from)
        if warm is None:
            raise ShardError(
                f"warm snapshot {warm_from!r} is not published under "
                f"{dir_root} (or is fully stale); published: "
                f"{service.tier.names()[:8]}")
        warm_hash = warm.content_hash()[:24]
        if sink is not None:
            sink(TelemetryEvent("shard_warmed", warm_from, 0, status="ok",
                                queue_depth=len(warm)))

    if plan.topo is not None:
        # Compile the generated world once, in the parent: every worker
        # then loads routes from the shared cache instead of redoing the
        # all-pairs computation per site unit.
        from repro.topo.materialize import compile_spec

        compile_spec(plan.topo, cache_dir=str(cache_dir), routes=True)

    write_run_file(root, plan, warm_from, warm_hash,
                   0 if warm is None else len(warm))

    cells = plan.expand(warm=warm, publish_root=str(dir_root),
                        cache_dir=str(cache_dir))
    registry.gauge(
        "repro_shard_cells_count",
        "Cells (non-empty shard x policy) of the executing plan",
    ).set(len(cells))
    runner = CampaignRunner(
        _ShardSpec(cells, plan),
        store=ResultStore(cells_dir),
        pool=PoolConfig(jobs=jobs, timeout_s=timeout_s, retries=retries),
        metrics=registry,
        telemetry=telemetry,
    )
    result = runner.run()
    bad = [r for r in result.records if not r.ok]
    if bad:
        details = "; ".join(
            f"{r.cell.describe()}: {r.error.describe()}" for r in bad[:3])
        raise ShardError(
            f"{len(bad)} shard cell(s) quarantined ({details}); the store "
            f"keeps the {result.executed + result.cached - len(bad)} good "
            f"cell(s) — fix and re-run to resume")

    if sink is not None:
        sink(TelemetryEvent("shard_published", plan.describe(), 0,
                            status="ok",
                            queue_depth=sum(len(c.sites) for c in cells)))
    merge = merge_sharded(plan, root, warm_hash=warm_hash, metrics=metrics,
                          telemetry=telemetry)
    return ShardRunResult(
        plan=plan,
        executed=result.executed,
        cached=result.cached,
        warm_from=warm_from,
        warm_entries=0 if warm is None else len(warm),
        merge=merge,
    )


def merge_sharded(
    plan: ShardPlan,
    root: Union[str, Path],
    warm_hash: str = "",
    metrics: Optional[MetricsRegistry] = None,
    telemetry=None,
) -> ShardMergeResult:
    """Fold a completed (possibly previously killed and resumed) run.

    Works offline: everything the merge needs — stored measurements,
    published site reports — is on disk, so ``repro shard merge`` can
    run in a fresh process long after the workers exited.  Processes one
    shard at a time and one site's streams at a time; the only growing
    state is the aggregator's O(sites) cells and the per-site directory
    snapshots awaiting the freshest-wins fold.
    """
    root, cells_dir, dir_root, _cache = _layout(root)
    registry = metrics if metrics is not None else MetricsRegistry(enabled=False)
    store = ResultStore(cells_dir)
    service = SharedDirectoryService(dir_root, metrics=metrics)
    aggregator = FleetAggregator(plan.modes)
    snapshots: Dict[str, DirectorySnapshot] = {}
    n_per_site = plan.n_uploads_per_site

    by_shard: Dict[int, Dict[str, ShardCell]] = {}
    for cell in plan.expand(warm_hash=warm_hash):
        by_shard.setdefault(cell.shard_index, {})[cell.mode] = cell

    for index in sorted(by_shard):
        per_mode = by_shard[index]
        durations: Dict[str, Tuple[float, ...]] = {}
        shard_sites: Tuple[str, ...] = ()
        for mode, cell in per_mode.items():
            rec = store.get(cell)
            if rec is None or not rec.ok:
                state = "quarantined" if rec is not None else "not computed"
                raise ShardError(
                    f"cannot merge: cell {cell.describe()!r} is {state}; "
                    f"run the plan (again) to completion first")
            expected = len(cell.sites) * n_per_site
            got = len(rec.measurement.all_durations_s)
            if got != expected:
                raise ShardError(
                    f"stored cell {cell.describe()!r} has {got} durations, "
                    f"expected {expected} ({len(cell.sites)} sites x "
                    f"{n_per_site})")
            durations[mode] = rec.measurement.all_durations_s
            shard_sites = cell.sites
        for j, site in enumerate(shard_sites):
            sl = slice(j * n_per_site, (j + 1) * n_per_site)
            aggregator.fold_site(
                site, {mode: durations[mode][sl] for mode in plan.modes})
            for mode in plan.modes:
                name = plan.site_report_name(site, mode, warm_hash)
                report = service.fetch_report(name)
                if report is None:
                    raise ShardError(
                        f"site report {name!r} for ({site!r}, {mode!r}) was "
                        f"never published under {dir_root}; re-run the plan "
                        f"to completion first")
                aggregator.fold_report(report)
                if report.snapshot is not None:
                    snapshots[site] = (
                        report.snapshot if site not in snapshots else
                        DirectorySnapshot.merged(
                            [snapshots[site], report.snapshot]))

    score = aggregator.score(plan.sites)
    rollup = aggregator.rollup()
    merged = DirectorySnapshot.merged(
        [snapshots[s] for s in plan.sites if s in snapshots])
    merged_hash = service.publish_snapshot(plan.merged_snapshot_name, merged)

    registry.gauge(
        "repro_shard_merged_sites_count",
        "Sites folded into the merged fleet score").set(aggregator.sites_folded)
    registry.gauge(
        "repro_shard_merged_entries_count",
        "Route entries in the published merged snapshot").set(len(merged))
    registry.gauge(
        "repro_shard_aggregator_cells_count",
        "Accumulator cells the merge ended with (O(sites) claim)",
    ).set(aggregator.state_cells)
    sink = as_sink(telemetry)
    if sink is not None:
        sink(TelemetryEvent("shard_merged", plan.merged_snapshot_name, 0,
                            status="ok", queue_depth=len(merged)))
    return ShardMergeResult(
        score=score,
        rollup=rollup,
        merged_snapshot_name=plan.merged_snapshot_name,
        merged_snapshot_hash=merged_hash,
        merged_entries=len(merged),
        aggregator_cells=aggregator.state_cells,
        records_folded=aggregator.records_folded,
    )


def shard_status(plan: ShardPlan, root: Union[str, Path],
                 warm_hash: str = "") -> Dict[str, object]:
    """How far a run under *root* has progressed (crash-safe, read-only)."""
    root, cells_dir, dir_root, _cache = _layout(root)
    store = ResultStore(cells_dir)
    cells = plan.expand(warm_hash=warm_hash)
    status = campaign_status(_ShardSpec(cells, plan), store)
    service = SharedDirectoryService(dir_root)
    published = 0
    expected = 0
    for cell in cells:
        for site in cell.sites:
            expected += 1
            if cell.site_report_name(site) in service.tier:
                published += 1
    status["reports_published"] = published
    status["reports_expected"] = expected
    status["merged_published"] = plan.merged_snapshot_name in service.tier
    status["shards"] = [
        {"index": i, "sites": len(sites)}
        for i, sites in enumerate(plan.shards()) if sites
    ]
    return status
