"""The shared route-directory service: snapshots behind two cache tiers.

``repro.shard`` workers do not talk to each other; they exchange route
recommendations through *published artifacts*.  This module provides the
substrate:

* :class:`DirectoryFileTier` — a directory of atomically written,
  name-addressed JSON documents.  The durable tier: every payload a
  worker publishes (a directory snapshot, a per-site report) lands here,
  and any later process — a sibling shard, a ``repro shard merge``, a
  whole new campaign warming from last week's run — can fetch it back.

* :class:`SharedDirectoryService` — the serving front: an in-memory LRU
  tier over the file tier, with hit/miss/eviction/staleness counters
  (``repro_shard_directory_*`` in :mod:`repro.obs`).  Fetches check the
  memory tier first, fall through to disk, and remember what they find;
  publishes write through both tiers.  A snapshot whose every entry has
  expired at the caller's sim time is *stale*: counted and withheld, so
  a fleet never warms from recommendations it would immediately evict.

* :class:`SiteReport` — the per-(site, policy) rollup a shard worker
  publishes next to its snapshot: directory and probe statistics the
  streaming aggregator folds without ever re-reading upload records.

Nothing here reads a clock: staleness is judged against the *sim* time
the caller passes in, and the LRU is ordered by access, not by wall
time — the service is as deterministic as the workers it serves.
"""

from __future__ import annotations

import json
import re
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.broker.directory import DirectorySnapshot
from repro.core.atomic import atomic_write_json
from repro.errors import ShardError
from repro.obs.metrics import MetricsRegistry

__all__ = ["DirectoryFileTier", "SharedDirectoryService", "SiteReport"]

#: Bump when the on-disk report shape changes incompatibly.
REPORT_VERSION = 1

#: Published names are path components; keep them boring on purpose.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ShardError(
            f"invalid published-artifact name {name!r} (want "
            f"letters/digits/._- only, not starting with a separator)")
    return name


class DirectoryFileTier:
    """Name-addressed JSON documents with atomic publishes.

    The durable tier of the shared directory service, and the transport
    for per-site reports.  Writes go through a temp file and
    ``os.replace``, so concurrent shard workers publishing the same name
    (which, being deterministic, always carry the same content) can race
    freely without a reader ever seeing a torn document.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def path_for(self, name: str) -> Path:
        return self.root / f"{_check_name(name)}.json"

    def publish(self, name: str, payload: Dict[str, object]) -> Path:
        """Atomically write *payload* under *name*; returns its path."""
        return atomic_write_json(self.path_for(name), payload,
                                 sort_keys=True, separators=(",", ":"),
                                 mkdir=True)

    def clean_tmp(self) -> int:
        """Sweep stale temp files left by killed writers; returns count.

        The atomic-write protocol's temp names end in ``.tmp`` (see
        :mod:`repro.core.atomic`), so the glob can never match a
        published ``*.json`` document — sweeping is always safe, even
        while other writers are racing.
        """
        if not self.root.is_dir():
            return 0
        swept = 0
        for stray in sorted(self.root.glob("*.tmp")):
            try:
                stray.unlink()
                swept += 1
            except OSError:
                pass  # a racing writer already published or swept it
        return swept

    def fetch(self, name: str) -> Optional[Dict[str, object]]:
        """The payload published under *name*, or None."""
        path = self.path_for(name)
        if not path.is_file():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ShardError(f"corrupt published artifact {path}: {exc}") from exc

    def names(self) -> List[str]:
        """Every published name, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def __contains__(self, name: str) -> bool:
        return self.path_for(name).is_file()

    def __len__(self) -> int:
        return len(self.names())


@dataclass(frozen=True)
class SiteReport:
    """One site's fleet-unit rollup under one policy.

    Published by the shard worker that executed the unit, keyed by a
    partition-independent content name, and folded by
    :class:`~repro.shard.aggregate.FleetAggregator` — so hit rates and
    probes/upload aggregate without touching the upload records at all.
    ``snapshot`` carries the unit's final route directory (broker-kind
    policies only); ``warm_hash`` names the snapshot the unit warmed
    from ("" = cold start).
    """

    site: str
    mode: str
    seed: int
    warm_hash: str
    n_uploads: int
    probes_issued: int
    directory_hits: int
    directory_misses: int
    directory_evictions: int
    directory_warm_hits: int
    invalidations: int
    admission_spills: int
    snapshot: Optional[DirectorySnapshot] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": REPORT_VERSION,
            "site": self.site,
            "mode": self.mode,
            "seed": int(self.seed),
            "warm_hash": self.warm_hash,
            "n_uploads": int(self.n_uploads),
            "probes_issued": int(self.probes_issued),
            "directory_hits": int(self.directory_hits),
            "directory_misses": int(self.directory_misses),
            "directory_evictions": int(self.directory_evictions),
            "directory_warm_hits": int(self.directory_warm_hits),
            "invalidations": int(self.invalidations),
            "admission_spills": int(self.admission_spills),
            "snapshot": (None if self.snapshot is None
                         else self.snapshot.to_dict()),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "SiteReport":
        version = d.get("version")
        if version != REPORT_VERSION:
            raise ShardError(f"unsupported site-report version {version!r}")
        snapshot = d.get("snapshot")
        return cls(
            site=d["site"],
            mode=d["mode"],
            seed=int(d["seed"]),
            warm_hash=d["warm_hash"],
            n_uploads=int(d["n_uploads"]),
            probes_issued=int(d["probes_issued"]),
            directory_hits=int(d["directory_hits"]),
            directory_misses=int(d["directory_misses"]),
            directory_evictions=int(d["directory_evictions"]),
            directory_warm_hits=int(d["directory_warm_hits"]),
            invalidations=int(d["invalidations"]),
            admission_spills=int(d["admission_spills"]),
            snapshot=(None if snapshot is None
                      else DirectorySnapshot.from_dict(snapshot)),
        )


class SharedDirectoryService:
    """Two-tier snapshot cache: in-memory LRU over the file tier.

    The memory tier holds up to ``max_memory_snapshots`` deserialized
    snapshots, evicting least-recently-used (counted); misses fall
    through to :class:`DirectoryFileTier` and backfill.  Every outcome
    is counted both as a plain attribute (``memory_hits`` & co., so the
    service is observable with metrics disabled) and as a
    ``repro_shard_directory_*`` series in the given registry.
    """

    def __init__(self, root: Union[str, Path], max_memory_snapshots: int = 64,
                 metrics: Optional[MetricsRegistry] = None):
        if max_memory_snapshots < 1:
            raise ShardError(
                f"max_memory_snapshots must be >= 1, got {max_memory_snapshots}")
        self.tier = DirectoryFileTier(root)
        self.max_memory_snapshots = int(max_memory_snapshots)
        self._memory: "OrderedDict[str, DirectorySnapshot]" = OrderedDict()
        self.memory_hits = 0
        self.memory_misses = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.evictions = 0
        self.stale = 0
        self.publishes = 0
        registry = metrics if metrics is not None else MetricsRegistry(enabled=False)
        self._m_tier = registry.counter(
            "repro_shard_directory_tier_total",
            "Shared-directory fetch outcomes, by cache tier")
        self._m_evictions = registry.counter(
            "repro_shard_directory_evictions_total",
            "Memory-tier snapshots evicted least-recently-used")
        self._m_stale = registry.counter(
            "repro_shard_directory_stale_total",
            "Snapshot fetches withheld because every entry had expired")
        self._m_publishes = registry.counter(
            "repro_shard_directory_publishes_total",
            "Snapshots published through the service")

    def __len__(self) -> int:
        """Snapshots resident in the memory tier."""
        return len(self._memory)

    def _remember(self, name: str, snapshot: DirectorySnapshot) -> None:
        self._memory[name] = snapshot
        self._memory.move_to_end(name)
        while len(self._memory) > self.max_memory_snapshots:
            self._memory.popitem(last=False)
            self.evictions += 1
            self._m_evictions.inc()

    def publish_snapshot(self, name: str, snapshot: DirectorySnapshot) -> str:
        """Write through both tiers; returns the snapshot content hash."""
        self.tier.publish(name, snapshot.to_dict())
        self._remember(name, snapshot)
        self.publishes += 1
        self._m_publishes.inc()
        return snapshot.content_hash()

    def fetch_snapshot(self, name: str,
                       now_s: float = 0.0) -> Optional[DirectorySnapshot]:
        """The published snapshot, or None (unknown name or fully stale).

        *now_s* is the fleet sim time the caller would warm at; a
        non-empty snapshot whose every entry has expired by then is
        counted as stale and withheld — fetching it again later never
        makes it fresher, but keeping the check here means callers
        cannot forget it.
        """
        snapshot = self._memory.get(name)
        if snapshot is not None:
            self._memory.move_to_end(name)
            self.memory_hits += 1
            self._m_tier.inc(tier="memory", outcome="hit")
        else:
            self.memory_misses += 1
            self._m_tier.inc(tier="memory", outcome="miss")
            payload = self.tier.fetch(name)
            if payload is None:
                self.disk_misses += 1
                self._m_tier.inc(tier="disk", outcome="miss")
                return None
            self.disk_hits += 1
            self._m_tier.inc(tier="disk", outcome="hit")
            snapshot = DirectorySnapshot.from_dict(payload)
            self._remember(name, snapshot)
        if len(snapshot) and now_s >= snapshot.max_expires_s:
            self.stale += 1
            self._m_stale.inc()
            return None
        return snapshot

    # -- site reports ride the same durable tier ---------------------------

    def publish_report(self, name: str, report: SiteReport) -> Path:
        return self.tier.publish(name, report.to_dict())

    def fetch_report(self, name: str) -> Optional[SiteReport]:
        payload = self.tier.fetch(name)
        return None if payload is None else SiteReport.from_dict(payload)

    def counters(self) -> Dict[str, int]:
        """The plain-attribute counters as one dict (for rendering)."""
        return {
            "memory_hits": self.memory_hits,
            "memory_misses": self.memory_misses,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "evictions": self.evictions,
            "stale": self.stale,
            "publishes": self.publishes,
        }
