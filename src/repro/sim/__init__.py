"""Discrete-event simulation kernel.

A small, dependency-free, generator-based DES in the style of SimPy:

* :class:`~repro.sim.kernel.Simulator` — event heap + virtual clock,
* :class:`~repro.sim.kernel.Process` — coroutine processes that ``yield``
  delays, signals, other processes, or combinators,
* :class:`~repro.sim.rng.RngRegistry` — named, seeded random streams so
  every experiment is reproducible from a single master seed,
* :class:`~repro.sim.trace.Tracer` — structured event log.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Interrupt,
    Process,
    Signal,
    Simulator,
    Timeout,
)
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "RngRegistry",
    "Signal",
    "Simulator",
    "Timeout",
    "TraceEvent",
    "Tracer",
]
