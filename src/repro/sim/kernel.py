"""Generator-based discrete-event simulation kernel.

The kernel is deliberately small: an event heap keyed on (time, priority,
sequence), a virtual clock, and coroutine processes.  A process is a Python
generator that ``yield``s *waitables*:

* a non-negative ``float``/``int`` — sleep for that many simulated seconds;
* a :class:`Signal` — park until someone calls :meth:`Signal.trigger`;
* another :class:`Process` — join it (the yield evaluates to its result);
* :class:`AllOf` / :class:`AnyOf` — combinators over waitables;
* a :class:`Timeout` wrapper — like joining, but bounded in time.

Example
-------
>>> sim = Simulator()
>>> def pinger(sim, sig):
...     yield 1.5
...     sig.trigger("pong")
>>> def waiter(sim, sig):
...     value = yield sig
...     return (sim.now, value)
>>> sig = Signal(sim)
>>> sim.process(pinger(sim, sig))            # doctest: +ELLIPSIS
<Process ...>
>>> p = sim.process(waiter(sim, sig))
>>> sim.run()
>>> p.result
(1.5, 'pong')
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

__all__ = [
    "Simulator",
    "Process",
    "Signal",
    "AllOf",
    "AnyOf",
    "Timeout",
    "Interrupt",
]


class Interrupt(Exception):
    """Thrown *into* a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Scheduled:
    """Internal heap entry; compares on (time, priority, seq)."""

    __slots__ = ("time", "priority", "seq", "fn", "cancelled")

    def __init__(self, time: float, priority: int, seq: int, fn: Callable[[], None]):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def __lt__(self, other: "_Scheduled") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)


class Handle:
    """Cancellable handle for a scheduled callback."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Scheduled):
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def active(self) -> bool:
        return not self._entry.cancelled

    def cancel(self) -> None:
        self._entry.cancelled = True


class Simulator:
    """Virtual clock + event heap.

    Parameters
    ----------
    start:
        Initial simulated time (seconds).
    profiler:
        Optional :class:`repro.obs.KernelProfiler` (duck-typed to keep the
        kernel dependency-free: anything with ``run_callback(fn, sim_time)``).
        When set, every event executes through it for wall-time attribution,
        tagged with the simulated time it fired at.
    """

    def __init__(self, start: float = 0.0, profiler: Optional[Any] = None):
        self._now = float(start)
        self._heap: list[_Scheduled] = []
        self._seq = itertools.count()
        self._running = False
        self._active_processes = 0
        self.profiler = profiler

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- raw callback scheduling -------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None], priority: int = 0) -> Handle:
        """Run ``fn()`` after *delay* simulated seconds.

        ``priority`` breaks ties at equal times (lower runs first).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past (now={self._now})")
        entry = _Scheduled(self._now + delay, priority, next(self._seq), fn)
        heapq.heappush(self._heap, entry)
        return Handle(entry)

    def schedule_at(self, time: float, fn: Callable[[], None], priority: int = 0) -> Handle:
        """Run ``fn()`` at absolute simulated *time*."""
        return self.schedule(time - self._now, fn, priority)

    # -- processes ----------------------------------------------------------

    def process(self, gen: Generator, name: str = "") -> "Process":
        """Spawn *gen* as a process; it starts at the current time."""
        return Process(self, gen, name=name)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns False if the heap is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            if entry.time < self._now - 1e-12:
                raise SimulationError("event heap corrupted: time went backwards")
            self._now = max(self._now, entry.time)
            prof = self.profiler
            if prof is None:
                entry.fn()
            else:
                # Event-type hook: the profiler attributes wall time to the
                # callback's definition site and correlates it with the
                # simulated instant the event fired at.
                prof.run_callback(entry.fn, self._now)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Run until the heap drains or the clock passes *until*.

        ``max_events`` is a runaway-loop backstop.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        try:
            for _ in range(max_events):
                if until is not None:
                    # Peek: stop before executing events beyond the horizon.
                    while self._heap and self._heap[0].cancelled:
                        heapq.heappop(self._heap)
                    if not self._heap or self._heap[0].time > until:
                        self._now = max(self._now, until)
                        return
                if not self.step():
                    return
            raise SimulationError(f"exceeded max_events={max_events}; runaway simulation?")
        finally:
            self._running = False

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run_until_triggered(
        self,
        signal: "Signal",
        horizon: Optional[float] = None,
        max_events: int = 50_000_000,
    ) -> bool:
        """Step until *signal* triggers (e.g. a Process's ``done``).

        Unlike :meth:`run`, this stops as soon as the condition holds, so
        perpetual background processes (cross-traffic generators) don't
        keep the simulation alive forever.  Returns True if the signal
        triggered, False if the heap drained or *horizon* passed first.
        """
        for _ in range(max_events):
            if signal.triggered:
                return True
            upcoming = self.peek()
            if upcoming is None:
                return signal.triggered
            if horizon is not None and upcoming > horizon:
                self._now = max(self._now, horizon)
                return signal.triggered
            self.step()
        raise SimulationError(f"exceeded max_events={max_events}; runaway simulation?")


# ---------------------------------------------------------------------------
# Waitables
# ---------------------------------------------------------------------------


class _Waitable:
    """Anything a process can yield.  Subclasses implement ``_subscribe``."""

    def _subscribe(self, sim: Simulator, callback: Callable[[Any, Optional[BaseException]], None]) -> Callable[[], None]:
        """Arrange for ``callback(value, exc)`` to fire exactly once.

        Returns a detach function used to cancel interest (for AnyOf /
        interrupts).
        """
        raise NotImplementedError


class Signal(_Waitable):
    """A one-shot level-triggered event: once triggered, stays triggered.

    Waiters that arrive after the trigger resume immediately (on the next
    event-loop tick, preserving causality).
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self._sim = sim
        self.name = name
        self._triggered = False
        self._failed: Optional[BaseException] = None
        self._value: Any = None
        self._callbacks: list[Callable[[Any, Optional[BaseException]], None]] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"signal {self.name!r} not yet triggered")
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the signal, waking all current and future waiters."""
        if self._triggered:
            raise SimulationError(f"signal {self.name!r} already triggered")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self._sim.schedule(0.0, lambda cb=cb: cb(value, None))

    def fail(self, exc: BaseException) -> None:
        """Fire the signal with an exception; waiters see it raised."""
        if self._triggered:
            raise SimulationError(f"signal {self.name!r} already triggered")
        self._triggered = True
        self._failed = exc
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self._sim.schedule(0.0, lambda cb=cb: cb(None, exc))

    def _subscribe(self, sim, callback):
        if self._triggered:
            handle = sim.schedule(0.0, lambda: callback(self._value, self._failed))
            return handle.cancel
        self._callbacks.append(callback)

        def detach() -> None:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass

        return detach


class Timeout(_Waitable):
    """Wait for an inner waitable with a deadline.

    Yields ``(done, value)``: ``(True, value)`` if the inner waitable
    completed in time, ``(False, None)`` on timeout.  Inner failures are
    re-raised.
    """

    def __init__(self, inner: Any, timeout: float):
        if timeout < 0:
            raise SimulationError(f"timeout must be >= 0, got {timeout}")
        self.inner = inner
        self.timeout = timeout

    def _subscribe(self, sim, callback):
        done = False
        detach_inner: Optional[Callable[[], None]] = None

        def on_inner(value, exc):
            nonlocal done
            if done:
                return
            done = True
            timer.cancel()
            if exc is not None:
                callback(None, exc)
            else:
                callback((True, value), None)

        def on_timer():
            nonlocal done
            if done:
                return
            done = True
            if detach_inner is not None:
                detach_inner()
            callback((False, None), None)

        timer = sim.schedule(self.timeout, on_timer)
        detach_inner = _normalize(self.inner)._subscribe(sim, on_inner)

        def detach():
            timer.cancel()
            if detach_inner is not None:
                detach_inner()

        return detach


class _Delay(_Waitable):
    def __init__(self, dt: float):
        if dt < 0:
            raise SimulationError(f"cannot sleep a negative duration: {dt}")
        self.dt = dt

    def _subscribe(self, sim, callback):
        handle = sim.schedule(self.dt, lambda: callback(None, None))
        return handle.cancel


class AllOf(_Waitable):
    """Wait for every waitable; yields the list of their values in order."""

    def __init__(self, waitables: Iterable[Any]):
        self.waitables = [_normalize(w) for w in waitables]

    def _subscribe(self, sim, callback):
        n = len(self.waitables)
        if n == 0:
            handle = sim.schedule(0.0, lambda: callback([], None))
            return handle.cancel
        results: list[Any] = [None] * n
        remaining = n
        failed = False
        detachers: list[Callable[[], None]] = []

        def make_cb(i):
            def cb(value, exc):
                nonlocal remaining, failed
                if failed:
                    return
                if exc is not None:
                    failed = True
                    for d in detachers:
                        d()
                    callback(None, exc)
                    return
                results[i] = value
                remaining -= 1
                if remaining == 0:
                    callback(list(results), None)

            return cb

        for i, w in enumerate(self.waitables):
            detachers.append(w._subscribe(sim, make_cb(i)))

        def detach():
            for d in detachers:
                d()

        return detach


class AnyOf(_Waitable):
    """Wait for the first waitable; yields ``(index, value)``."""

    def __init__(self, waitables: Iterable[Any]):
        self.waitables = [_normalize(w) for w in waitables]
        if not self.waitables:
            raise SimulationError("AnyOf requires at least one waitable")

    def _subscribe(self, sim, callback):
        done = False
        detachers: list[Callable[[], None]] = []

        def make_cb(i):
            def cb(value, exc):
                nonlocal done
                if done:
                    return
                done = True
                for j, d in enumerate(detachers):
                    if j != i:
                        d()
                if exc is not None:
                    callback(None, exc)
                else:
                    callback((i, value), None)

            return cb

        for i, w in enumerate(self.waitables):
            detachers.append(w._subscribe(sim, make_cb(i)))

        def detach():
            for d in detachers:
                d()

        return detach


def _normalize(obj: Any) -> _Waitable:
    """Coerce a yielded object into a waitable."""
    if isinstance(obj, _Waitable):
        return obj
    if isinstance(obj, Process):
        return obj.done
    if isinstance(obj, (int, float)):
        return _Delay(float(obj))
    if isinstance(obj, (list, tuple)):
        return AllOf(obj)
    raise SimulationError(f"cannot wait on {obj!r} (type {type(obj).__name__})")


# ---------------------------------------------------------------------------
# Processes
# ---------------------------------------------------------------------------


class Process:
    """A running coroutine inside the simulator.

    Created via :meth:`Simulator.process`.  The generator's return value
    becomes :attr:`result`; uncaught exceptions propagate to joiners and,
    if nobody joins, re-raise when :attr:`result` is read.
    """

    _ids = itertools.count(1)

    def __init__(self, sim: Simulator, gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.pid = next(Process._ids)
        self.name = name or f"proc-{self.pid}"
        self.done = Signal(sim, name=f"{self.name}.done")
        self._detach_current: Optional[Callable[[], None]] = None
        self._interrupted: Optional[Interrupt] = None
        sim.schedule(0.0, lambda: self._resume(None, None))

    def __repr__(self) -> str:
        state = "done" if self.done.triggered else "running"
        return f"<Process {self.name} pid={self.pid} {state}>"

    # -- public API ---------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def result(self) -> Any:
        """Return value of the generator; raises its uncaught exception."""
        if not self.done.triggered:
            raise SimulationError(f"{self.name} has not finished")
        if self.done._failed is not None:
            raise self.done._failed
        return self.done.value

    @property
    def error(self) -> Optional[BaseException]:
        if not self.done.triggered:
            return None
        return self.done._failed

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.done.triggered:
            return
        self._interrupted = Interrupt(cause)
        if self._detach_current is not None:
            self._detach_current()
            self._detach_current = None
        self.sim.schedule(0.0, self._deliver_interrupt)

    # -- machinery ------------------------------------------------------------

    def _deliver_interrupt(self) -> None:
        if self.done.triggered or self._interrupted is None:
            return
        exc, self._interrupted = self._interrupted, None
        self._step(lambda: self.gen.throw(exc))

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.done.triggered:
            return
        self._detach_current = None
        if self._interrupted is not None:
            # A pending interrupt supersedes the normal resumption.
            return
        if exc is not None:
            self._step(lambda: self.gen.throw(exc))
        else:
            self._step(lambda: self.gen.send(value))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            yielded = advance()
        except StopIteration as stop:
            self.done.trigger(stop.value)
            return
        except Interrupt:
            # Process chose not to handle its interrupt: treat as cancelled.
            self.done.trigger(None)
            return
        except Exception as exc:  # noqa: BLE001 - propagate to joiners
            self.done.fail(exc)
            return
        try:
            waitable = _normalize(yielded)
        except SimulationError as exc:
            self._step(lambda: self.gen.throw(exc))
            return
        self._detach_current = waitable._subscribe(self.sim, self._resume)
