"""Counted resources with FIFO queueing for the simulation kernel.

A :class:`Resource` models anything with finite concurrency — a DTN's
rsync session slots, an API server's connection pool.  Processes acquire
slots via coroutine and block (in simulated time) until one frees up.

Usage inside a process::

    slot = yield from resource.acquire()
    try:
        ...do work...
    finally:
        resource.release(slot)

or with the combined helper::

    result = yield from resource.using(work_generator())
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Generator, Optional, Set

from repro.errors import SimulationError
from repro.sim.kernel import Signal, Simulator

__all__ = ["Resource", "Slot"]


@dataclass(frozen=True)
class Slot:
    """A held unit of a resource."""

    resource_name: str
    token: int


class Resource:
    """A counted resource with a FIFO wait queue.

    Statistics (`peak_in_use`, `total_waits`, `total_wait_time_s`) support
    sizing studies: "how many rsync slots does the campus DTN need?"
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"{name}: capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._tokens = itertools.count(1)
        self._in_use: Set[int] = set()
        self._waiters: Deque[Signal] = deque()
        #: slots freed but earmarked for already-woken waiters (prevents a
        #: late acquirer from stealing the slot between wake and resume)
        self._reserved = 0
        # statistics
        self.peak_in_use = 0
        self.total_acquisitions = 0
        self.total_waits = 0
        self.total_wait_time_s = 0.0

    @property
    def in_use(self) -> int:
        return len(self._in_use)

    @property
    def available(self) -> int:
        return self.capacity - self.in_use - self._reserved

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def _grant(self, reserved: bool = False) -> Slot:
        if reserved:
            self._reserved -= 1
        token = next(self._tokens)
        self._in_use.add(token)
        self.total_acquisitions += 1
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        return Slot(self.name, token)

    def acquire(self) -> Generator:
        """Coroutine: returns a :class:`Slot` once capacity is available."""
        if self.available > 0 and not self._waiters:
            return self._grant()
        gate = Signal(self.sim, name=f"{self.name}.wait")
        self._waiters.append(gate)
        self.total_waits += 1
        waited_from = self.sim.now
        yield gate
        self.total_wait_time_s += self.sim.now - waited_from
        return self._grant(reserved=True)

    def try_acquire(self) -> Optional[Slot]:
        """Non-blocking: a slot or None."""
        if self.available > 0 and not self._waiters:
            return self._grant()
        return None

    def release(self, slot: Slot) -> None:
        """Return a slot; wakes the first waiter, if any."""
        if slot.resource_name != self.name or slot.token not in self._in_use:
            raise SimulationError(f"{self.name}: releasing a slot it never granted: {slot}")
        self._in_use.remove(slot.token)
        if self._waiters:
            self._reserved += 1
            self._waiters.popleft().trigger()

    def using(self, work: Generator) -> Generator:
        """Coroutine: run *work* while holding one slot."""
        slot = yield from self.acquire()
        try:
            result = yield from work
        finally:
            self.release(slot)
        return result

    @property
    def mean_wait_s(self) -> float:
        """Average queueing delay among acquisitions that had to wait."""
        return self.total_wait_time_s / self.total_waits if self.total_waits else 0.0
