"""Named, seeded random-number streams.

Every stochastic component of the simulation (per-run jitter, cross-traffic
arrivals, API service-time noise, ...) draws from its own named stream, all
derived deterministically from one master seed.  Two experiments with the
same master seed produce bit-identical results regardless of the order in
which components were constructed, because each stream's seed depends only
on the master seed and the stream name.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from (master_seed, name), stably."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory for named :class:`numpy.random.Generator` streams.

    >>> r = RngRegistry(42)
    >>> a = r.stream("crosstraffic.purdue")
    >>> b = r.stream("crosstraffic.purdue")
    >>> a is b
    True
    >>> r2 = RngRegistry(42)
    >>> float(r2.stream("crosstraffic.purdue").random()) == float(np.random.default_rng(derive_seed(42, "crosstraffic.purdue")).random())
    True
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for *name*."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.master_seed, name))
            self._streams[name] = gen
        return gen

    def fork(self, run_index: int) -> "RngRegistry":
        """Registry for an independent experiment run.

        Used by the measurement harness: run *i* of an experiment gets
        streams derived from ``(master_seed, "run", i)`` so that runs are
        independent but individually reproducible.
        """
        return RngRegistry(derive_seed(self.master_seed, f"run:{run_index}"))

    def lognormal_factor(self, name: str, sigma: float) -> float:
        """Draw a multiplicative jitter factor with unit median.

        ``sigma`` is the log-space standard deviation; 0 yields exactly 1.
        """
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if sigma == 0:
            return 1.0
        return float(np.exp(self.stream(name).normal(0.0, sigma)))
