"""Structured event tracing.

Components emit :class:`TraceEvent` records (time, component, kind, fields)
into a :class:`Tracer`.  Traces power the per-transfer timelines used by the
analysis layer and make failed tests debuggable without print statements.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One record in a trace."""

    time: float
    component: str
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.time:12.6f}] {self.component:<24} {self.kind:<20} {kv}"


class Tracer:
    """Collects trace events; optionally filtered and bounded.

    Parameters
    ----------
    enabled:
        If False, :meth:`emit` is a no-op (fast path for benchmarks).
    max_events:
        Ring-buffer bound; oldest events are dropped beyond it.
    """

    def __init__(self, enabled: bool = True, max_events: int = 1_000_000):
        self.enabled = enabled
        self.max_events = max_events
        # deque(maxlen=...) evicts the oldest event in O(1); a plain list
        # made every overflowing emit an O(n) pop(0).
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self._dropped = 0
        self._subscribers: List[Callable[[TraceEvent], None]] = []

    def emit(self, time: float, component: str, kind: str, **fields: Any) -> None:
        """Record one event."""
        if not self.enabled:
            return
        ev = TraceEvent(time, component, kind, fields)
        if len(self._events) >= self.max_events:
            self._dropped += 1
        self._events.append(ev)
        for sub in self._subscribers:
            sub(ev)

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        """Invoke *fn* on every future event (live monitoring hooks)."""
        self._subscribers.append(fn)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def dropped(self) -> int:
        return self._dropped

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def filter(
        self,
        component: Optional[str] = None,
        kind: Optional[str] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[TraceEvent]:
        """Events matching all given criteria (prefix match on component)."""
        out = []
        for ev in self._events:
            if component is not None and not ev.component.startswith(component):
                continue
            if kind is not None and ev.kind != kind:
                continue
            if not (since <= ev.time <= until):
                continue
            out.append(ev)
        return out

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0

    def dump(self, limit: int = 200) -> str:
        """Human-readable tail of the trace."""
        skip = max(0, len(self._events) - limit)
        tail = list(islice(self._events, skip, None))
        lines = [str(ev) for ev in tail]
        if self._dropped or len(self._events) > limit:
            lines.insert(0, f"... ({len(self._events) - len(tail)} earlier events not shown, {self._dropped} dropped)")
        return "\n".join(lines)
