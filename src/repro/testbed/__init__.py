"""The calibrated case-study testbed.

Builds the full simulated world of the paper's evaluation — PlanetLab
vantage points (UBC, Purdue, UCLA, UMich), the UAlberta cluster, the
research networks (CANARIE, Internet2, BCNET, Cybera), commodity transit,
the Pacific Wave exchange artifact, and the three cloud providers — with
link parameters calibrated so the measured transfer times reproduce the
*shape* of the paper's Tables II-IV (see DESIGN.md Sec. 6).
"""

from repro.testbed.params import CaseStudyParams, DEFAULT_PARAMS
from repro.testbed.build import (build_case_study, build_geo_registry,
                                case_study_topo_spec, world_factory)
from repro.testbed.builder import WorldBuilder
from repro.testbed.dmz import DMZ_DTN_SITE, build_science_dmz_world
from repro.testbed.validation import (
    CalibrationCheck,
    render_validation,
    validate_calibration,
)
from repro.testbed.scenarios import (
    CLIENTS,
    PROVIDERS,
    VIAS,
    experiment_label,
    paper_route_set,
)

__all__ = [
    "CLIENTS",
    "CaseStudyParams",
    "DEFAULT_PARAMS",
    "CalibrationCheck",
    "DMZ_DTN_SITE",
    "build_science_dmz_world",
    "render_validation",
    "validate_calibration",
    "PROVIDERS",
    "VIAS",
    "WorldBuilder",
    "build_case_study",
    "case_study_topo_spec",
    "build_geo_registry",
    "experiment_label",
    "paper_route_set",
    "world_factory",
]
