"""Builds the calibrated case-study world.

Topology overview (AS numbers in brackets; * = PlanetLab host):

    ubc-pl*[14] - ubc campus - BCNET[271] - CANARIE vncv[6509]
        CANARIE vncv --(peering, 52M)-- Google peer port (silent) - Google[15169]
        CANARIE vncv --(PBR for PlanetLab prefixes)-- PacificWave[4444]
                       --(policed 9.6M)-- Google edge Seattle
        CANARIE vncv -- CANARIE edmn - Cybera[19515] - UAlberta[3359] (DTN)
        CANARIE vncv --(8M peering)-- Internet2 Seattle[11537]
        CANARIE vncv --(13.8M)-- Dropbox[19679];  --(34.5M)-- Microsoft[8075]
    purdue-pl*[17] - Purdue border --- Internet2 Chicago (R&E only: no
        commercial routes exported to Purdue)  --- TransitA[7018] (congested
        Google/Microsoft interconnects, clean-ish Dropbox)
    umich-pl*[36375] - Internet2 Chicago (TR-CPS subscriber: fat Google /
        Microsoft / Dropbox peerings at Internet2)
    ucla-pl*[52] (1.35M last mile) - TransitB[3356] (clean peerings) and
        Internet2 (R&E only)

The per-path effective throughputs this produces match DESIGN.md Sec. 6.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from repro.core.world import World
from repro.geo.ipgeo import GeoRegistry
from repro.geo.sites import site
from repro.net.crosstraffic import CrossTrafficConfig, start_sources
from repro.net.topology import NodeKind, Topology
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import KernelProfiler
from repro.testbed.params import CaseStudyParams, DEFAULT_PARAMS
from repro.topo.compiled import CompiledTopology
from repro.topo.materialize import compile_spec, materialize
from repro.topo.spec import (
    AsRec,
    LinkRec,
    NodeRec,
    PbrRec,
    ProviderRec,
    SiteRec,
    TopoGraph,
    TopoSpec,
)
from repro.units import ms

__all__ = ["AS_NUMBERS", "build_case_study", "build_geo_registry",
           "case_study_topo_spec", "world_factory"]

#: AS numbers used throughout (real-world numbers where they exist).
AS_NUMBERS: Dict[str, int] = {
    "ubc": 14,
    "bcnet": 271,
    "canarie": 6509,
    "cybera": 19515,
    "ualberta": 3359,
    "pacificwave": 4444,
    "google": 15169,
    "internet2": 11537,
    "umich": 36375,
    "purdue": 17,
    "ucla": 52,
    "transit-a": 7018,
    "transit-b": 3356,
    "dropbox": 19679,
    "microsoft": 8075,
}

#: The UBC PlanetLab subnet whose Google-bound traffic CANARIE's Vancouver
#: router steers through Pacific Wave (the paper's Figs. 5 vs 6 artifact).
UBC_PLANETLAB_PREFIX = "142.103.78.0/24"


def _nodes(params: CaseStudyParams):
    """(name, kind, as, address, hostname, site, responds) tuples."""
    H, R, M = NodeKind.HOST, NodeKind.ROUTER, NodeKind.MIDDLEBOX
    A = AS_NUMBERS
    return [
        # -- UBC (Vancouver) -------------------------------------------------
        ("ubc-pl", H, A["ubc"], "142.103.78.10", "planetlab1.cs.ubc.ca", "ubc", True),
        ("ubc-campus", R, A["ubc"], "142.103.2.253", "a0-a1.net.ubc.ca", "ubc", True),
        ("ubc-border", R, A["ubc"], "137.82.123.137", "anguborder-a0.net.ubc.ca", "ubc", True),
        ("bcnet-van", R, A["bcnet"], "134.87.0.58", "345-IX-crl-UBCAb.vncv1.BC.net",
         "canarie-vancouver", True),
        # -- CANARIE ----------------------------------------------------------
        ("canarie-vncv", R, A["canarie"], "199.212.24.1", "vncv1rtr2.canarie.ca",
         "canarie-vancouver", True),
        ("canarie-edmn", R, A["canarie"], "199.212.24.68", "edmn1rtr2.canarie.ca",
         "canarie-edmonton", True),
        # -- Cybera + UAlberta (Edmonton) -------------------------------------
        ("cybera-edm", R, A["cybera"], "199.116.233.66", "uofa-p-1-edm.cybera.ca",
         "canarie-edmonton", True),
        ("ualberta-core", R, A["ualberta"], "129.128.0.10", "core1-sc.backbone.ualberta.ca",
         "ualberta", True),
        ("ualberta-agg", R, A["ualberta"], "172.26.244.22", "172.26.244.22", "ualberta", True),
        ("ualberta-hidden", M, A["ualberta"], "172.26.244.1", "172.26.244.1", "ualberta", False),
        ("ualberta-fw", M, A["ualberta"], "129.128.184.254", "ww-fw.cs.ualberta.ca",
         "ualberta", True),
        ("ualberta-dtn", H, A["ualberta"], "129.128.184.10", "dtn.cs.ualberta.ca",
         "ualberta", True),
        # -- Pacific Wave + Google ---------------------------------------------
        ("pacwave-sea", R, A["pacificwave"], "207.231.242.20",
         "google-1-lo-std-707.sttlwa.pacificwave.net", "pacificwave-seattle", True),
        ("google-peer-vncv", M, A["google"], "72.14.196.1", "72.14.196.1",
         "canarie-vancouver", False),
        ("google-edge-sea", R, A["google"], "209.85.249.32", "209.85.249.32",
         "pacificwave-seattle", True),
        ("google-edge-west", R, A["google"], "209.85.250.60", "209.85.250.60",
         "commodity-west", True),
        ("google-core", R, A["google"], "216.239.51.159", "216.239.51.159",
         "gdrive-dc", True),
        ("gdrive-frontend", H, A["google"], "216.58.216.138", "sea15s01-in-f138.1e100.net",
         "gdrive-dc", True),
        # -- Internet2 -------------------------------------------------------
        ("i2-seattle", R, A["internet2"], "64.57.28.58", "core1.seat.net.internet2.edu",
         "pacificwave-seattle", True),
        ("i2-chicago", R, A["internet2"], "64.57.28.10", "core1.chic.net.internet2.edu",
         "internet2-chicago", True),
        # -- UMich (Ann Arbor) ---------------------------------------------------
        ("umich-border", R, A["umich"], "192.122.183.1", "v-bin-seb.merit-aa2.umich.edu",
         "umich", True),
        ("umich-pl", H, A["umich"], "141.213.4.201", "planetlab1.eecs.umich.edu",
         "umich", True),
        # -- Purdue (West Lafayette) ---------------------------------------------
        ("purdue-border", R, A["purdue"], "128.210.0.1", "tel-210-c9010.tcom.purdue.edu",
         "purdue", True),
        ("purdue-pl", H, A["purdue"], "128.10.18.53", "planetlab1.cs.purdue.edu",
         "purdue", True),
        # -- UCLA (Los Angeles) ----------------------------------------------------
        ("ucla-border", R, A["ucla"], "169.232.0.1", "border.ucla.edu", "ucla", True),
        ("ucla-pl", H, A["ucla"], "131.179.150.72", "planetlab1.cs.ucla.edu", "ucla", True),
        # -- TransitA (commodity, serves Purdue) ------------------------------------
        ("transita-chi", R, A["transit-a"], "12.122.86.1", "cr1.cgcil.ip.transit-a.net",
         "internet2-chicago", True),
        ("transita-dc", R, A["transit-a"], "12.122.100.1", "cr1.wswdc.ip.transit-a.net",
         "commodity-east", True),
        ("transita-sf", R, A["transit-a"], "12.122.110.1", "cr1.sffca.ip.transit-a.net",
         "commodity-west", True),
        # -- TransitB (commodity, serves UCLA) ---------------------------------------
        ("transitb-la", R, A["transit-b"], "4.69.144.1", "edge1.LosAngeles1.transit-b.net",
         "ucla", True),
        ("transitb-sf", R, A["transit-b"], "4.69.148.1", "edge1.SanFrancisco1.transit-b.net",
         "commodity-west", True),
        # -- Dropbox (Ashburn) -----------------------------------------------------
        ("dropbox-edge", R, A["dropbox"], "108.160.160.1", "edge1.iad.dropbox.com",
         "dropbox-dc", True),
        ("dropbox-frontend", H, A["dropbox"], "108.160.166.62", "dl-web.dropbox.com",
         "dropbox-dc", True),
        # -- Microsoft (Seattle) -------------------------------------------------
        ("msft-edge-sea", R, A["microsoft"], "104.44.4.1", "ae24-0.icr01.mwh01.ntwk.msn.net",
         "onedrive-dc", True),
        ("onedrive-frontend", H, A["microsoft"], "134.170.108.26", "storage.live.com",
         "onedrive-dc", True),
    ]


def _links(p: CaseStudyParams):
    """(u, v, capacity_bps, one-way delay, loss, policer dict) tuples."""
    return [
        # UBC campus chain
        ("ubc-pl", "ubc-campus", p.ubc_access_bps, ms(0.2), 0.0, None),
        ("ubc-campus", "ubc-border", p.campus_bps, ms(0.1), 0.0, None),
        ("ubc-border", "bcnet-van", p.campus_bps, ms(0.3), 0.0, None),
        ("bcnet-van", "canarie-vncv", p.backbone_bps, ms(0.5), 0.0, None),
        # CANARIE backbone + UAlberta chain
        ("canarie-vncv", "canarie-edmn", p.backbone_bps, ms(6.5), 0.0, None),
        ("canarie-edmn", "cybera-edm", p.campus_bps, ms(0.3), 0.0, None),
        ("cybera-edm", "ualberta-core", p.campus_bps, ms(0.5), 0.0, None),
        ("ualberta-core", "ualberta-agg", p.campus_bps, ms(0.1), 0.0, None),
        ("ualberta-agg", "ualberta-hidden", p.campus_bps, ms(0.1), 0.0, None),
        ("ualberta-hidden", "ualberta-fw", p.campus_bps, ms(0.1), 0.0, None),
        ("ualberta-fw", "ualberta-dtn", p.ualberta_access_bps, ms(0.1), 0.0, None),
        # CANARIE egresses
        ("canarie-vncv", "google-peer-vncv", p.canarie_google_bps, ms(2.5), 0.0, None),
        ("canarie-vncv", "pacwave-sea", p.backbone_bps, ms(2.5), 0.0, None),
        ("pacwave-sea", "google-edge-sea", p.backbone_bps, ms(0.5), 0.0,
         {"pacwave-sea": p.pacificwave_policer_bps}),
        ("canarie-vncv", "i2-seattle", p.canarie_i2_bps, ms(2.5), 0.0, None),
        ("canarie-vncv", "dropbox-edge", p.canarie_dropbox_bps, ms(30), 0.0, None),
        ("canarie-vncv", "msft-edge-sea", p.canarie_microsoft_bps, ms(2.5), 0.0, None),
        # Google internals
        ("google-peer-vncv", "google-edge-sea", p.datacenter_bps, ms(1.5), 0.0, None),
        ("google-edge-sea", "google-core", p.datacenter_bps, ms(1.0), 0.0, None),
        ("google-edge-west", "google-core", p.datacenter_bps, ms(1.0), 0.0, None),
        ("google-core", "gdrive-frontend", p.datacenter_bps, ms(8.5), 0.0, None),
        # Internet2
        ("i2-seattle", "i2-chicago", p.backbone_bps, ms(18), 0.0, None),
        ("i2-chicago", "umich-border", p.campus_bps, ms(3.5), 0.0, None),
        ("umich-border", "umich-pl", p.umich_access_bps, ms(0.2), 0.0, None),
        ("i2-seattle", "google-edge-sea", p.i2_google_bps, ms(0.5), 0.0, None),
        ("i2-seattle", "msft-edge-sea", p.i2_microsoft_bps, ms(0.5), 0.0, None),
        ("i2-chicago", "dropbox-edge", p.i2_dropbox_bps, ms(6), 0.0, None),
        # Purdue
        ("purdue-pl", "purdue-border", p.purdue_access_bps, ms(0.2), 0.0, None),
        ("purdue-border", "i2-chicago", p.campus_bps, ms(1.5), 0.0, None),
        ("purdue-border", "transita-chi", p.campus_bps, ms(1.5), 0.0, None),
        # TransitA
        ("transita-chi", "transita-sf", p.backbone_bps, ms(16), 0.0, None),
        ("transita-chi", "transita-dc", p.backbone_bps, ms(9), 0.0, None),
        ("transita-sf", "google-edge-west", p.transita_google_bps, ms(0.5), 0.0, None),
        ("transita-sf", "msft-edge-sea", p.transita_microsoft_bps, ms(8.5), 0.0, None),
        ("transita-dc", "dropbox-edge", p.transita_dropbox_bps, ms(0.5), 0.0, None),
        # UCLA + TransitB
        ("ucla-pl", "ucla-border", p.ucla_access_bps, ms(0.2), 0.0, None),
        ("ucla-border", "transitb-la", p.campus_bps, ms(0.5), 0.0, None),
        ("ucla-border", "i2-seattle", p.campus_bps, ms(9), 0.0, None),
        ("transitb-la", "transitb-sf", p.backbone_bps, ms(3), 0.0, None),
        ("transitb-sf", "google-edge-west", p.transitb_peering_bps, ms(0.5), 0.0, None),
        ("transitb-la", "dropbox-edge", p.transitb_peering_bps, ms(28), 0.0, None),
        ("transitb-sf", "msft-edge-sea", p.transitb_peering_bps, ms(8.5), 0.0, None),
        # datacenter tails
        ("dropbox-edge", "dropbox-frontend", p.datacenter_bps, ms(0.5), 0.0, None),
        ("msft-edge-sea", "onedrive-frontend", p.datacenter_bps, ms(0.3), 0.0, None),
    ]

#: Links that carry the congested-interconnect jitter profile.
_CONGESTED_LINKS = {
    "transita-sf--google-edge-west",
    "transita-sf--msft-edge-sea",
}


def _as_relationships():
    """(customer pairs, peering pairs) in canonical build order."""
    A = AS_NUMBERS
    customers = (
        (A["canarie"], A["bcnet"]),
        (A["bcnet"], A["ubc"]),
        (A["canarie"], A["cybera"]),
        (A["cybera"], A["ualberta"]),
        (A["internet2"], A["umich"]),
        (A["internet2"], A["purdue"]),
        (A["internet2"], A["ucla"]),
        (A["transit-a"], A["purdue"]),
        (A["transit-b"], A["ucla"]),
    )
    peerings = (
        (A["canarie"], A["internet2"]),
        (A["canarie"], A["pacificwave"]),
        (A["pacificwave"], A["google"]),
        (A["canarie"], A["google"]),
        (A["canarie"], A["microsoft"]),
        (A["canarie"], A["dropbox"]),
        (A["internet2"], A["google"]),
        (A["internet2"], A["microsoft"]),
        (A["internet2"], A["dropbox"]),
        (A["transit-a"], A["google"]),
        (A["transit-a"], A["microsoft"]),
        (A["transit-a"], A["dropbox"]),
        (A["transit-b"], A["google"]),
        (A["transit-b"], A["microsoft"]),
        (A["transit-b"], A["dropbox"]),
    )
    return customers, peerings


def case_study_topo_spec(params: Optional[CaseStudyParams] = None) -> TopoSpec:
    """The calibrated 5-site world as an explicit :class:`TopoSpec`.

    This is the testbed's source of truth: :func:`build_case_study` runs
    it through the same :func:`~repro.topo.materialize.compile_spec` /
    :func:`~repro.topo.materialize.materialize` pipeline as generated
    internet-scale worlds, so the paper world and synthetic worlds are
    byte-for-byte products of one construction path.
    """
    p = params if params is not None else DEFAULT_PARAMS

    # sites, in first-reference order over the node table
    node_rows = _nodes(p)
    site_keys = []
    for row in node_rows:
        key = row[5]
        if key not in site_keys:
            site_keys.append(key)
    sites = tuple(
        SiteRec(s.name, s.kind.value, s.location.lat, s.location.lon,
                s.city, s.description, s.planetlab)
        for s in (site(key) for key in site_keys))

    nodes = tuple(
        NodeRec(name, kind.value, asn, addr, hostname=hostname, site=site_name,
                responds=responds)
        for name, kind, asn, addr, hostname, site_name, responds in node_rows)
    links = tuple(
        LinkRec(u, v, capacity_bps=cap, delay_s=delay, loss=loss,
                policers=tuple(sorted((policer or {}).items())),
                jitter_sigma=(p.congested_capacity_jitter_sigma
                              if f"{u}--{v}" in _CONGESTED_LINKS
                              else p.capacity_jitter_sigma))
        for u, v, cap, delay, loss, policer in _links(p))

    A = AS_NUMBERS
    ases = tuple(AsRec(number, name) for name, number in A.items())
    customers, peerings = _as_relationships()

    # TR-CPS style scoping: Internet2 carries commercial peering routes
    # only for subscribers.  UMich subscribes; Purdue and UCLA do not, so
    # their commercial traffic falls back to commodity transit — exactly
    # the asymmetry the paper measured from Purdue.
    commercial = tuple(sorted((A["google"], A["microsoft"], A["dropbox"])))
    export_deny = (
        (A["internet2"], A["purdue"], commercial),
        (A["internet2"], A["ucla"], commercial),
    )

    pbr_rules = (PbrRec(
        node="canarie-vncv",
        out_link="canarie-vncv--pacwave-sea",
        src_prefixes=(UBC_PLANETLAB_PREFIX,),
        dest_asns=(A["google"],),
        description="PlanetLab-sourced Google traffic exits via Pacific Wave "
                    "(the Fig. 5 vs Fig. 6 artifact)",
    ),)

    providers = (
        ProviderRec("gdrive", "Google Drive", "www.googleapis.com",
                    "accounts.google.com", ("gdrive-frontend",), "gdrive"),
        ProviderRec("dropbox", "Dropbox", "content.dropboxapi.com",
                    "api.dropboxapi.com", ("dropbox-frontend",), "dropbox"),
        ProviderRec("onedrive", "Microsoft OneDrive", "storage.live.com",
                    "login.live.com", ("onedrive-frontend",), "onedrive"),
    )

    graph = TopoGraph(
        sites=sites, ases=ases, nodes=nodes, links=links,
        customers=customers, peerings=peerings, export_deny=export_deny,
        pbr_rules=pbr_rules, providers=providers,
        hosts=(("ubc", "ubc-pl"), ("purdue", "purdue-pl"),
               ("ucla", "ucla-pl"), ("umich", "umich-pl"),
               ("ualberta", "ualberta-dtn")),
        dtn_sites=("ualberta", "umich"),
    )
    return TopoSpec(name="case-study", source="explicit", graph=graph)


#: In-process memo of compiled case-study topologies by spec hash: route
#: compilation is seed-independent, so every world built from the same
#: params shares one compiled artifact (compiled arrays are never
#: mutated by materialization).
_COMPILED_CACHE: Dict[str, CompiledTopology] = {}


def _compiled_case_study(params: CaseStudyParams,
                         cache_dir: Optional[str] = None) -> CompiledTopology:
    spec = case_study_topo_spec(params)
    key = spec.content_hash()
    compiled = _COMPILED_CACHE.get(key)
    if compiled is None:
        compiled = compile_spec(spec, cache_dir=cache_dir, routes=True)
        _COMPILED_CACHE[key] = compiled  # simlint: ignore[SL1001] -- per-process memo; content is keyed by spec hash, so copies never diverge
    return compiled


def _cross_traffic_configs(p: CaseStudyParams):
    return [
        CrossTrafficConfig("transita-sf--google-edge-west", "transita-sf",
                           utilization=p.transita_google_mice_utilization,
                           mean_flow_bytes=4e6,
                           elephant_rate_bps=p.transita_google_elephant_bps,
                           elephant_on_s=p.transita_google_elephant_on_s,
                           elephant_off_s=p.transita_google_elephant_off_s,
                           elephant_flows=p.transita_google_elephant_flows),
        CrossTrafficConfig("transita-sf--msft-edge-sea", "transita-sf",
                           utilization=p.transita_microsoft_mice_utilization,
                           mean_flow_bytes=4e6,
                           elephant_rate_bps=p.transita_microsoft_elephant_bps,
                           elephant_on_s=p.transita_microsoft_elephant_on_s,
                           elephant_off_s=p.transita_microsoft_elephant_off_s,
                           elephant_flows=p.transita_microsoft_elephant_flows),
        CrossTrafficConfig("purdue-pl--purdue-border", "purdue-pl",
                           utilization=p.purdue_uplink_utilization,
                           mean_flow_bytes=p.purdue_uplink_mean_flow_bytes),
        CrossTrafficConfig("ucla-pl--ucla-border", "ucla-pl",
                           utilization=p.ucla_uplink_utilization,
                           mean_flow_bytes=p.ucla_uplink_mean_flow_bytes),
        CrossTrafficConfig("canarie-vncv--i2-seattle", "canarie-vncv",
                           utilization=p.canarie_i2_utilization,
                           mean_flow_bytes=4e6),
        CrossTrafficConfig("transita-dc--dropbox-edge", "transita-dc",
                           utilization=p.transita_dropbox_utilization,
                           mean_flow_bytes=4e6),
    ]


def build_case_study(
    seed: int = 0,
    params: Optional[CaseStudyParams] = None,
    trace: bool = False,
    cross_traffic: bool = True,
    metrics: Union[bool, MetricsRegistry] = False,
    profile: Union[bool, KernelProfiler] = False,
    cache_dir: Optional[str] = None,
) -> World:
    """Construct the full case-study world.

    The spec from :func:`case_study_topo_spec` is compiled (routes
    precomputed, memoized in-process per parameter set) and materialized
    through :mod:`repro.topo` — the same pipeline that builds generated
    internet-scale worlds.

    Parameters
    ----------
    seed:
        Master seed; drives cross-traffic, server-time jitter, and the
        per-run capacity jitter.  Same seed => identical world behaviour.
    params:
        Calibration overrides (ablations).
    trace:
        Enable the structured event tracer (off for benchmarks).
    cross_traffic:
        Disable to get a noise-free world (useful in tests).
    metrics:
        True to enable the metrics registry, or an existing
        :class:`~repro.obs.MetricsRegistry` to share one across worlds
        (e.g. the report harness aggregating many cells).
    profile:
        True to attach a fresh :class:`~repro.obs.KernelProfiler` to the
        kernel, or an existing profiler to aggregate across worlds
        (wall-time accounting; has no effect on simulated results).
    cache_dir:
        Optional route-cache directory handed to
        :func:`~repro.topo.materialize.compile_spec`.
    """
    p = params if params is not None else DEFAULT_PARAMS
    compiled = _compiled_case_study(p, cache_dir=cache_dir)
    world = materialize(compiled, seed=seed, trace=trace, metrics=metrics,
                        profile=profile)
    if cross_traffic:
        start_sources(_cross_traffic_configs(p), world.sim, world.engine,
                      world.rng.stream)
    return world


def world_factory(
    params: Optional[CaseStudyParams] = None,
    trace: bool = False,
    cross_traffic: bool = True,
    metrics: Union[bool, MetricsRegistry] = False,
    profile: Union[bool, KernelProfiler] = False,
) -> Callable[[int], World]:
    """A seed -> World callable for the measurement harness.

    Passing a shared :class:`~repro.obs.MetricsRegistry` as *metrics*
    aggregates every produced world's metrics into one registry.
    """

    def make(seed: int) -> World:
        return build_case_study(seed=seed, params=params, trace=trace,
                                cross_traffic=cross_traffic, metrics=metrics,
                                profile=profile)

    return make


def build_geo_registry(topology: Optional[Topology] = None) -> GeoRegistry:
    """The 'IP Location Finder' database for the case-study address space."""
    reg = GeoRegistry()
    entries = [
        ("142.103.0.0/16", "ubc"),
        ("137.82.0.0/16", "ubc"),
        ("134.87.0.0/16", "canarie-vancouver"),
        ("199.212.24.0/26", "canarie-vancouver"),
        ("199.212.24.64/26", "canarie-edmonton"),
        ("199.116.233.0/24", "canarie-edmonton"),
        ("129.128.0.0/16", "ualberta"),
        ("172.26.244.0/24", "ualberta"),
        ("207.231.242.0/24", "pacificwave-seattle"),
        ("72.14.196.0/24", "canarie-vancouver"),
        ("209.85.249.0/24", "pacificwave-seattle"),
        ("209.85.250.0/24", "commodity-west"),
        # The paper geolocates the Drive server to Mountain View [7].
        ("216.58.216.0/24", "gdrive-dc"),
        ("216.239.51.0/24", "gdrive-dc"),
        ("64.57.28.0/24", "internet2-chicago"),
        ("192.122.183.0/24", "umich"),
        ("141.213.0.0/16", "umich"),
        ("128.210.0.0/16", "purdue"),
        ("128.10.0.0/16", "purdue"),
        ("169.232.0.0/16", "ucla"),
        ("131.179.0.0/16", "ucla"),
        ("12.122.86.0/24", "internet2-chicago"),
        ("12.122.100.0/24", "commodity-east"),
        ("12.122.110.0/24", "commodity-west"),
        ("4.69.144.0/24", "ucla"),
        ("4.69.148.0/24", "commodity-west"),
        ("108.160.160.0/19", "dropbox-dc"),
        ("104.44.4.0/24", "onedrive-dc"),
        ("134.170.0.0/16", "onedrive-dc"),
    ]
    for prefix, site_key in entries:
        reg.register(prefix, site(site_key))
    return reg
